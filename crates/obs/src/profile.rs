//! Scoped phase accounting for the allocator's generation loop.
//!
//! A [`PhaseProfile`] maps phase names to `(calls, work, secs)`
//! aggregates. It is built to answer one question precisely: *where
//! does the memetic allocator's wall time go*, with enough attribution
//! (≥95% of the optimize call) to name the serial fraction behind a
//! disappointing parallel speedup.
//!
//! Two kinds of phases by convention:
//!
//! * `driver.*` — phases timed on the driving thread, one after
//!   another. They tile the optimize call, so their sum is the
//!   attributed wall time ([`PhaseProfile::attributed_secs`]).
//! * `task.*` — phases timed *inside* pool workers (crossover,
//!   mutation, local-search, delta-cost apply). They overlap the
//!   `driver.*.fanout` phases in wall time and decompose them.
//! * `worker.<i>` — per-worker busy time, attributed by pool lane.
//!
//! Determinism: `calls` and `work` counts are pure functions of the
//! run's inputs and are identical at any `QCPA_THREADS`; `secs` and the
//! `worker.*` phases are wall-clock measurements and are not. The
//! [`PhaseProfile::fingerprint`] therefore folds only the deterministic
//! fields and skips `worker.*` — that is what the conformance harness
//! pins across thread counts and reruns.
//!
//! Wall-clock note: `Instant::now` lives here, inside `qcpa-obs` (a
//! wall-clock-exempt crate per the audit rules); deterministic crates
//! call [`PhaseProfile::time`] and never touch the clock themselves.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// The `worker.<lane>` phase name for a pool lane. Lanes at or past 16
/// collapse into one overflow bucket — these phases are attribution,
/// not identity, and are skipped by fingerprints anyway.
#[must_use]
pub fn worker_phase(lane: usize) -> &'static str {
    const LANES: [&str; 17] = [
        "worker.0",
        "worker.1",
        "worker.2",
        "worker.3",
        "worker.4",
        "worker.5",
        "worker.6",
        "worker.7",
        "worker.8",
        "worker.9",
        "worker.10",
        "worker.11",
        "worker.12",
        "worker.13",
        "worker.14",
        "worker.15",
        "worker.16+",
    ];
    LANES[lane.min(16)]
}

/// Aggregate for one named phase.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseStat {
    /// Number of times the phase ran.
    pub calls: u64,
    /// Phase-defined work units (mutations applied, probes evaluated,
    /// offspring built, ...). Deterministic.
    pub work: u64,
    /// Wall-clock seconds spent in the phase. Not deterministic.
    pub secs: f64,
}

/// Named phase aggregates with deterministic merge order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PhaseProfile {
    phases: BTreeMap<&'static str, PhaseStat>,
}

impl PhaseProfile {
    /// An empty profile.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one phase execution: `secs` of wall time, `work` units.
    pub fn record(&mut self, phase: &'static str, secs: f64, work: u64) {
        let s = self.phases.entry(phase).or_default();
        s.calls += 1;
        s.work += work;
        s.secs += secs;
    }

    /// Adds work units to a phase without a timed call (for counters
    /// accumulated inside an already-timed region).
    pub fn add_work(&mut self, phase: &'static str, work: u64) {
        self.phases.entry(phase).or_default().work += work;
    }

    /// Times `f` under `phase` (one call, `work` units).
    pub fn time<T>(&mut self, phase: &'static str, work: u64, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.record(phase, t0.elapsed().as_secs_f64(), work);
        out
    }

    /// Starts a clock for a phase timed across non-lexical scopes;
    /// finish with [`PhaseProfile::stop`].
    #[must_use]
    pub fn start(&self) -> Instant {
        Instant::now()
    }

    /// Records the time since `t0` (from [`PhaseProfile::start`]).
    pub fn stop(&mut self, phase: &'static str, t0: Instant, work: u64) {
        self.record(phase, t0.elapsed().as_secs_f64(), work);
    }

    /// Merges another profile into this one (shard aggregation; the
    /// caller merges shards in task-index order as usual, though the
    /// result here is order-independent).
    pub fn merge(&mut self, other: &PhaseProfile) {
        for (name, s) in &other.phases {
            let d = self.phases.entry(name).or_default();
            d.calls += s.calls;
            d.work += s.work;
            d.secs += s.secs;
        }
    }

    /// The aggregate for `phase`, if recorded.
    #[must_use]
    pub fn get(&self, phase: &str) -> Option<PhaseStat> {
        self.phases.get(phase).copied()
    }

    /// Iterates phases in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, PhaseStat)> + '_ {
        self.phases.iter().map(|(k, v)| (*k, *v))
    }

    /// Seconds summed over phases whose name starts with `prefix`.
    #[must_use]
    pub fn secs_with_prefix(&self, prefix: &str) -> f64 {
        self.phases
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, s)| s.secs)
            .sum()
    }

    /// Wall time attributed to named driver phases: the sum over
    /// `driver.*`. Divide by the measured wall time of the optimize
    /// call to get the attribution fraction the bench asserts ≥ 0.95.
    #[must_use]
    pub fn attributed_secs(&self) -> f64 {
        self.secs_with_prefix("driver.")
    }

    /// Deterministic digest: phase names with `calls` and `work`, in
    /// name order, excluding wall-clock seconds and the per-worker
    /// (`worker.*`) attribution phases. Bit-identical across
    /// `QCPA_THREADS` and reruns for the same inputs.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        let mut out = String::new();
        for (name, s) in &self.phases {
            if name.starts_with("worker.") {
                continue;
            }
            let _ = writeln!(out, "{name} calls={} work={}", s.calls, s.work);
        }
        out
    }

    /// Human-readable table: phase, calls, work, secs, and share of the
    /// `driver.*` total.
    #[must_use]
    pub fn render(&self) -> String {
        let total = self.attributed_secs().max(f64::MIN_POSITIVE);
        let mut out =
            String::from("phase                          calls       work      secs    %drv\n");
        for (name, s) in &self.phases {
            let pct = if name.starts_with("driver.") {
                s.secs / total * 100.0
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{name:<30} {:>6} {:>10} {:>9.4} {:>6.1}",
                s.calls, s.work, s.secs, pct
            );
        }
        out
    }

    /// True when no phase has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_time_and_merge_aggregate() {
        let mut p = PhaseProfile::new();
        let out = p.time("driver.selection", 3, || 40 + 2);
        assert_eq!(out, 42);
        p.record("driver.selection", 0.5, 2);
        p.add_work("driver.selection", 1);

        let mut shard = PhaseProfile::new();
        shard.record("task.mutation", 0.25, 10);
        p.merge(&shard);

        let sel = p.get("driver.selection").unwrap();
        assert_eq!(sel.calls, 2);
        assert_eq!(sel.work, 6);
        assert!(sel.secs >= 0.5);
        assert_eq!(p.get("task.mutation").unwrap().work, 10);
        assert!(p.attributed_secs() >= 0.5);
        assert_eq!(p.secs_with_prefix("task."), 0.25);
    }

    #[test]
    fn fingerprint_skips_secs_and_worker_phases() {
        let mut a = PhaseProfile::new();
        a.record("driver.selection", 0.1, 5);
        a.record("worker.0", 0.3, 0);
        let mut b = PhaseProfile::new();
        b.record("driver.selection", 9.9, 5);
        b.record("worker.1", 0.7, 0);
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.record("driver.selection", 0.0, 1);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert!(a.fingerprint().contains("driver.selection calls=1 work=5"));
    }

    #[test]
    fn render_lists_every_phase() {
        let mut p = PhaseProfile::new();
        p.record("driver.fanout", 1.0, 0);
        p.record("task.localsearch", 0.8, 12);
        let table = p.render();
        assert!(table.contains("driver.fanout"));
        assert!(table.contains("task.localsearch"));
    }
}
