//! Metrics: counters, gauges, log-scale histograms, and series, kept in
//! a [`Registry`] that snapshots deterministically.
//!
//! Counters and gauges are lock-free atomics shared via [`std::sync::Arc`]
//! handles. Histograms are designed for hot loops: record into a local
//! (non-atomic) [`Histogram`] while running, then merge it into the
//! registry once at the end of the run with
//! [`Registry::merge_histogram`]. Series are append-only `f64` traces
//! for convergence curves (per-generation fitness, per-window backend
//! counts) where the *order* of observations matters.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing `u64` metric.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins `f64` metric.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

// ---- log-scale histogram ---------------------------------------------

/// Sub-buckets per power of two: 8, giving a relative bucket width of
/// `2^(1/8) - 1 ≈ 9%` and a worst-case quantile error of about half
/// that when reporting the bucket's geometric midpoint.
const SUB_BITS: u32 = 3;
const SUB: usize = 1 << SUB_BITS;
/// Smallest distinguishable exponent: values below `2^MIN_EXP` clamp
/// into the first bucket. `2^-40 ≈ 9e-13` — far below any duration or
/// cost this workspace measures.
const MIN_EXP: i32 = -40;
/// Largest distinguishable exponent: values at or above `2^MAX_EXP`
/// clamp into the last bucket. `2^40 ≈ 1.1e12`.
const MAX_EXP: i32 = 40;
const BUCKETS: usize = ((MAX_EXP - MIN_EXP) as usize) * SUB;

/// A log-scale histogram of positive `f64` observations.
///
/// Recording is an exponent/mantissa bit extraction plus one array
/// increment — no allocation, no branching on magnitude — so it can sit
/// inside the simulator's per-request loop. Non-positive observations
/// clamp into the lowest bucket.
#[derive(Clone)]
pub struct Histogram {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Maps a value to its bucket index.
    #[inline]
    fn bucket_of(v: f64) -> usize {
        if v <= 0.0 || v.is_nan() {
            return 0;
        }
        let bits = v.to_bits();
        // IEEE-754 exponent (unbiased) and the top SUB_BITS mantissa
        // bits select a geometric bucket.
        let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
        let sub = ((bits >> (52 - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        let idx = (exp - MIN_EXP) as isize * SUB as isize + sub as isize;
        idx.clamp(0, BUCKETS as isize - 1) as usize
    }

    /// The geometric midpoint of bucket `i`, used when reconstructing
    /// quantiles from counts.
    fn bucket_mid(i: usize) -> f64 {
        let exp = MIN_EXP + (i / SUB) as i32;
        let sub = (i % SUB) as f64;
        // Bucket spans [2^exp * (1 + sub/SUB), 2^exp * (1 + (sub+1)/SUB)).
        let lo = (1.0 + sub / SUB as f64) * (exp as f64).exp2();
        let hi = (1.0 + (sub + 1.0) / SUB as f64) * (exp as f64).exp2();
        (lo * hi).sqrt()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, v: f64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The value at quantile `q` in `[0, 1]`, reconstructed from the
    /// bucket counts. Exact at the rank extremes: a rank that lands on
    /// the first or last observation returns the tracked minimum or
    /// maximum rather than a bucket midpoint — which also makes counts
    /// 0 and 1 exact (`None` and the single observation), and any
    /// quantile with `q > 1 - 1/count` (e.g. p999 below 1000 samples)
    /// exact. Returns `None` on an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if q >= 1.0 {
            return Some(self.max);
        }
        // Rank of the target observation, 1-based ceil like the
        // nearest-rank definition.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        if rank >= self.count {
            return Some(self.max);
        }
        if rank == 1 {
            return Some(self.min);
        }
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Clamp the representative into the observed range so
                // bucket-edge effects never report beyond min/max.
                return Some(Self::bucket_mid(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Condenses the histogram into its summary statistics.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            mean: if self.count == 0 {
                0.0
            } else {
                self.sum / self.count as f64
            },
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
            p50: self.quantile(0.50).unwrap_or(0.0),
            p95: self.quantile(0.95).unwrap_or(0.0),
            p99: self.quantile(0.99).unwrap_or(0.0),
            p999: self.quantile(0.999).unwrap_or(0.0),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish()
    }
}

/// Summary statistics of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation (exact).
    pub max: f64,
    /// Median (bucket-approximate).
    pub p50: f64,
    /// 95th percentile (bucket-approximate).
    pub p95: f64,
    /// 99th percentile (bucket-approximate).
    pub p99: f64,
    /// 99.9th percentile (bucket-approximate). Sim tail latencies at
    /// 256 backends clip at p99; this is the next decade out.
    pub p999: f64,
}

// ---- registry --------------------------------------------------------

/// A named collection of metrics with deterministic snapshots.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    series: Mutex<BTreeMap<String, Vec<f64>>>,
}

impl Registry {
    /// An empty registry (the process-wide one is [`global`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (creating if needed) the counter `name`. Hold the handle
    /// in hot paths; lookups take a lock.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// Returns (creating if needed) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// Records a single observation into histogram `name`. For
    /// per-request rates prefer a local [`Histogram`] merged once via
    /// [`Registry::merge_histogram`].
    pub fn observe(&self, name: &str, v: f64) {
        let mut map = self.histograms.lock().unwrap();
        map.entry(name.to_string()).or_default().record(v);
    }

    /// Merges a locally recorded histogram into histogram `name`.
    pub fn merge_histogram(&self, name: &str, h: &Histogram) {
        if h.count == 0 {
            return;
        }
        let mut map = self.histograms.lock().unwrap();
        map.entry(name.to_string()).or_default().merge(h);
    }

    /// Appends one point to series `name` (convergence traces).
    pub fn push_series(&self, name: &str, v: f64) {
        let mut map = self.series.lock().unwrap();
        map.entry(name.to_string()).or_default().push(v);
    }

    /// Appends many points to series `name`.
    pub fn extend_series(&self, name: &str, vs: &[f64]) {
        if vs.is_empty() {
            return;
        }
        let mut map = self.series.lock().unwrap();
        map.entry(name.to_string())
            .or_default()
            .extend_from_slice(vs);
    }

    /// A deterministic point-in-time view of every metric: identical
    /// metric states yield identical snapshots (names are sorted, no
    /// iteration-order dependence).
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
            series: self.series.lock().unwrap().clone(),
        }
    }

    /// Merges a thread-local shard registry into this one: counters
    /// add, gauges last-write-wins, histograms merge, series append.
    ///
    /// This is the deterministic aggregation path for fork/join
    /// parallelism: worker tasks record into private `Registry` shards
    /// (no lock contention, no cross-thread interleaving) and the
    /// driver merges the shards **in task-index order** once the join
    /// completes — so order-sensitive series end up identical at any
    /// worker count.
    pub fn merge_shard(&self, shard: &Registry) {
        for (name, c) in shard.counters.lock().unwrap().iter() {
            let v = c.get();
            if v != 0 {
                self.counter(name).add(v);
            }
        }
        for (name, g) in shard.gauges.lock().unwrap().iter() {
            self.gauge(name).set(g.get());
        }
        for (name, h) in shard.histograms.lock().unwrap().iter() {
            self.merge_histogram(name, h);
        }
        for (name, vs) in shard.series.lock().unwrap().iter() {
            self.extend_series(name, vs);
        }
    }

    /// Clears every metric (counters and gauges are detached, so stale
    /// handles keep working but no longer appear in snapshots).
    pub fn reset(&self) {
        self.counters.lock().unwrap().clear();
        self.gauges.lock().unwrap().clear();
        self.histograms.lock().unwrap().clear();
        self.series.lock().unwrap().clear();
    }
}

/// A deterministic snapshot of a [`Registry`].
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Series traces by name.
    pub series: BTreeMap<String, Vec<f64>>,
}

impl Snapshot {
    /// True if the snapshot holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.series.is_empty()
    }
}

/// The process-wide registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let reg = Registry::new();
        let c = reg.counter("requests");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("requests").get(), 5);
        let g = reg.gauge("util");
        g.set(0.75);
        assert_eq!(reg.gauge("util").get(), 0.75);
    }

    #[test]
    fn histogram_max_is_exact_and_quantiles_are_close() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000.0);
        assert_eq!(s.min, 1.0);
        assert!((s.mean - 500.5).abs() < 1e-9);
        assert!((s.p50 - 500.0).abs() / 500.0 < 0.10, "p50={}", s.p50);
        assert!((s.p95 - 950.0).abs() / 950.0 < 0.10, "p95={}", s.p95);
        assert!((s.p99 - 990.0).abs() / 990.0 < 0.10, "p99={}", s.p99);
        assert!((s.p999 - 999.0).abs() / 999.0 < 0.10, "p999={}", s.p999);
    }

    #[test]
    fn histogram_handles_extremes() {
        let mut h = Histogram::new();
        h.record(0.0);
        h.record(-5.0);
        h.record(1e-300);
        h.record(1e300);
        assert_eq!(h.count(), 4);
        assert_eq!(h.summary().max, 1e300);
        assert!(h.quantile(0.1).is_some());
    }

    #[test]
    fn histogram_merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for i in 1..200 {
            let v = (i as f64) * 0.37;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.summary(), both.summary());
    }

    /// Table-driven pin of the nearest-rank edge cases: the first and
    /// last ranks are exact (tracked min/max), including the degenerate
    /// counts 0 and 1 and any `q` whose rank saturates at `count`
    /// (p999 under 1000 samples).
    #[test]
    fn quantile_rank_extremes_are_exact() {
        // (observations, q, expected)
        let cases: &[(&[f64], f64, Option<f64>)] = &[
            (&[], 0.5, None),
            (&[], 0.999, None),
            // A single observation is every quantile, exactly — even
            // when it sits mid-bucket, far from the bucket midpoint.
            (&[3.7], 0.0, Some(3.7)),
            (&[3.7], 0.5, Some(3.7)),
            (&[3.7], 0.95, Some(3.7)),
            (&[3.7], 0.999, Some(3.7)),
            (&[3.7], 1.0, Some(3.7)),
            // Two observations: rank 1 → min, rank 2 → max, exactly.
            (&[1.3, 9.1], 0.25, Some(1.3)),
            (&[1.3, 9.1], 0.5, Some(1.3)),
            (&[1.3, 9.1], 0.75, Some(9.1)),
            (&[1.3, 9.1], 0.999, Some(9.1)),
            // Ten observations: p999 rank saturates at count → max.
            (
                &[0.11, 0.22, 0.33, 0.44, 0.55, 0.66, 0.77, 0.88, 0.99, 1.23],
                0.999,
                Some(1.23),
            ),
            // ...and p05 lands on rank 1 → min.
            (
                &[0.11, 0.22, 0.33, 0.44, 0.55, 0.66, 0.77, 0.88, 0.99, 1.23],
                0.05,
                Some(0.11),
            ),
        ];
        for &(obs, q, want) in cases {
            let mut h = Histogram::new();
            for &v in obs {
                h.record(v);
            }
            assert_eq!(h.quantile(q), want, "obs={obs:?} q={q}");
        }
        // Below 1000 samples p999's rank saturates at the count: exact
        // max (at exactly 1000, rank 999 is a genuine interior rank).
        let mut h = Histogram::new();
        for i in 1..=999 {
            h.record(i as f64);
        }
        assert_eq!(h.quantile(0.999), Some(999.0));
        assert_eq!(h.quantile(0.0005), Some(1.0));
    }

    #[test]
    fn empty_histogram_summary_is_zeroed() {
        let h = Histogram::new();
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.max, 0.0);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn snapshot_is_deterministic_and_sorted() {
        let build = || {
            let reg = Registry::new();
            reg.counter("z").add(1);
            reg.counter("a").add(2);
            reg.push_series("fit", 1.0);
            reg.push_series("fit", 0.5);
            reg.observe("lat", 0.25);
            reg.snapshot()
        };
        let s1 = build();
        let s2 = build();
        assert_eq!(s1, s2);
        let keys: Vec<&str> = s1.counters.keys().map(String::as_str).collect();
        assert_eq!(keys, ["a", "z"]);
        assert_eq!(s1.series["fit"], vec![1.0, 0.5]);
    }

    #[test]
    fn merge_shard_combines_all_metric_kinds_in_order() {
        let main = Registry::new();
        main.counter("ops").add(10);
        main.push_series("trace", 1.0);
        main.observe("lat", 1.0);

        // Two worker shards, merged in index order.
        let shard_a = Registry::new();
        shard_a.counter("ops").add(3);
        shard_a.gauge("util").set(0.5);
        shard_a.push_series("trace", 2.0);
        shard_a.observe("lat", 2.0);
        let shard_b = Registry::new();
        shard_b.counter("ops").add(4);
        shard_b.gauge("util").set(0.9);
        shard_b.push_series("trace", 3.0);

        main.merge_shard(&shard_a);
        main.merge_shard(&shard_b);
        let snap = main.snapshot();
        assert_eq!(snap.counters["ops"], 17);
        assert_eq!(snap.gauges["util"], 0.9, "gauges are last-write-wins");
        assert_eq!(snap.series["trace"], vec![1.0, 2.0, 3.0]);
        assert_eq!(snap.histograms["lat"].count, 2);
        assert_eq!(snap.histograms["lat"].max, 2.0);
    }

    #[test]
    fn reset_clears_everything() {
        let reg = Registry::new();
        reg.counter("c").inc();
        reg.observe("h", 1.0);
        reg.push_series("s", 1.0);
        reg.reset();
        assert!(reg.snapshot().is_empty());
    }
}
