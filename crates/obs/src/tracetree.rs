//! Causal per-request trace trees with deterministic span identity.
//!
//! A [`TraceTree`] is an arena of spans (closed intervals on the
//! *simulated* clock) plus instant marks, linked parent→child into a
//! tree per request. Everything about a trace is a pure function of the
//! run's inputs:
//!
//! * **Span ids** derive from `(seed, request, attempt)` through a
//!   SplitMix64 finalizer ([`span_id`]) — no global counter, no wall
//!   clock — so the same request produces the same ids at any
//!   `QCPA_THREADS` and across reruns.
//! * **Timestamps** are sim-clock `f64` seconds supplied by the caller
//!   (the drivers in `qcpa-sim` are sequential event loops), so two
//!   replays of the same run disagree on nothing.
//! * **Sampling** is head-based and deterministic: [`Sampler`] admits a
//!   request iff a hash of `(seed, request)` falls under the
//!   `QCPA_TRACE_SAMPLE` rate. The decision is made once at admission
//!   and never consults a random stream shared with the workload, so
//!   tracing cannot perturb the simulation.
//!
//! The exporters in [`crate::perfetto`] render a tree as Chrome
//! trace-event JSON (Perfetto-loadable) or folded stacks.

use std::collections::BTreeMap;

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixer. The same
/// construction as `qcpa_par::stream_seed` / the resilience engine's
/// retry jitter — `qcpa-obs` is a leaf crate, so it carries its own
/// copy rather than depending on `qcpa-par`.
#[inline]
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Deterministic span identity: a hash of `(seed, request, attempt)`.
/// Never returns 0 (0 is reserved as "no id" in exports).
#[inline]
#[must_use]
pub fn span_id(seed: u64, request: u64, attempt: u64) -> u64 {
    let id = mix64(mix64(mix64(seed).wrapping_add(request)).wrapping_add(attempt));
    if id == 0 {
        1
    } else {
        id
    }
}

/// Deterministic head-based trace sampler.
///
/// A request is admitted iff `mix64(mix64(seed) + request)` falls below
/// `rate * 2^64`. The decision depends only on `(seed, request)`: it is
/// identical at any thread count, across reruns, and independent of
/// which requests came before.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sampler {
    seed: u64,
    /// Admission threshold in `[0, 2^64]` — `u128` so that rate 1.0
    /// (admit everything) is representable exactly.
    threshold: u128,
}

impl Sampler {
    /// A sampler admitting a `rate` fraction of requests (clamped to
    /// `[0, 1]`; NaN means off).
    #[must_use]
    pub fn new(seed: u64, rate: f64) -> Self {
        let rate = if rate.is_nan() {
            0.0
        } else {
            rate.clamp(0.0, 1.0)
        };
        let threshold = if rate >= 1.0 {
            1u128 << 64
        } else {
            // rate * 2^64, computed in f64 then truncated: exact at the
            // endpoints, monotone in between — all a sampler needs.
            (rate * (u64::MAX as f64 + 1.0)) as u128
        };
        Sampler { seed, threshold }
    }

    /// A sampler that admits nothing (the disabled fast path).
    #[must_use]
    pub fn off(seed: u64) -> Self {
        Sampler { seed, threshold: 0 }
    }

    /// Reads the sampling rate from `QCPA_TRACE_SAMPLE` (a float in
    /// `[0, 1]`; absent or unparsable means 0 — tracing off).
    #[must_use]
    pub fn from_env(seed: u64) -> Self {
        let rate = std::env::var("QCPA_TRACE_SAMPLE")
            .ok()
            .and_then(|s| s.trim().parse::<f64>().ok())
            .unwrap_or(0.0);
        Sampler::new(seed, rate)
    }

    /// True if any request could be admitted.
    #[inline]
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.threshold > 0
    }

    /// The deterministic admission decision for `request`.
    #[inline]
    #[must_use]
    pub fn admit(&self, request: u64) -> bool {
        // One branch when disabled: this is the per-request cost of
        // "compiled in but sample=0".
        if self.threshold == 0 {
            return false;
        }
        u128::from(span_id(self.seed, request, u64::MAX)) < self.threshold
    }

    /// The seed this sampler (and its span ids) derive from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// A handle to a span inside its [`TraceTree`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SpanRef(usize);

impl SpanRef {
    pub(crate) fn from_index(i: usize) -> SpanRef {
        SpanRef(i)
    }

    pub(crate) fn index(self) -> usize {
        self.0
    }
}

/// A span or mark argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Static string (the common case: phase/outcome names).
    Str(&'static str),
    /// Owned string (table names, backend labels).
    Owned(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(u64::from(v))
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::I64(v)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<&'static str> for ArgValue {
    fn from(v: &'static str) -> Self {
        ArgValue::Str(v)
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Owned(v)
    }
}

/// One closed interval on the sim clock.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Deterministic identity ([`span_id`]).
    pub id: u64,
    /// Parent span in the same tree, if any.
    pub parent: Option<SpanRef>,
    /// Category (export "cat"): `request`, `attempt`, `service`, ...
    pub cat: &'static str,
    /// Span name (export "name").
    pub name: &'static str,
    /// Export track (Perfetto `tid`): a backend id or a logical lane.
    pub track: u32,
    /// Start time, sim-clock seconds.
    pub start: f64,
    /// End time, sim-clock seconds (`== start` until [`TraceTree::end`]).
    pub end: f64,
    /// Key/value annotations.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// A zero-duration instant event (breaker flips, sheds, crashes).
#[derive(Debug, Clone, PartialEq)]
pub struct Mark {
    /// Deterministic identity ([`span_id`]).
    pub id: u64,
    /// Parent span, if the mark belongs to a request tree.
    pub parent: Option<SpanRef>,
    /// Category (export "cat").
    pub cat: &'static str,
    /// Mark name.
    pub name: &'static str,
    /// Export track.
    pub track: u32,
    /// Timestamp, sim-clock seconds.
    pub ts: f64,
    /// Key/value annotations.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// An arena of [`Span`]s and [`Mark`]s recorded in creation order.
///
/// The recording drivers are sequential, so creation order — and with
/// it the whole structure — is deterministic. `PartialEq` compares
/// every field; the cheaper [`TraceTree::fingerprint`] folds the same
/// information into one `u64` for conformance tests.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceTree {
    /// Spans in creation order.
    pub spans: Vec<Span>,
    /// Marks in creation order.
    pub marks: Vec<Mark>,
    /// Optional human names for export tracks (Perfetto thread names).
    pub track_names: BTreeMap<u32, String>,
}

impl TraceTree {
    /// An empty tree.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Labels an export track (rendered as a Perfetto thread name).
    pub fn name_track(&mut self, track: u32, name: impl Into<String>) {
        self.track_names.insert(track, name.into());
    }

    /// Opens a span at `start`; close it with [`TraceTree::end`].
    pub fn begin(
        &mut self,
        id: u64,
        parent: Option<SpanRef>,
        cat: &'static str,
        name: &'static str,
        track: u32,
        start: f64,
    ) -> SpanRef {
        self.spans.push(Span {
            id,
            parent,
            cat,
            name,
            track,
            start,
            end: start,
            args: Vec::new(),
        });
        SpanRef(self.spans.len() - 1)
    }

    /// Closes `span` at time `t` (clamped to its start).
    pub fn end(&mut self, span: SpanRef, t: f64) {
        let s = &mut self.spans[span.0];
        s.end = if t > s.start { t } else { s.start };
    }

    /// Attaches an argument to an open or closed span.
    pub fn arg(&mut self, span: SpanRef, key: &'static str, value: impl Into<ArgValue>) {
        self.spans[span.0].args.push((key, value.into()));
    }

    /// Records an instant mark.
    #[allow(clippy::too_many_arguments)]
    pub fn mark(
        &mut self,
        id: u64,
        parent: Option<SpanRef>,
        cat: &'static str,
        name: &'static str,
        track: u32,
        ts: f64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        self.marks.push(Mark {
            id,
            parent,
            cat,
            name,
            track,
            ts,
            args,
        });
    }

    /// Total recorded elements (spans + marks).
    #[must_use]
    pub fn len(&self) -> usize {
        self.spans.len() + self.marks.len()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.marks.is_empty()
    }

    /// The name path from the root to `span` (for folded stacks).
    #[must_use]
    pub fn path(&self, span: SpanRef) -> Vec<&'static str> {
        let mut names = Vec::new();
        let mut cur = Some(span);
        while let Some(SpanRef(i)) = cur {
            names.push(self.spans[i].name);
            cur = self.spans[i].parent;
        }
        names.reverse();
        names
    }

    /// A 64-bit digest of every field (float bits included): equal
    /// trees have equal fingerprints, and the conformance harness pins
    /// fingerprints across `QCPA_THREADS` and reruns.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        fn fold(acc: &mut u64, x: u64) {
            *acc = mix64(*acc ^ x);
        }
        fn fold_str(acc: &mut u64, s: &str) {
            for b in s.as_bytes() {
                *acc = (*acc ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01b3);
            }
            *acc = mix64(*acc);
        }
        fn fold_args(acc: &mut u64, args: &[(&'static str, ArgValue)]) {
            for (k, v) in args {
                fold_str(acc, k);
                match v {
                    ArgValue::U64(n) => fold(acc, *n),
                    ArgValue::I64(n) => fold(acc, *n as u64),
                    ArgValue::F64(x) => fold(acc, x.to_bits()),
                    ArgValue::Str(s) => fold_str(acc, s),
                    ArgValue::Owned(s) => fold_str(acc, s),
                }
            }
        }
        let mut acc = 0xcbf2_9ce4_8422_2325u64;
        for s in &self.spans {
            fold(&mut acc, s.id);
            fold(&mut acc, s.parent.map_or(u64::MAX, |p| p.0 as u64));
            fold_str(&mut acc, s.cat);
            fold_str(&mut acc, s.name);
            fold(&mut acc, u64::from(s.track));
            fold(&mut acc, s.start.to_bits());
            fold(&mut acc, s.end.to_bits());
            fold_args(&mut acc, &s.args);
        }
        for m in &self.marks {
            fold(&mut acc, m.id);
            fold(&mut acc, m.parent.map_or(u64::MAX, |p| p.0 as u64));
            fold_str(&mut acc, m.cat);
            fold_str(&mut acc, m.name);
            fold(&mut acc, u64::from(m.track));
            fold(&mut acc, m.ts.to_bits());
            fold_args(&mut acc, &m.args);
        }
        acc
    }
}

/// The user-facing tracing handle: a [`Sampler`] plus the [`TraceTree`]
/// it populates. Drivers take `Option<&mut Tracer>`; `None` compiles to
/// nothing, `Some` with rate 0 costs one branch per request.
#[derive(Debug, Clone, PartialEq)]
pub struct Tracer {
    /// The recorded tree.
    pub tree: TraceTree,
    sampler: Sampler,
}

impl Tracer {
    /// A tracer sampling a `rate` fraction of requests.
    #[must_use]
    pub fn new(seed: u64, rate: f64) -> Self {
        Tracer {
            tree: TraceTree::new(),
            sampler: Sampler::new(seed, rate),
        }
    }

    /// A tracer whose rate comes from `QCPA_TRACE_SAMPLE` (default 0).
    #[must_use]
    pub fn from_env(seed: u64) -> Self {
        Tracer {
            tree: TraceTree::new(),
            sampler: Sampler::from_env(seed),
        }
    }

    /// The sampler's admission decision for `request`.
    #[inline]
    #[must_use]
    pub fn admit(&self, request: u64) -> bool {
        self.sampler.admit(request)
    }

    /// True if the sampling rate is nonzero.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.sampler.enabled()
    }

    /// Span id for `(request, attempt)` under this tracer's seed.
    #[inline]
    #[must_use]
    pub fn span_id(&self, request: u64, attempt: u64) -> u64 {
        span_id(self.sampler.seed(), request, attempt)
    }

    /// Opens the root span for `request` if the sampler admits it.
    pub fn begin_request(
        &mut self,
        request: u64,
        cat: &'static str,
        name: &'static str,
        track: u32,
        start: f64,
    ) -> Option<SpanRef> {
        if !self.admit(request) {
            return None;
        }
        let id = self.span_id(request, 0);
        Some(self.tree.begin(id, None, cat, name, track, start))
    }

    /// Consumes the tracer, returning the recorded tree.
    #[must_use]
    pub fn into_tree(self) -> TraceTree {
        self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_ids_are_stable_and_distinct() {
        let a = span_id(7, 1, 0);
        assert_eq!(a, span_id(7, 1, 0));
        assert_ne!(a, span_id(7, 2, 0));
        assert_ne!(a, span_id(7, 1, 1));
        assert_ne!(a, span_id(8, 1, 0));
        assert_ne!(a, 0);
    }

    #[test]
    fn sampler_rates_are_deterministic_and_monotone() {
        let off = Sampler::new(42, 0.0);
        let half = Sampler::new(42, 0.5);
        let all = Sampler::new(42, 1.0);
        let mut admitted = 0u32;
        for req in 0..1000 {
            assert!(!off.admit(req));
            assert!(all.admit(req));
            // Head sampling is nested: anything the half sampler
            // admits, the full sampler admits too.
            if half.admit(req) {
                admitted += 1;
            }
            assert_eq!(half.admit(req), half.admit(req));
        }
        assert!(
            (300..700).contains(&admitted),
            "half-rate admitted {admitted}/1000"
        );
    }

    #[test]
    fn sampler_handles_out_of_range_rates() {
        assert!(!Sampler::new(1, f64::NAN).enabled());
        assert!(!Sampler::new(1, -3.0).enabled());
        assert!(Sampler::new(1, 7.5).admit(123), "rate clamps to 1.0");
    }

    #[test]
    fn tree_records_structure_and_fingerprint_is_sensitive() {
        let build = |extra: bool| {
            let mut t = TraceTree::new();
            t.name_track(0, "backend 0");
            let root = t.begin(span_id(1, 1, 0), None, "request", "read", 0, 1.0);
            let child = t.begin(span_id(1, 1, 1), Some(root), "attempt", "service", 0, 1.5);
            t.arg(child, "backend", 3u64);
            t.end(child, 2.0);
            t.end(root, 2.5);
            if extra {
                t.mark(span_id(1, 9, 0), None, "fault", "crash", 9, 2.2, vec![]);
            }
            t
        };
        let t1 = build(false);
        let t2 = build(false);
        assert_eq!(t1, t2);
        assert_eq!(t1.fingerprint(), t2.fingerprint());
        let t3 = build(true);
        assert_ne!(t1.fingerprint(), t3.fingerprint());
        assert_eq!(t3.path(SpanRef(1)), vec!["read", "service"]);
        assert_eq!(t3.len(), 3);
    }

    #[test]
    fn end_clamps_to_start() {
        let mut t = TraceTree::new();
        let s = t.begin(1, None, "c", "n", 0, 5.0);
        t.end(s, 4.0);
        assert_eq!(t.spans[0].end, 5.0);
    }
}
