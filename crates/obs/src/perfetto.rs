//! Trace exporters: Chrome trace-event JSON (Perfetto-loadable) and
//! folded stacks for flamegraphs.
//!
//! The JSON exporter emits the *array* flavor of the Chrome trace-event
//! format — `[ {event}, {event}, ... ]` — which `ui.perfetto.dev` and
//! `chrome://tracing` both ingest directly. Spans become `"ph":"X"`
//! complete events (`ts`/`dur` in microseconds), marks become
//! `"ph":"i"` instants, and track names become `"ph":"M"` metadata
//! records. Timestamps are the tree's sim-clock seconds scaled by 1e6
//! and rendered with the shortest-round-trip float writer, so the
//! output is byte-stable for a given tree.
//!
//! The folded exporter emits `root;child;leaf <self-time-us>` lines —
//! the input format of `flamegraph.pl` and speedscope — aggregated over
//! identical paths and sorted, again byte-stable.

use std::io;
use std::path::Path;

use crate::export::{json_escape, json_f64};
use crate::profile::PhaseProfile;
use crate::tracetree::{ArgValue, TraceTree};

fn json_arg(v: &ArgValue, out: &mut String) {
    match v {
        ArgValue::U64(n) => {
            out.push_str(&n.to_string());
        }
        ArgValue::I64(n) => {
            out.push_str(&n.to_string());
        }
        ArgValue::F64(x) => json_f64(*x, out),
        ArgValue::Str(s) => json_escape(s, out),
        ArgValue::Owned(s) => json_escape(s, out),
    }
}

fn push_args(args: &[(&'static str, ArgValue)], id: u64, parent_id: Option<u64>, out: &mut String) {
    out.push_str(",\"args\":{\"span_id\":");
    json_escape(&format!("{id:016x}"), out);
    if let Some(p) = parent_id {
        out.push_str(",\"parent_id\":");
        json_escape(&format!("{p:016x}"), out);
    }
    for (k, v) in args {
        out.push(',');
        json_escape(k, out);
        out.push(':');
        json_arg(v, out);
    }
    out.push('}');
}

/// Renders a [`TraceTree`] as a Chrome trace-event JSON array.
///
/// `process_name` labels the single process (`pid` 1) the events live
/// in; each track becomes a `tid` with its registered name.
#[must_use]
pub fn trace_to_chrome_json(tree: &TraceTree, process_name: &str) -> String {
    let mut out = String::from("[");
    out.push_str("{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":");
    json_escape(process_name, &mut out);
    out.push_str("}}");
    for (track, name) in &tree.track_names {
        out.push_str(",\n{\"ph\":\"M\",\"pid\":1,\"tid\":");
        out.push_str(&track.to_string());
        out.push_str(",\"name\":\"thread_name\",\"args\":{\"name\":");
        json_escape(name, &mut out);
        out.push_str("}}");
    }
    for s in &tree.spans {
        out.push_str(",\n{\"ph\":\"X\",\"pid\":1,\"tid\":");
        out.push_str(&s.track.to_string());
        out.push_str(",\"cat\":");
        json_escape(s.cat, &mut out);
        out.push_str(",\"name\":");
        json_escape(s.name, &mut out);
        out.push_str(",\"ts\":");
        json_f64(s.start * 1e6, &mut out);
        out.push_str(",\"dur\":");
        json_f64((s.end - s.start) * 1e6, &mut out);
        let parent_id = s.parent.map(|p| tree.spans[p.index()].id);
        push_args(&s.args, s.id, parent_id, &mut out);
        out.push('}');
    }
    for m in &tree.marks {
        out.push_str(",\n{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":");
        out.push_str(&m.track.to_string());
        out.push_str(",\"cat\":");
        json_escape(m.cat, &mut out);
        out.push_str(",\"name\":");
        json_escape(m.name, &mut out);
        out.push_str(",\"ts\":");
        json_f64(m.ts * 1e6, &mut out);
        let parent_id = m.parent.map(|p| tree.spans[p.index()].id);
        push_args(&m.args, m.id, parent_id, &mut out);
        out.push('}');
    }
    out.push_str("]\n");
    out
}

/// Writes `trace_to_chrome_json` output to `path`.
///
/// # Errors
/// Propagates I/O errors from creating or writing the file.
pub fn write_trace_json(path: &Path, tree: &TraceTree, process_name: &str) -> io::Result<()> {
    std::fs::write(path, trace_to_chrome_json(tree, process_name))
}

/// Renders a [`TraceTree`] as folded stacks: one `a;b;c <us>` line per
/// distinct root→leaf name path, weighted by *self* time (span duration
/// minus its children's durations) in integer microseconds. Lines are
/// sorted; zero-weight paths are dropped.
#[must_use]
pub fn trace_to_folded(tree: &TraceTree) -> String {
    let mut child_secs = vec![0.0f64; tree.spans.len()];
    for s in &tree.spans {
        if let Some(p) = s.parent {
            child_secs[p.index()] += s.end - s.start;
        }
    }
    let mut folded: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for (i, s) in tree.spans.iter().enumerate() {
        let self_secs = (s.end - s.start) - child_secs[i];
        let us = (self_secs * 1e6).round();
        if us < 1.0 {
            continue;
        }
        let path = tree
            .path(crate::tracetree::SpanRef::from_index(i))
            .join(";");
        *folded.entry(path).or_default() += us as u64;
    }
    let mut out = String::new();
    for (path, us) in folded {
        out.push_str(&path);
        out.push(' ');
        out.push_str(&us.to_string());
        out.push('\n');
    }
    out
}

/// Renders a [`PhaseProfile`] as folded stacks rooted at `root`:
/// `root;phase.name <us>` per phase, weighted by the phase's wall
/// seconds in integer microseconds. Phase names' dots become stack
/// separators (`driver.fanout` → `root;driver;fanout`).
#[must_use]
pub fn profile_to_folded(profile: &PhaseProfile, root: &str) -> String {
    let mut out = String::new();
    for (name, stat) in profile.iter() {
        let us = (stat.secs * 1e6).round();
        if us < 1.0 {
            continue;
        }
        out.push_str(root);
        for part in name.split('.') {
            out.push(';');
            out.push_str(part);
        }
        out.push(' ');
        out.push_str(&(us as u64).to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracetree::span_id;

    fn sample_tree() -> TraceTree {
        let mut t = TraceTree::new();
        t.name_track(0, "backend 0");
        t.name_track(7, "faults");
        let root = t.begin(span_id(1, 5, 0), None, "request", "read", 0, 0.25);
        let svc = t.begin(span_id(1, 5, 1), Some(root), "attempt", "service", 0, 0.5);
        t.arg(svc, "backend", 0u64);
        t.end(svc, 0.75);
        t.end(root, 1.0);
        t.mark(
            span_id(1, 9, 2),
            None,
            "fault",
            "crash",
            7,
            0.6,
            vec![("backend", 3u64.into())],
        );
        t
    }

    #[test]
    fn chrome_json_is_an_array_of_events_and_byte_stable() {
        let tree = sample_tree();
        let a = trace_to_chrome_json(&tree, "qcpa-sim");
        let b = trace_to_chrome_json(&tree, "qcpa-sim");
        assert_eq!(a, b, "export must be byte-stable");
        assert!(a.starts_with('['));
        assert!(a.trim_end().ends_with(']'));
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("\"ph\":\"i\""));
        assert!(a.contains("\"ph\":\"M\""));
        assert!(a.contains("\"name\":\"service\""));
        assert!(a.contains("\"ts\":250000.0"));
        assert!(a.contains("\"dur\":250000.0"));
        assert!(a.contains("\"parent_id\""));
        assert_eq!(a.matches('{').count(), a.matches('}').count());
    }

    #[test]
    fn folded_stacks_compute_self_time() {
        let tree = sample_tree();
        let folded = trace_to_folded(&tree);
        // root span: 0.75s total, 0.25s child => 0.5s self.
        assert!(folded.contains("read 500000\n"), "{folded}");
        assert!(folded.contains("read;service 250000\n"), "{folded}");
    }

    #[test]
    fn profile_folded_splits_on_dots() {
        let mut p = PhaseProfile::new();
        p.record("driver.fanout", 0.5, 0);
        p.record("task.mutation", 0.25, 9);
        let folded = profile_to_folded(&p, "memetic");
        assert!(folded.contains("memetic;driver;fanout 500000\n"));
        assert!(folded.contains("memetic;task;mutation 250000\n"));
    }
}
