//! Per-backend service-time models.
//!
//! A backend's effective service time for a request depends on:
//!
//! * its **relative speed** — in a heterogeneous cluster a backend with
//!   performance share `p` among `n` backends runs at `p·n` times the
//!   reference speed;
//! * **locality** — the paper observes super-linear speedups for
//!   partial replication because specialized backends store less data,
//!   improving cache hit rates and disk transfer ("the caching on these
//!   backends improves", Section 4.1). The [`LocalityModel`] captures
//!   this: a backend storing fraction `s` of the database serves
//!   requests at multiplier `floor + (1 − floor)·s` (1.0 when it stores
//!   everything, `floor` in the limit of perfect specialization).

use qcpa_core::allocation::Allocation;
use qcpa_core::cluster::ClusterSpec;
use qcpa_core::fragment::Catalog;

/// Cache/disk locality model (Section 4.1's super-linear effect).
#[derive(Debug, Clone, Copy)]
pub struct LocalityModel {
    /// Service-time multiplier in the limit of a backend storing an
    /// infinitesimal share of the database. 1.0 disables the effect.
    pub floor: f64,
}

impl Default for LocalityModel {
    fn default() -> Self {
        // Calibrated so TPC-H partial replication modestly outperforms
        // full replication, as in Figure 4(a).
        Self { floor: 0.7 }
    }
}

/// Precomputed per-backend service multipliers for one allocation on
/// one cluster.
#[derive(Debug, Clone)]
pub struct ServiceProfile {
    /// Multiplier per backend; effective service = `service × mult[b]`.
    pub mult: Vec<f64>,
}

impl ServiceProfile {
    /// Builds the profile: speed from the cluster's relative
    /// performance, locality from the allocation's stored share.
    pub fn new(
        alloc: &Allocation,
        cluster: &ClusterSpec,
        catalog: &Catalog,
        locality: Option<LocalityModel>,
    ) -> Self {
        let n = cluster.len() as f64;
        let db_size: u64 = {
            // Size of everything any backend could store: the union of
            // allocated fragments at full replication — approximated by
            // the catalog total of allocated fragment kinds. Use the
            // union over this allocation plus 1 to avoid division by 0.
            let mut union = std::collections::BTreeSet::new();
            for set in &alloc.fragments {
                union.extend(set.iter().copied());
            }
            catalog.size_of_set(&union).max(1)
        };
        let mult = cluster
            .ids()
            .map(|b| {
                let speed = cluster.load(b) * n; // 1.0 when homogeneous
                let loc = match locality {
                    None => 1.0,
                    Some(m) => {
                        let stored =
                            catalog.size_of_set(&alloc.fragments[b.idx()]) as f64 / db_size as f64;
                        m.floor + (1.0 - m.floor) * stored.min(1.0)
                    }
                };
                loc / speed
            })
            .collect();
        Self { mult }
    }

    /// Uniform profile (testing): every backend at reference speed.
    pub fn uniform(n: usize) -> Self {
        Self { mult: vec![1.0; n] }
    }

    /// Effective service seconds of a request on backend `b`.
    #[inline]
    pub fn effective(&self, b: usize, service: f64) -> f64 {
        service * self.mult[b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcpa_core::classify::{Classification, QueryClass};
    use qcpa_core::greedy;

    fn setup() -> (Catalog, Classification) {
        let mut cat = Catalog::new();
        let a = cat.add_table("A", 100);
        let b = cat.add_table("B", 100);
        let cls = Classification::from_classes(vec![
            QueryClass::read(0, [a], 0.5),
            QueryClass::read(1, [b], 0.5),
        ])
        .unwrap();
        (cat, cls)
    }

    #[test]
    fn homogeneous_without_locality_is_uniform() {
        let (cat, cls) = setup();
        let cluster = ClusterSpec::homogeneous(2);
        let alloc = Allocation::full_replication(&cls, &cluster);
        let p = ServiceProfile::new(&alloc, &cluster, &cat, None);
        assert_eq!(p.mult, vec![1.0, 1.0]);
        assert_eq!(p.effective(0, 0.5), 0.5);
    }

    #[test]
    fn heterogeneous_speeds() {
        let (cat, cls) = setup();
        let cluster = ClusterSpec::heterogeneous(&[3.0, 1.0]);
        let alloc = Allocation::full_replication(&cls, &cluster);
        let p = ServiceProfile::new(&alloc, &cluster, &cat, None);
        // Backend 0 has 75 % of the performance → speed 1.5× reference.
        assert!((p.mult[0] - 1.0 / 1.5).abs() < 1e-12);
        assert!((p.mult[1] - 1.0 / 0.5).abs() < 1e-12);
    }

    #[test]
    fn locality_rewards_specialization() {
        let (cat, cls) = setup();
        let cluster = ClusterSpec::homogeneous(2);
        let full = Allocation::full_replication(&cls, &cluster);
        let partial = greedy::allocate(&cls, &cat, &cluster);
        let m = LocalityModel { floor: 0.6 };
        let pf = ServiceProfile::new(&full, &cluster, &cat, Some(m));
        let pp = ServiceProfile::new(&partial, &cluster, &cat, Some(m));
        assert!(
            (pf.mult[0] - 1.0).abs() < 1e-12,
            "full replication: no gain"
        );
        assert!(
            pp.mult[0] < 1.0 && pp.mult[1] < 1.0,
            "specialized backends are faster: {:?}",
            pp.mult
        );
    }
}
