//! Pluggable event queues for the discrete-event loops.
//!
//! Every ordered-event structure in this crate (the pending-work index
//! of [`crate::engine::run_open`], the retry timer wheel of
//! [`crate::resilience`]) pops events in the total order
//! `(time_bits, seq)`:
//!
//! * `time_bits` is `f64::to_bits` of a **non-negative** event time —
//!   for non-negative IEEE-754 doubles the unsigned bit order equals
//!   the numeric order, so comparing bits compares times exactly, with
//!   no tolerance and no NaN edge;
//! * `seq` is a caller-assigned monotone sequence number that both
//!   breaks timestamp ties FIFO (first pushed pops first) and carries
//!   the event payload (a request or backend index), so the queue
//!   itself stores nothing but two `u64`s per event.
//!
//! Two implementations provide that contract:
//!
//! * [`BinaryHeapQueue`] — `std::collections::BinaryHeap` of reversed
//!   pairs. O(log n) everywhere, no tuning, kept as the **reference
//!   implementation** the property suite oracles against.
//! * [`CalendarQueue`] — a classic Brown calendar queue (radix buckets
//!   over time). O(1) amortized push/pop when the bucket width tracks
//!   the mean event spacing; the width and bucket count re-adapt on
//!   occupancy thresholds, and the cursor walks bucket windows in time
//!   order (with a direct jump to the global minimum when a whole lap
//!   comes up empty, so sparse far-future events cannot stall a pop).
//!
//! [`SimQueue`] is the enum the engines embed (static dispatch — no
//! `dyn` in the hot loop); [`QueueKind::from_env`] selects the
//! implementation from the audited `QCPA_SIM_QUEUE` knob.

/// One event: `(time_bits, seq)`. See the module docs for the order.
pub type Event = (u64, u64);

/// The operations the simulation loops need from an event queue.
///
/// `peek` takes `&mut self` so implementations may cache the search
/// for the minimum between a peek and the pop that usually follows.
pub trait EventQueue {
    /// Inserts an event. `time_bits` must come from a non-negative
    /// `f64`; `seq` must be unique per live event.
    fn push(&mut self, time_bits: u64, seq: u64);
    /// The smallest event, without removing it.
    fn peek(&mut self) -> Option<Event>;
    /// Removes and returns the smallest event.
    fn pop(&mut self) -> Option<Event>;
    /// Number of live events.
    fn len(&self) -> usize;
    /// True when no events are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---- reference implementation ---------------------------------------

/// The [`std::collections::BinaryHeap`] reference implementation.
#[derive(Debug, Default)]
pub struct BinaryHeapQueue {
    heap: std::collections::BinaryHeap<std::cmp::Reverse<Event>>,
}

impl BinaryHeapQueue {
    /// An empty queue with room for `cap` events.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        BinaryHeapQueue {
            heap: std::collections::BinaryHeap::with_capacity(cap),
        }
    }
}

impl EventQueue for BinaryHeapQueue {
    #[inline]
    fn push(&mut self, time_bits: u64, seq: u64) {
        self.heap.push(std::cmp::Reverse((time_bits, seq)));
    }

    #[inline]
    fn peek(&mut self) -> Option<Event> {
        self.heap.peek().map(|&std::cmp::Reverse(e)| e)
    }

    #[inline]
    fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|std::cmp::Reverse(e)| e)
    }

    #[inline]
    fn len(&self) -> usize {
        self.heap.len()
    }
}

// ---- calendar queue --------------------------------------------------

/// Smallest bucket count (power of two).
const MIN_BUCKETS: usize = 16;
/// Narrowest admissible bucket width in seconds: well below any event
/// spacing the simulators produce, guards the `t / width` day index
/// against division blow-up when all sampled events share one instant.
const MIN_WIDTH: f64 = 1e-9;

/// A Brown calendar queue over `(time_bits, seq)` events.
///
/// Buckets partition time into windows (*days*) of `width` seconds; an
/// event at time `t` has day `floor(t / width)` and lives in bucket
/// `day mod nbuckets`. The cursor tracks the current day; a pop scans
/// only the cursor's bucket for events of that day (everything earlier
/// has already been popped — pushes behind the cursor move it back),
/// advancing day by day and jumping straight to the global minimum
/// after a fruitless full lap. The bucket count doubles/halves on
/// occupancy thresholds and the width re-estimates from the live event
/// span, so both clustered and widely spread timestamp distributions
/// keep the per-bucket scans short.
///
/// Day membership is decided by the *same* saturating
/// `(t / width) as u64` expression everywhere (bucketing, cursor
/// seeks, window scans). Float division by a positive constant is
/// monotone, so day assignment is monotone in event time even when
/// `t / width` exhausts `f64` integer precision — cross-day order is
/// exact by construction, with no accumulated window-top arithmetic
/// that could drift out of sync with the bucket map.
#[derive(Debug)]
pub struct CalendarQueue {
    buckets: Vec<Vec<Event>>,
    /// Bucket width in seconds (> 0).
    width: f64,
    /// Index of the cursor's bucket (`cur_day % nbuckets`).
    cur: usize,
    /// The cursor's day: no live event has an earlier day.
    cur_day: u64,
    len: usize,
    /// Cached position of the minimum found by the last [`Self::peek`]:
    /// `(bucket, slot, event)`. Invalidated by any push or pop.
    cached_min: Option<(usize, usize, Event)>,
}

impl Default for CalendarQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl CalendarQueue {
    /// An empty queue with the initial geometry.
    #[must_use]
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            width: 1.0,
            cur: 0,
            cur_day: 0,
            len: 0,
            cached_min: None,
        }
    }

    /// The day index of time `t` under the current geometry. Times are
    /// finite and non-negative by the push contract; the cast saturates
    /// (monotonically) for far-future events.
    #[inline]
    fn day_of(&self, t: f64) -> u64 {
        (t / self.width) as u64
    }

    /// The bucket index of time `t` under the current geometry.
    #[inline]
    fn bucket_of(&self, t: f64) -> usize {
        (self.day_of(t) % self.buckets.len() as u64) as usize
    }

    /// Points the cursor at the day containing time `t`.
    #[inline]
    fn seek(&mut self, t: f64) {
        self.cur_day = self.day_of(t);
        self.cur = (self.cur_day % self.buckets.len() as u64) as usize;
    }

    /// The minimum event's position: `(bucket, slot, event)`. Walks the
    /// cursor forward day by day; after one fruitless full lap, jumps
    /// the cursor to the day of the global minimum. `None` when empty.
    fn find_min(&mut self) -> Option<(usize, usize, Event)> {
        if self.len == 0 {
            return None;
        }
        if let Some(found) = self.cached_min {
            return Some(found);
        }
        let nb = self.buckets.len();
        let mut lap = 0usize;
        loop {
            let mut best: Option<(usize, Event)> = None;
            for (slot, &ev) in self.buckets[self.cur].iter().enumerate() {
                if self.day_of(f64::from_bits(ev.0)) == self.cur_day
                    && best.is_none_or(|(_, b)| ev < b)
                {
                    best = Some((slot, ev));
                }
            }
            if let Some((slot, ev)) = best {
                let found = (self.cur, slot, ev);
                self.cached_min = Some(found);
                return Some(found);
            }
            self.cur_day = self.cur_day.saturating_add(1);
            self.cur = (self.cur_day % nb as u64) as usize;
            lap += 1;
            if lap >= nb {
                // A whole lap of empty windows: every event lies beyond
                // the scanned year. Jump to the earliest one directly.
                let mut global: Option<Event> = None;
                for bucket in &self.buckets {
                    for &ev in bucket {
                        if global.is_none_or(|g| ev < g) {
                            global = Some(ev);
                        }
                    }
                }
                // `len > 0` guarantees an event exists.
                if let Some(ev) = global {
                    self.seek(f64::from_bits(ev.0));
                }
                lap = 0;
            }
        }
    }

    /// Re-buckets every event into `new_nb` buckets with a width
    /// re-estimated from the live span, and re-seeks the cursor.
    fn resize(&mut self, new_nb: usize) {
        let events: Vec<Event> = self.buckets.iter_mut().flat_map(std::mem::take).collect();
        let (mut lo, mut hi) = (f64::INFINITY, 0.0f64);
        for &(bits, _) in &events {
            let t = f64::from_bits(bits);
            lo = lo.min(t);
            hi = hi.max(t);
        }
        if !events.is_empty() && hi > lo {
            // Aim for a few events per window at the current occupancy:
            // the mean spacing over the live span, times a small slack.
            self.width = ((hi - lo) / events.len() as f64 * 2.0).max(MIN_WIDTH);
        }
        self.buckets = (0..new_nb).map(|_| Vec::new()).collect();
        for &(bits, seq) in &events {
            let b = self.bucket_of(f64::from_bits(bits));
            self.buckets[b].push((bits, seq));
        }
        self.cached_min = None;
        self.seek(if lo.is_finite() { lo } else { 0.0 });
    }
}

impl EventQueue for CalendarQueue {
    fn push(&mut self, time_bits: u64, seq: u64) {
        let t = f64::from_bits(time_bits);
        debug_assert!(t >= 0.0, "event times are non-negative");
        if self.len + 1 > self.buckets.len() * 2 {
            self.resize(self.buckets.len() * 2);
        }
        // A push behind the cursor re-opens its day: the pop-order
        // invariant is that no live event has a day before the cursor.
        if self.day_of(t) < self.cur_day {
            self.seek(t);
        }
        let b = self.bucket_of(t);
        self.buckets[b].push((time_bits, seq));
        self.len += 1;
        self.cached_min = None;
    }

    fn peek(&mut self) -> Option<Event> {
        self.find_min().map(|(_, _, ev)| ev)
    }

    fn pop(&mut self) -> Option<Event> {
        let (bucket, slot, ev) = self.find_min()?;
        self.buckets[bucket].swap_remove(slot);
        self.len -= 1;
        self.cached_min = None;
        if self.len < self.buckets.len() / 2 && self.buckets.len() > MIN_BUCKETS {
            self.resize(self.buckets.len() / 2);
        }
        Some(ev)
    }

    #[inline]
    fn len(&self) -> usize {
        self.len
    }
}

// ---- selection -------------------------------------------------------

/// Which event-queue implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// The binary-heap reference implementation.
    Heap,
    /// The calendar queue (the default).
    #[default]
    Calendar,
}

impl QueueKind {
    /// Reads `QCPA_SIM_QUEUE`: `heap` selects the reference heap,
    /// anything else (including unset) the calendar queue.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("QCPA_SIM_QUEUE") {
            Ok(v) if v == "heap" => QueueKind::Heap,
            _ => QueueKind::Calendar,
        }
    }
}

/// The statically dispatched queue the engines embed.
#[derive(Debug)]
pub enum SimQueue {
    /// Reference binary heap.
    Heap(BinaryHeapQueue),
    /// Calendar queue.
    Calendar(CalendarQueue),
}

impl SimQueue {
    /// An empty queue of the given kind, sized for roughly `cap`
    /// events.
    #[must_use]
    pub fn with_capacity(kind: QueueKind, cap: usize) -> Self {
        match kind {
            QueueKind::Heap => SimQueue::Heap(BinaryHeapQueue::with_capacity(cap)),
            QueueKind::Calendar => SimQueue::Calendar(CalendarQueue::new()),
        }
    }
}

impl EventQueue for SimQueue {
    #[inline]
    fn push(&mut self, time_bits: u64, seq: u64) {
        match self {
            SimQueue::Heap(q) => q.push(time_bits, seq),
            SimQueue::Calendar(q) => q.push(time_bits, seq),
        }
    }

    #[inline]
    fn peek(&mut self) -> Option<Event> {
        match self {
            SimQueue::Heap(q) => q.peek(),
            SimQueue::Calendar(q) => q.peek(),
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<Event> {
        match self {
            SimQueue::Heap(q) => q.pop(),
            SimQueue::Calendar(q) => q.pop(),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        match self {
            SimQueue::Heap(q) => q.len(),
            SimQueue::Calendar(q) => q.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut impl EventQueue) -> Vec<Event> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push(e);
        }
        out
    }

    #[test]
    fn calendar_pops_in_time_then_fifo_order() {
        let mut q = CalendarQueue::new();
        q.push(2.0f64.to_bits(), 0);
        q.push(1.0f64.to_bits(), 1);
        q.push(1.0f64.to_bits(), 2);
        q.push(0.5f64.to_bits(), 3);
        assert_eq!(q.peek(), Some((0.5f64.to_bits(), 3)));
        let order: Vec<u64> = drain(&mut q).into_iter().map(|(_, s)| s).collect();
        assert_eq!(order, vec![3, 1, 2, 0]);
    }

    #[test]
    fn calendar_handles_push_behind_cursor() {
        let mut q = CalendarQueue::new();
        for i in 0..100u64 {
            q.push((i as f64 * 10.0).to_bits(), i);
        }
        // Drain half, then push an event earlier than the cursor.
        for _ in 0..50 {
            q.pop();
        }
        q.push(1.0f64.to_bits(), 1000);
        assert_eq!(q.pop(), Some((1.0f64.to_bits(), 1000)));
        assert_eq!(q.pop(), Some((500.0f64.to_bits(), 50)));
    }

    #[test]
    fn calendar_matches_heap_on_interleaved_ops() {
        let mut cal = CalendarQueue::new();
        let mut heap = BinaryHeapQueue::default();
        // Deterministic mixed pushes/pops over a wide dynamic range.
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut seq = 0u64;
        for step in 0..5_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if step % 3 == 2 {
                assert_eq!(cal.pop(), heap.pop(), "step {step}");
            } else {
                let t = (x % 1_000_000) as f64 * 1e-3;
                cal.push(t.to_bits(), seq);
                heap.push(t.to_bits(), seq);
                seq += 1;
            }
            assert_eq!(cal.len(), heap.len());
        }
        assert_eq!(drain(&mut cal), drain(&mut heap));
    }

    #[test]
    fn kind_from_env_defaults_to_calendar() {
        // The env var is not manipulated here (tests run concurrently);
        // the default is what an unset knob must produce.
        assert_eq!(QueueKind::default(), QueueKind::Calendar);
    }
}
