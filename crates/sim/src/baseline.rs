//! The preserved pre-rewrite open-loop engine, kept as the
//! **differential oracle** for the hot-path rewrite in
//! [`crate::engine`].
//!
//! This module is a verbatim copy of `run_open_traced` (and its
//! `PendingIndex`) as they stood before the event-queue/arena rewrite:
//! an always-maintained two-tier pending index over a `BinaryHeap`, a
//! per-leg `touch` on every update fan-out, and per-request tracer
//! probing. It is deliberately **not** optimized — its only job is to
//! define the observable behavior the rewritten engine must reproduce
//! bit for bit. `tests/sim_equivalence.rs` replays random workloads
//! through both and asserts identical `OpenReport`s (every `f64`
//! compared by `to_bits`), identical rebuilt histograms, and identical
//! trace trees.
//!
//! Nothing in the workspace calls this from production paths; keep it
//! frozen when touching the live engine.

use qcpa_core::allocation::Allocation;
use qcpa_core::classify::Classification;
use qcpa_core::cluster::ClusterSpec;
use qcpa_core::fragment::Catalog;
use qcpa_core::journal::QueryKind;

use crate::engine::UpdatePropagation;
use crate::engine::{nearest_rank, trace_leg, trace_update, OpenReport, SimConfig};
use crate::request::Request;
use crate::scheduler::Scheduler;
use crate::service::ServiceProfile;

/// The pre-rewrite pending-work index: a BTreeSet of idle backends plus
/// a lazy `BinaryHeap` of `(free_at_bits, backend)`, maintained on
/// every dispatch whether or not any read class can use it.
struct PendingIndex {
    idle: std::collections::BTreeSet<usize>,
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize)>>,
}

impl PendingIndex {
    fn new(free_at: &[f64]) -> Self {
        let mut heap = std::collections::BinaryHeap::with_capacity(free_at.len() * 2);
        for (b, &f) in free_at.iter().enumerate() {
            heap.push(std::cmp::Reverse((f.to_bits(), b)));
        }
        Self {
            idle: std::collections::BTreeSet::new(),
            heap,
        }
    }

    fn advance(&mut self, free_at: &[f64], t: f64) {
        while let Some(&std::cmp::Reverse((bits, b))) = self.heap.peek() {
            if bits != free_at[b].to_bits() {
                self.heap.pop(); // stale entry superseded by a later push
            } else if f64::from_bits(bits) <= t {
                self.heap.pop();
                self.idle.insert(b);
            } else {
                break;
            }
        }
    }

    fn least_pending(&mut self, free_at: &[f64]) -> Option<usize> {
        if let Some(&b) = self.idle.first() {
            return Some(b);
        }
        while let Some(&std::cmp::Reverse((bits, b))) = self.heap.peek() {
            if bits != free_at[b].to_bits() {
                self.heap.pop();
            } else {
                return Some(b);
            }
        }
        None
    }

    fn touch(&mut self, b: usize, new_free: f64) {
        self.idle.remove(&b);
        self.heap.push(std::cmp::Reverse((new_free.to_bits(), b)));
    }
}

/// The preserved baseline `run_open` (no tracer). See the module docs.
pub fn run_open_baseline(
    alloc: &Allocation,
    cls: &Classification,
    cluster: &ClusterSpec,
    catalog: &Catalog,
    requests: &[Request],
    warmup_backlog: f64,
    cfg: &SimConfig,
) -> OpenReport {
    run_open_baseline_traced(
        alloc,
        cls,
        cluster,
        catalog,
        requests,
        warmup_backlog,
        cfg,
        None,
    )
}

/// The preserved baseline `run_open_traced`. See the module docs.
#[allow(clippy::too_many_arguments)]
pub fn run_open_baseline_traced(
    alloc: &Allocation,
    cls: &Classification,
    cluster: &ClusterSpec,
    catalog: &Catalog,
    requests: &[Request],
    warmup_backlog: f64,
    cfg: &SimConfig,
    mut tracer: Option<&mut qcpa_obs::Tracer>,
) -> OpenReport {
    let _span = qcpa_obs::span("sim", "run_open_baseline");
    if let Some(tr) = tracer.as_deref_mut() {
        if tr.enabled() {
            for b in 0..cluster.len() {
                tr.tree.name_track(b as u32, format!("backend {b}"));
            }
        }
    }
    let scheduler = Scheduler::new(alloc, cls);
    let profile = ServiceProfile::new(alloc, cluster, catalog, cfg.locality);
    let n = cluster.len();
    let mut free_at = vec![warmup_backlog.max(0.0); n];
    let mut busy = vec![0.0f64; n];
    let mut responses = Vec::with_capacity(requests.len());
    let mut resp_hist = qcpa_obs::Histogram::new();
    let mut queue_hist = qcpa_obs::Histogram::new();

    let mut index = PendingIndex::new(&free_at);
    let mut last_t = 0.0f64;
    for (req_id, r) in requests.iter().enumerate() {
        debug_assert!(r.arrival >= last_t, "arrivals must be sorted");
        last_t = r.arrival;
        let t = r.arrival;
        let req_id = req_id as u64;
        let pending_at = |b: usize, free_at: &[f64]| (free_at[b] - t).max(0.0);
        match r.kind {
            QueryKind::Read => {
                let routed = if scheduler.read_targets(r.class).len() == n {
                    index.advance(&free_at, t);
                    index.least_pending(&free_at)
                } else {
                    scheduler.route_read_with(r.class, |b| pending_at(b, &free_at))
                };
                if let Some(b) = routed {
                    let svc = profile.effective(b, r.service);
                    let begin = free_at[b].max(t);
                    let done = begin + svc;
                    queue_hist.record(pending_at(b, &free_at));
                    free_at[b] = done;
                    index.touch(b, done);
                    busy[b] += svc;
                    resp_hist.record(done - t);
                    responses.push((t, done - t));
                    if let Some(tr) = tracer.as_deref_mut() {
                        if tr.admit(req_id) {
                            trace_leg(tr, req_id, "read", r.class.0, b, t, begin, done);
                        }
                    }
                }
            }
            QueryKind::Update => {
                let targets = scheduler.route_update(r.class);
                let sync = match cfg.propagation {
                    UpdatePropagation::Rowa => {
                        1.0 + cfg.rowa_overhead * (targets.len() as f64 - 1.0)
                    }
                    _ => 1.0,
                };
                let trace_this = tracer.as_ref().is_some_and(|tr| tr.admit(req_id));
                let mut legs: Vec<(usize, f64, f64)> = Vec::new();
                let mut done_all: f64 = t;
                let mut done_primary: f64 = t;
                for (i, &b) in targets.iter().enumerate() {
                    let mult = match cfg.propagation {
                        UpdatePropagation::Lazy { batching_discount } if i > 0 => batching_discount,
                        _ => sync,
                    };
                    let svc = profile.effective(b, r.service) * mult;
                    if i == 0 {
                        queue_hist.record(pending_at(b, &free_at));
                    }
                    let begin = free_at[b].max(t);
                    let done = begin + svc;
                    free_at[b] = done;
                    index.touch(b, done);
                    busy[b] += svc;
                    done_all = done_all.max(done);
                    if i == 0 {
                        done_primary = done;
                    }
                    if trace_this {
                        legs.push((b, begin, done));
                    }
                }
                let response = match cfg.propagation {
                    UpdatePropagation::Rowa => done_all - t,
                    _ => done_primary - t,
                };
                if !targets.is_empty() {
                    resp_hist.record(response);
                    responses.push((t, response));
                    if trace_this {
                        if let Some(tr) = tracer.as_deref_mut() {
                            trace_update(tr, req_id, r.class.0, t, t + response, &legs);
                        }
                    }
                }
            }
        }
    }

    let mut resp: Vec<f64> = responses.iter().map(|&(_, r)| r).collect();
    let mean_response = if resp.is_empty() {
        0.0
    } else {
        resp.iter().sum::<f64>() / resp.len() as f64
    };
    let p95_response = nearest_rank(&mut resp, 0.95);
    let window = requests.last().map(|r| r.arrival).unwrap_or(0.0).max(1e-9);
    let utilization: Vec<f64> = busy.iter().map(|b| b / window).collect();

    let reg = qcpa_obs::global();
    reg.counter("sim.open.requests").add(requests.len() as u64);
    reg.merge_histogram("sim.open.response_secs", &resp_hist);
    reg.merge_histogram("sim.open.queue_secs", &queue_hist);
    let mut busy_hist = qcpa_obs::Histogram::new();
    for (b, &s) in busy.iter().enumerate() {
        busy_hist.record(s);
        reg.gauge(&format!("sim.backend.{b}.busy_secs")).set(s);
        reg.gauge(&format!("sim.backend.{b}.utilization"))
            .set(utilization[b]);
    }
    reg.merge_histogram("sim.open.busy_secs", &busy_hist);

    OpenReport {
        responses,
        mean_response,
        p95_response,
        busy,
        utilization,
    }
}
