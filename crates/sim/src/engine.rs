//! The simulation drivers.
//!
//! * [`run_batch`]: the paper's throughput experiments — a fixed batch
//!   of requests flows through the scheduler into per-backend FIFO
//!   queues; the makespan (time until the last backend drains) gives
//!   the throughput.
//! * [`run_open`]: open-loop timed arrivals; each request's response
//!   time is its queueing delay plus service. Used for the
//!   autonomic-scaling experiments.

use qcpa_core::allocation::Allocation;
use qcpa_core::classify::Classification;
use qcpa_core::cluster::ClusterSpec;
use qcpa_core::fragment::Catalog;
use qcpa_core::journal::QueryKind;

use crate::queue::{EventQueue, QueueKind, SimQueue};
use crate::request::Request;
use crate::scheduler::Scheduler;
use crate::service::{LocalityModel, ServiceProfile};

/// How update requests propagate to replicas (Section 2: the paper
/// evaluates ROWA and notes that primary-copy and lazy replication
/// "could be easily incorporated into our model and system" — here they
/// are).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum UpdatePropagation {
    /// Read-once/write-all: the update executes synchronously on every
    /// replica; the request completes when the slowest replica is done.
    #[default]
    Rowa,
    /// Primary copy: the request completes when the (lowest-indexed)
    /// primary replica is done; the other replicas apply the same work
    /// asynchronously.
    PrimaryCopy,
    /// Lazy replication: like primary copy, but secondary replicas
    /// batch the propagated updates, discounting their work by this
    /// factor (at the cost of staleness, which the model does not
    /// charge).
    Lazy {
        /// Work multiplier for secondary replicas, in `(0, 1]`.
        batching_discount: f64,
    },
}

/// Simulator knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimConfig {
    /// Optional caching/locality effect (Section 4.1's super-linear
    /// speedup source). `None` models cost-proportional backends.
    pub locality: Option<LocalityModel>,
    /// Per-replica update synchronization overhead: an update executing
    /// on `r` backends costs `service × (1 + rowa_overhead × (r − 1))`
    /// on each of them (ROWA ordering/coordination). The Figure 4(i)
    /// large-scale experiment uses this to reproduce full replication's
    /// measured slowdown at 10 nodes; 0 disables it. Only charged under
    /// [`UpdatePropagation::Rowa`], whose total-order broadcast is what
    /// the overhead models.
    pub rowa_overhead: f64,
    /// Replica update propagation protocol.
    pub propagation: UpdatePropagation,
}

/// Result of a batch (throughput) run.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Seconds until all queues drained.
    pub makespan: f64,
    /// Logical requests per second (updates count once even though they
    /// fan out).
    pub throughput: f64,
    /// Per-backend busy seconds.
    pub busy: Vec<f64>,
    /// Number of logical requests processed.
    pub n_requests: usize,
    /// Requests that could not be routed (no capable backend) — always
    /// 0 for a valid allocation.
    pub unroutable: usize,
}

impl BatchReport {
    /// Relative deviation from balance: maximum relative deviation of
    /// any backend's busy time from the mean (the measured counterpart
    /// of Figure 4(j)).
    pub fn balance_deviation(&self) -> f64 {
        if self.busy.is_empty() {
            return 0.0;
        }
        let avg = self.busy.iter().sum::<f64>() / self.busy.len() as f64;
        if avg <= f64::EPSILON {
            return 0.0;
        }
        self.busy
            .iter()
            .map(|b| (b - avg).abs() / avg)
            .fold(0.0, f64::max)
    }
}

/// Pushes a batch of requests through the scheduler and measures the
/// makespan.
pub fn run_batch(
    alloc: &Allocation,
    cls: &Classification,
    cluster: &ClusterSpec,
    catalog: &Catalog,
    requests: &[Request],
    cfg: &SimConfig,
) -> BatchReport {
    let _span = qcpa_obs::span("sim", "run_batch");
    let scheduler = Scheduler::new(alloc, cls);
    let profile = ServiceProfile::new(alloc, cluster, catalog, cfg.locality);
    let n = cluster.len();
    let mut busy = vec![0.0f64; n];
    let mut unroutable = 0usize;
    // Batch "response time": every request is queued at t = 0 and each
    // backend serves FIFO, so a request completes when its backend's
    // accumulated busy time reaches it.
    let mut resp_hist = qcpa_obs::Histogram::new();

    for r in requests {
        match r.kind {
            QueryKind::Read => match scheduler.route_read(r.class, &busy) {
                Some(b) => {
                    busy[b] += profile.effective(b, r.service);
                    resp_hist.record(busy[b]);
                }
                None => unroutable += 1,
            },
            QueryKind::Update => {
                let targets = scheduler.route_update(r.class);
                if targets.is_empty() {
                    unroutable += 1;
                } else {
                    let sync = match cfg.propagation {
                        UpdatePropagation::Rowa => {
                            1.0 + cfg.rowa_overhead * (targets.len() as f64 - 1.0)
                        }
                        _ => 1.0,
                    };
                    for (i, &b) in targets.iter().enumerate() {
                        let mult = match cfg.propagation {
                            UpdatePropagation::Lazy { batching_discount } if i > 0 => {
                                batching_discount
                            }
                            _ => sync,
                        };
                        busy[b] += profile.effective(b, r.service) * mult;
                    }
                    // The update answers once its primary replica is done.
                    resp_hist.record(busy[targets[0]]);
                }
            }
        }
    }

    let makespan = busy.iter().copied().fold(0.0, f64::max).max(f64::EPSILON);

    // Publish per-run telemetry once (no per-request registry traffic).
    let reg = qcpa_obs::global();
    reg.counter("sim.batch.requests").add(requests.len() as u64);
    reg.counter("sim.batch.unroutable").add(unroutable as u64);
    let mut busy_hist = qcpa_obs::Histogram::new();
    for (b, &s) in busy.iter().enumerate() {
        busy_hist.record(s);
        reg.gauge(&format!("sim.backend.{b}.busy_secs")).set(s);
        reg.gauge(&format!("sim.backend.{b}.utilization"))
            .set(s / makespan);
    }
    reg.merge_histogram("sim.batch.busy_secs", &busy_hist);
    reg.merge_histogram("sim.batch.response_secs", &resp_hist);

    BatchReport {
        makespan,
        throughput: (requests.len() - unroutable) as f64 / makespan,
        busy,
        n_requests: requests.len(),
        unroutable,
    }
}

/// An index over the per-backend release times (`free_at`) answering
/// "which backend has the least pending work right now?" in O(log n)
/// instead of a full scan, for reads whose eligible set is the whole
/// cluster (e.g. full replication).
///
/// Time only moves forward in [`run_open`] (arrivals are sorted) and
/// release times only grow, which admits a two-tier structure:
///
/// * `idle` — backends already free at the current time. They all have
///   zero pending work, so the scheduler's tie-break (lowest index)
///   makes the answer `idle.first()`.
/// * `queue` — a lazy min-queue of `(free_at_bits, backend)` events for
///   the rest, running on the pluggable [`SimQueue`] (binary heap or
///   calendar queue, see [`crate::queue`]). Entries are never removed
///   on update; a popped entry that disagrees with the live `free_at`
///   value is stale and skipped. Keys are the raw IEEE bits, whose
///   order matches the numeric order for the non-negative release
///   times, and the backend index doubles as the FIFO tie-break `seq`,
///   reproducing the scheduler's lowest-index rule exactly.
///
/// Since the index only ever answers full-cluster reads, the open-loop
/// core builds it *lazily*: workloads where no read class is eligible
/// on every backend (any partial allocation) never pay the per-leg
/// `touch` — which is what made update fan-out O(log n) per leg before
/// the rewrite.
struct PendingIndex {
    idle: std::collections::BTreeSet<usize>,
    queue: SimQueue,
}

impl PendingIndex {
    fn new(free_at: &[f64], kind: QueueKind) -> Self {
        let mut queue = SimQueue::with_capacity(kind, free_at.len() * 2);
        for (b, &f) in free_at.iter().enumerate() {
            queue.push(f.to_bits(), b as u64);
        }
        Self {
            idle: std::collections::BTreeSet::new(),
            queue,
        }
    }

    /// Moves every backend whose release time has passed `t` into the
    /// idle tier. Amortized O(log n): each queued entry is popped once.
    fn advance(&mut self, free_at: &[f64], t: f64) {
        while let Some((bits, b)) = self.queue.peek() {
            let b = b as usize;
            if bits != free_at[b].to_bits() {
                self.queue.pop(); // stale entry superseded by a later push
            } else if f64::from_bits(bits) <= t {
                self.queue.pop();
                self.idle.insert(b);
            } else {
                break;
            }
        }
    }

    /// The backend with the least pending work, ties to the lowest
    /// index — matching the scheduler's least-pending rule over the full
    /// cluster. Call [`Self::advance`] first.
    fn least_pending(&mut self, free_at: &[f64]) -> Option<usize> {
        if let Some(&b) = self.idle.first() {
            return Some(b);
        }
        while let Some((bits, b)) = self.queue.peek() {
            let b = b as usize;
            if bits != free_at[b].to_bits() {
                self.queue.pop();
            } else {
                return Some(b);
            }
        }
        None
    }

    /// Records that backend `b` was dispatched work and now frees at
    /// `new_free` (which never decreases).
    fn touch(&mut self, b: usize, new_free: f64) {
        self.idle.remove(&b);
        self.queue.push(new_free.to_bits(), b as u64);
    }
}

/// Nearest-rank percentile (1-based rank `ceil(q·n)`, clamped to
/// `[1, n]`) — the same rule as [`qcpa_obs::Histogram`] quantiles, so
/// report percentiles and metrics-sidecar percentiles agree. Selects in
/// O(n) without sorting; `values` is reordered. Returns 0 for an empty
/// slice.
pub(crate) fn nearest_rank(values: &mut [f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let rank = ((values.len() as f64 * q).ceil() as usize).clamp(1, values.len());
    let (_, v, _) = values.select_nth_unstable_by(rank - 1, |a, b| a.total_cmp(b));
    *v
}

/// Records a sampled single-backend request as a
/// `request → queue → service` span tree. Span ids derive from
/// `(seed, request, attempt)` with attempts 0/1/2 for the three spans.
#[allow(clippy::too_many_arguments)]
pub(crate) fn trace_leg(
    tr: &mut qcpa_obs::Tracer,
    req: u64,
    name: &'static str,
    class: u32,
    backend: usize,
    arrival: f64,
    begin: f64,
    done: f64,
) {
    let track = backend as u32;
    let root = tr
        .tree
        .begin(tr.span_id(req, 0), None, "request", name, track, arrival);
    tr.tree.arg(root, "request", req);
    tr.tree.arg(root, "class", class);
    tr.tree.arg(root, "backend", backend);
    if begin > arrival {
        let q = tr.tree.begin(
            tr.span_id(req, 1),
            Some(root),
            "queue",
            "queue",
            track,
            arrival,
        );
        tr.tree.end(q, begin);
    }
    let s = tr.tree.begin(
        tr.span_id(req, 2),
        Some(root),
        "service",
        "service",
        track,
        begin,
    );
    tr.tree.end(s, done);
    tr.tree.end(root, done);
}

/// Records a sampled update as a `request` root (on the primary's
/// track) with one `leg` child per replica: `legs` holds
/// `(backend, service_begin, service_end)` in fan-out order.
pub(crate) fn trace_update(
    tr: &mut qcpa_obs::Tracer,
    req: u64,
    class: u32,
    arrival: f64,
    resp_end: f64,
    legs: &[(usize, f64, f64)],
) {
    let track = legs.first().map_or(0, |&(b, _, _)| b as u32);
    let root = tr.tree.begin(
        tr.span_id(req, 0),
        None,
        "request",
        "update",
        track,
        arrival,
    );
    tr.tree.arg(root, "request", req);
    tr.tree.arg(root, "class", class);
    tr.tree.arg(root, "replicas", legs.len());
    for (i, &(b, begin, done)) in legs.iter().enumerate() {
        let leg = tr.tree.begin(
            tr.span_id(req, 1 + i as u64),
            Some(root),
            "service",
            "leg",
            b as u32,
            begin,
        );
        tr.tree.arg(leg, "backend", b);
        tr.tree.end(leg, done);
    }
    tr.tree.end(root, resp_end);
}

/// Result of an open-loop (response-time) run.
#[derive(Debug, Clone)]
pub struct OpenReport {
    /// `(arrival, response)` per request, in arrival order.
    pub responses: Vec<(f64, f64)>,
    /// Mean response time in seconds.
    pub mean_response: f64,
    /// 95th percentile response time.
    pub p95_response: f64,
    /// Per-backend busy seconds.
    pub busy: Vec<f64>,
    /// Per-backend utilization over the observation window.
    pub utilization: Vec<f64>,
}

/// Runs timed arrivals through the scheduler. `warmup_backlog` seeds
/// each backend's initial backlog (used by the autoscaler to model
/// reallocation pauses). Requests must be sorted by arrival time.
pub fn run_open(
    alloc: &Allocation,
    cls: &Classification,
    cluster: &ClusterSpec,
    catalog: &Catalog,
    requests: &[Request],
    warmup_backlog: f64,
    cfg: &SimConfig,
) -> OpenReport {
    run_open_traced(
        alloc,
        cls,
        cluster,
        catalog,
        requests,
        warmup_backlog,
        cfg,
        None,
    )
}

/// [`run_open`] with causal tracing: sampled requests (by arrival
/// index) record `request → queue → service` span trees (updates: one
/// `leg` span per replica) into `tracer`'s [`qcpa_obs::TraceTree`] on
/// the sim clock. `None` — or a tracer with `QCPA_TRACE_SAMPLE=0` —
/// costs nothing per request (the sampling check is hoisted out of the
/// loop).
#[allow(clippy::too_many_arguments)]
pub fn run_open_traced(
    alloc: &Allocation,
    cls: &Classification,
    cluster: &ClusterSpec,
    catalog: &Catalog,
    requests: &[Request],
    warmup_backlog: f64,
    cfg: &SimConfig,
    tracer: Option<&mut qcpa_obs::Tracer>,
) -> OpenReport {
    run_open_with(
        alloc,
        cls,
        cluster,
        catalog,
        requests,
        warmup_backlog,
        cfg,
        tracer,
        QueueKind::from_env(),
    )
}

/// [`run_open_traced`] with an explicit event-queue implementation,
/// bypassing the `QCPA_SIM_QUEUE` knob — the entry point the
/// differential suite uses to pit the implementations against each
/// other without touching process environment.
#[allow(clippy::too_many_arguments)]
pub fn run_open_with(
    alloc: &Allocation,
    cls: &Classification,
    cluster: &ClusterSpec,
    catalog: &Catalog,
    requests: &[Request],
    warmup_backlog: f64,
    cfg: &SimConfig,
    mut tracer: Option<&mut qcpa_obs::Tracer>,
    kind: QueueKind,
) -> OpenReport {
    let _span = qcpa_obs::span("sim", "run_open");
    if let Some(tr) = tracer.as_deref_mut() {
        if tr.enabled() {
            for b in 0..cluster.len() {
                tr.tree.name_track(b as u32, format!("backend {b}"));
            }
        }
    }
    let scheduler = Scheduler::new(alloc, cls);
    let profile = ServiceProfile::new(alloc, cluster, catalog, cfg.locality);
    let n = cluster.len();
    let (outcomes, busy) = open_loop_core(
        &scheduler,
        &profile,
        n,
        requests,
        warmup_backlog,
        cfg,
        kind,
        tracer,
    );
    finish_open_report(requests, &outcomes, busy)
}

/// One routed request's contribution to the report: its index in the
/// driving request slice, and the values the baseline engine recorded
/// for it (queueing delay at dispatch, response time). Reads that found
/// no eligible backend and updates with an empty ROWA set produce no
/// outcome, exactly as they produced no records before.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CoreOutcome {
    /// Index into the request slice the core was driven with.
    pub(crate) req: u32,
    /// Arrival time.
    pub(crate) arrival: f64,
    /// Queueing delay at the (primary) backend when dispatched.
    pub(crate) queue_delay: f64,
    /// Response time.
    pub(crate) response: f64,
}

/// The open-loop hot path: routes `requests` (sorted by arrival),
/// advances per-backend release times, and returns the per-request
/// outcomes plus per-backend busy seconds. All statistics,
/// histogramming, and registry traffic live in the callers so the
/// sharded runner can merge outcomes from several cores in global
/// arrival order and rebuild bit-identical aggregates.
#[allow(clippy::too_many_arguments)]
pub(crate) fn open_loop_core(
    scheduler: &Scheduler,
    profile: &ServiceProfile,
    n: usize,
    requests: &[Request],
    warmup_backlog: f64,
    cfg: &SimConfig,
    kind: QueueKind,
    mut tracer: Option<&mut qcpa_obs::Tracer>,
) -> (Vec<CoreOutcome>, Vec<f64>) {
    let mut free_at = vec![warmup_backlog.max(0.0); n];
    let mut busy = vec![0.0f64; n];
    let mut outcomes = Vec::with_capacity(requests.len());

    // Per-class dispatch tables, hoisted out of the per-request loop.
    let nc = scheduler.n_classes();
    // Whether a read class's eligible set is the whole cluster — the
    // only case the pending index answers.
    let mut full_set = vec![false; nc];
    // An update's service multiplier on its primary (first) and
    // secondary legs, resolving the propagation-protocol match once.
    let mut first_mult = vec![1.0f64; nc];
    let mut rest_mult = vec![1.0f64; nc];
    for c in 0..nc {
        let id = qcpa_core::ClassId(c as u32);
        full_set[c] = scheduler.read_targets(id).len() == n;
        let targets = scheduler.route_update(id);
        let sync = match cfg.propagation {
            UpdatePropagation::Rowa => 1.0 + cfg.rowa_overhead * (targets.len() as f64 - 1.0),
            _ => 1.0,
        };
        first_mult[c] = sync;
        rest_mult[c] = match cfg.propagation {
            UpdatePropagation::Lazy { batching_discount } => batching_discount,
            _ => sync,
        };
    }
    let rowa_response = matches!(cfg.propagation, UpdatePropagation::Rowa);
    // The index is only consulted for full-cluster reads; when no class
    // can ask, skip its per-leg maintenance entirely.
    let mut index = full_set
        .iter()
        .any(|&f| f)
        .then(|| PendingIndex::new(&free_at, kind));
    // Hoisted tracer gate: a disabled sampler (`QCPA_TRACE_SAMPLE=0`,
    // the production setting) costs nothing per request.
    let trace_on = tracer.as_deref().is_some_and(|tr| tr.enabled());

    let mut last_t = 0.0f64;
    for (req_id, r) in requests.iter().enumerate() {
        debug_assert!(r.arrival >= last_t, "arrivals must be sorted");
        last_t = r.arrival;
        let t = r.arrival;
        let cid = r.class.idx();
        match r.kind {
            QueryKind::Read => {
                // Full-cluster eligible set: answer from the index in
                // O(log n). Restricted set: probe just those targets.
                let routed = match index.as_mut() {
                    Some(idx) if full_set[cid] => {
                        idx.advance(&free_at, t);
                        idx.least_pending(&free_at)
                    }
                    _ => scheduler.route_read_with(r.class, |b| (free_at[b] - t).max(0.0)),
                };
                if let Some(b) = routed {
                    let svc = profile.effective(b, r.service);
                    let queue_delay = (free_at[b] - t).max(0.0);
                    let begin = free_at[b].max(t);
                    let done = begin + svc;
                    free_at[b] = done;
                    if let Some(idx) = index.as_mut() {
                        idx.touch(b, done);
                    }
                    busy[b] += svc;
                    outcomes.push(CoreOutcome {
                        req: req_id as u32,
                        arrival: t,
                        queue_delay,
                        response: done - t,
                    });
                    if trace_on {
                        if let Some(tr) = tracer.as_deref_mut() {
                            let req = req_id as u64;
                            if tr.admit(req) {
                                trace_leg(tr, req, "read", r.class.0, b, t, begin, done);
                            }
                        }
                    }
                }
            }
            QueryKind::Update => {
                let targets = scheduler.route_update(r.class);
                let Some((&b0, rest)) = targets.split_first() else {
                    continue; // empty ROWA set: no legs, no record
                };
                let trace_this =
                    trace_on && tracer.as_ref().is_some_and(|tr| tr.admit(req_id as u64));
                let mut legs: Vec<(usize, f64, f64)> = Vec::new();
                // Primary leg, peeled: it alone sets the queueing delay
                // and the primary-copy response.
                let svc0 = profile.effective(b0, r.service) * first_mult[cid];
                let queue_delay = (free_at[b0] - t).max(0.0);
                let begin0 = free_at[b0].max(t);
                let done_primary = begin0 + svc0;
                free_at[b0] = done_primary;
                if let Some(idx) = index.as_mut() {
                    idx.touch(b0, done_primary);
                }
                busy[b0] += svc0;
                let mut done_all = t.max(done_primary);
                if trace_this {
                    legs.push((b0, begin0, done_primary));
                }
                let rm = rest_mult[cid];
                for &b in rest {
                    let svc = profile.effective(b, r.service) * rm;
                    let begin = free_at[b].max(t);
                    let done = begin + svc;
                    free_at[b] = done;
                    if let Some(idx) = index.as_mut() {
                        idx.touch(b, done);
                    }
                    busy[b] += svc;
                    done_all = done_all.max(done);
                    if trace_this {
                        legs.push((b, begin, done));
                    }
                }
                let response = if rowa_response {
                    done_all - t
                } else {
                    done_primary - t
                };
                outcomes.push(CoreOutcome {
                    req: req_id as u32,
                    arrival: t,
                    queue_delay,
                    response,
                });
                if trace_this {
                    if let Some(tr) = tracer.as_deref_mut() {
                        trace_update(tr, req_id as u64, r.class.0, t, t + response, &legs);
                    }
                }
            }
        }
    }
    (outcomes, busy)
}

/// Builds the [`OpenReport`] (and publishes the run's registry
/// telemetry) from core outcomes. `outcomes` must be in global arrival
/// order — the histogram accumulation order is part of the bit-identity
/// contract with the baseline engine. `requests` is the *full* driving
/// slice (its last arrival defines the utilization window).
pub(crate) fn finish_open_report(
    requests: &[Request],
    outcomes: &[CoreOutcome],
    busy: Vec<f64>,
) -> OpenReport {
    // Local histograms keep the per-request cost to two array
    // increments; they are merged into the global registry once at the
    // end of the run.
    let mut resp_hist = qcpa_obs::Histogram::new();
    let mut queue_hist = qcpa_obs::Histogram::new();
    let mut responses = Vec::with_capacity(outcomes.len());
    for o in outcomes {
        queue_hist.record(o.queue_delay);
        resp_hist.record(o.response);
        responses.push((o.arrival, o.response));
    }

    let mut resp: Vec<f64> = responses.iter().map(|&(_, r)| r).collect();
    let mean_response = if resp.is_empty() {
        0.0
    } else {
        resp.iter().sum::<f64>() / resp.len() as f64
    };
    let p95_response = nearest_rank(&mut resp, 0.95);
    let window = requests.last().map(|r| r.arrival).unwrap_or(0.0).max(1e-9);
    let utilization: Vec<f64> = busy.iter().map(|b| b / window).collect();

    let reg = qcpa_obs::global();
    reg.counter("sim.open.requests").add(requests.len() as u64);
    reg.merge_histogram("sim.open.response_secs", &resp_hist);
    reg.merge_histogram("sim.open.queue_secs", &queue_hist);
    let mut busy_hist = qcpa_obs::Histogram::new();
    for (b, &s) in busy.iter().enumerate() {
        busy_hist.record(s);
        reg.gauge(&format!("sim.backend.{b}.busy_secs")).set(s);
        reg.gauge(&format!("sim.backend.{b}.utilization"))
            .set(utilization[b]);
    }
    reg.merge_histogram("sim.open.busy_secs", &busy_hist);

    OpenReport {
        responses,
        mean_response,
        p95_response,
        busy,
        utilization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestStream;
    use qcpa_core::classify::QueryClass;
    use qcpa_core::greedy;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn read_only() -> (Catalog, Classification, RequestStream) {
        let mut cat = Catalog::new();
        let a = cat.add_table("A", 100);
        let b = cat.add_table("B", 100);
        let c = cat.add_table("C", 100);
        let cls = Classification::from_classes(vec![
            QueryClass::read(0, [a], 0.30),
            QueryClass::read(1, [b], 0.25),
            QueryClass::read(2, [c], 0.25),
            QueryClass::read(3, [a, b], 0.20),
        ])
        .unwrap();
        let stream = RequestStream::new(
            vec![30.0, 25.0, 25.0, 20.0],
            vec![QueryKind::Read; 4],
            vec![0.01; 4],
        );
        (cat, cls, stream)
    }

    /// Measured speedup tracks the model's |B|/scale prediction.
    #[test]
    fn batch_speedup_matches_model_read_only() {
        let (cat, cls, stream) = read_only();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let reqs = stream.sample_batch(20_000, 0.0, &mut rng);
        let cfg = SimConfig::default();

        let c1 = ClusterSpec::homogeneous(1);
        let a1 = greedy::allocate(&cls, &cat, &c1);
        let base = run_batch(&a1, &cls, &c1, &cat, &reqs, &cfg);

        for n in [2usize, 4] {
            let cn = ClusterSpec::homogeneous(n);
            let an = greedy::allocate(&cls, &cat, &cn);
            let rep = run_batch(&an, &cls, &cn, &cat, &reqs, &cfg);
            assert_eq!(rep.unroutable, 0);
            let speedup = base.makespan / rep.makespan;
            let predicted = an.speedup(&cn);
            assert!(
                (speedup - predicted).abs() / predicted < 0.05,
                "n={n}: measured {speedup:.2} vs predicted {predicted:.2}"
            );
        }
    }

    /// Updates fan out: full replication saturates per Amdahl (Eq. 1).
    #[test]
    fn batch_update_workload_amdahl() {
        let mut cat = Catalog::new();
        let a = cat.add_table("A", 100);
        let cls = Classification::from_classes(vec![
            QueryClass::read(0, [a], 0.75),
            QueryClass::update(1, [a], 0.25),
        ])
        .unwrap();
        let stream = RequestStream::new(
            vec![75.0, 25.0],
            vec![QueryKind::Read, QueryKind::Update],
            vec![0.01, 0.01],
        );
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let reqs = stream.sample_batch(40_000, 0.0, &mut rng);
        let cfg = SimConfig::default();

        let c1 = ClusterSpec::homogeneous(1);
        let full1 = Allocation::full_replication(&cls, &c1);
        let base = run_batch(&full1, &cls, &c1, &cat, &reqs, &cfg);

        let c10 = ClusterSpec::homogeneous(10);
        let full10 = Allocation::full_replication(&cls, &c10);
        let rep = run_batch(&full10, &cls, &c10, &cat, &reqs, &cfg);
        let speedup = base.makespan / rep.makespan;
        let amdahl = qcpa_core::speedup::amdahl(0.75, 0.25, 10);
        assert!(
            (speedup - amdahl).abs() / amdahl < 0.06,
            "measured {speedup:.2} vs Amdahl {amdahl:.2}"
        );
    }

    #[test]
    fn balance_deviation_reflects_skew() {
        let (cat, cls, stream) = read_only();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let reqs = stream.sample_batch(10_000, 0.0, &mut rng);
        let c2 = ClusterSpec::homogeneous(2);
        let alloc = greedy::allocate(&cls, &cat, &c2);
        let rep = run_batch(&alloc, &cls, &c2, &cat, &reqs, &SimConfig::default());
        assert!(
            rep.balance_deviation() < 0.05,
            "{}",
            rep.balance_deviation()
        );
    }

    #[test]
    fn open_loop_responses_grow_with_load() {
        let (cat, cls, stream) = read_only();
        let c2 = ClusterSpec::homogeneous(2);
        let alloc = greedy::allocate(&cls, &cat, &c2);
        let cfg = SimConfig::default();
        // Capacity: 2 backends × 100 req/s each = 200 req/s.
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let light = stream.sample_poisson(60.0, 60.0, 0.0, &mut rng);
        let heavy = stream.sample_poisson(180.0, 60.0, 0.0, &mut rng);
        let rl = run_open(&alloc, &cls, &c2, &cat, &light, 0.0, &cfg);
        let rh = run_open(&alloc, &cls, &c2, &cat, &heavy, 0.0, &cfg);
        assert!(rl.mean_response < rh.mean_response);
        assert!(rl.utilization.iter().all(|&u| u < 0.5));
        assert!(rh.utilization.iter().any(|&u| u > 0.7));
    }

    #[test]
    fn warmup_backlog_delays_early_requests() {
        let (cat, cls, stream) = read_only();
        let c2 = ClusterSpec::homogeneous(2);
        let alloc = greedy::allocate(&cls, &cat, &c2);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let reqs = stream.sample_poisson(10.0, 30.0, 0.0, &mut rng);
        let cold = run_open(&alloc, &cls, &c2, &cat, &reqs, 5.0, &SimConfig::default());
        let warm = run_open(&alloc, &cls, &c2, &cat, &reqs, 0.0, &SimConfig::default());
        assert!(cold.responses[0].1 > warm.responses[0].1 + 4.0);
    }

    /// Pinned: p95 uses the nearest-rank rule (1-based rank
    /// `ceil(0.95·n)`), the same convention as the obs histogram
    /// quantiles — not a truncating index.
    #[test]
    fn p95_uses_ceil_based_nearest_rank() {
        // n = 100: rank ceil(95.0) = 95 → the 95th smallest value.
        let mut v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(nearest_rank(&mut v, 0.95), 95.0);
        // n = 20: rank ceil(19.0) = 19 → 19.0 (truncation would also
        // give index 19 = value 20.0; the ceil rank gives 19.0).
        let mut v: Vec<f64> = (1..=20).map(f64::from).collect();
        assert_eq!(nearest_rank(&mut v, 0.95), 19.0);
        // n = 7: rank ceil(6.65) = 7 → the maximum.
        let mut v: Vec<f64> = (1..=7).map(f64::from).collect();
        assert_eq!(nearest_rank(&mut v, 0.95), 7.0);
        // Degenerate cases.
        assert_eq!(nearest_rank(&mut [], 0.95), 0.0);
        assert_eq!(nearest_rank(&mut [3.25], 0.95), 3.25);
        // Order-independent: selection, not a pre-sorted lookup.
        let mut v = vec![5.0, 1.0, 4.0, 2.0, 3.0];
        assert_eq!(nearest_rank(&mut v, 0.95), 5.0);
    }

    /// The report's percentile agrees with the obs histogram's quantile
    /// rule on the identical sample set (up to the histogram's
    /// log-bucket resolution).
    #[test]
    fn report_p95_matches_histogram_quantile_rule() {
        let values: Vec<f64> = (1..=200).map(|i| i as f64 * 1e-3).collect();
        let mut hist = qcpa_obs::Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        let mut v = values.clone();
        let exact = nearest_rank(&mut v, 0.95);
        let bucketed = hist.quantile(0.95).expect("histogram is non-empty");
        assert!(
            (bucketed - exact).abs() / exact < 0.05,
            "histogram {bucketed} vs nearest-rank {exact}"
        );
    }

    /// The queue/idle-set index answers exactly like a naive full scan
    /// with the scheduler's tie-break, across growing time and random
    /// dispatches — on both event-queue implementations.
    #[test]
    fn pending_index_matches_linear_scan() {
        use rand::Rng;
        for kind in [QueueKind::Heap, QueueKind::Calendar] {
            let n = 8;
            let mut rng = ChaCha8Rng::seed_from_u64(42);
            let mut free_at = vec![0.5f64; n];
            let mut index = PendingIndex::new(&free_at, kind);
            let mut t = 0.0;
            for _ in 0..2_000 {
                t += rng.gen_range(0.0..0.02);
                index.advance(&free_at, t);
                let fast = index.least_pending(&free_at).unwrap();
                let naive = (0..n)
                    .min_by(|&a, &b| {
                        let pa = (free_at[a] - t).max(0.0);
                        let pb = (free_at[b] - t).max(0.0);
                        pa.partial_cmp(&pb).unwrap().then(a.cmp(&b))
                    })
                    .unwrap();
                assert_eq!(fast, naive, "kind={kind:?} t={t}");
                // Dispatch to the chosen backend, sometimes to a random
                // one too (update fan-out touches non-minimal backends).
                let done = free_at[fast].max(t) + rng.gen_range(0.001..0.05);
                free_at[fast] = done;
                index.touch(fast, done);
                if rng.gen_bool(0.3) {
                    let b = rng.gen_range(0..n);
                    let done = free_at[b].max(t) + rng.gen_range(0.001..0.05);
                    free_at[b] = done;
                    index.touch(b, done);
                }
            }
        }
    }

    #[test]
    fn locality_speeds_up_partial_replication() {
        let (cat, cls, stream) = read_only();
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let reqs = stream.sample_batch(10_000, 0.0, &mut rng);
        let c4 = ClusterSpec::homogeneous(4);
        let partial = greedy::allocate(&cls, &cat, &c4);
        let full = Allocation::full_replication(&cls, &c4);
        let cfg = SimConfig {
            locality: Some(LocalityModel { floor: 0.7 }),
            ..Default::default()
        };
        let rp = run_batch(&partial, &cls, &c4, &cat, &reqs, &cfg);
        let rf = run_batch(&full, &cls, &c4, &cat, &reqs, &cfg);
        assert!(
            rp.throughput > rf.throughput,
            "partial {} vs full {}",
            rp.throughput,
            rf.throughput
        );
    }
}

#[cfg(test)]
mod propagation_tests {
    use super::*;
    use crate::request::RequestStream;
    use qcpa_core::classify::{Classification, QueryClass};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// A write-heavy workload on full replication: the protocols
    /// differentiate on replicated update work.
    fn setup() -> (Catalog, Classification, Vec<Request>) {
        let mut cat = Catalog::new();
        let a = cat.add_table("A", 100);
        let cls = Classification::from_classes(vec![
            QueryClass::read(0, [a], 0.5),
            QueryClass::update(1, [a], 0.5),
        ])
        .unwrap();
        let stream = RequestStream::new(
            vec![50.0, 50.0],
            vec![QueryKind::Read, QueryKind::Update],
            vec![0.01, 0.01],
        );
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let reqs = stream.sample_poisson(120.0, 60.0, 0.0, &mut rng);
        (cat, cls, reqs)
    }

    #[test]
    fn primary_copy_cuts_update_response_not_work() {
        let (cat, cls, reqs) = setup();
        let cluster = ClusterSpec::homogeneous(4);
        let full = Allocation::full_replication(&cls, &cluster);
        let rowa = run_open(
            &full,
            &cls,
            &cluster,
            &cat,
            &reqs,
            0.0,
            &SimConfig::default(),
        );
        let pc = run_open(
            &full,
            &cls,
            &cluster,
            &cat,
            &reqs,
            0.0,
            &SimConfig {
                propagation: UpdatePropagation::PrimaryCopy,
                ..Default::default()
            },
        );
        assert!(
            pc.mean_response < rowa.mean_response,
            "primary copy {} vs ROWA {}",
            pc.mean_response,
            rowa.mean_response
        );
        // Same total work: the replicas still apply every update.
        let w_rowa: f64 = rowa.busy.iter().sum();
        let w_pc: f64 = pc.busy.iter().sum();
        assert!((w_rowa - w_pc).abs() / w_rowa < 1e-9);
    }

    #[test]
    fn lazy_replication_reduces_replica_work() {
        let (cat, cls, reqs) = setup();
        let cluster = ClusterSpec::homogeneous(4);
        let full = Allocation::full_replication(&cls, &cluster);
        let cfg = SimConfig {
            propagation: UpdatePropagation::Lazy {
                batching_discount: 0.4,
            },
            ..Default::default()
        };
        let lazy = run_batch(&full, &cls, &cluster, &cat, &reqs, &cfg);
        let rowa = run_batch(&full, &cls, &cluster, &cat, &reqs, &SimConfig::default());
        assert!(
            lazy.throughput > rowa.throughput,
            "lazy {} vs ROWA {}",
            lazy.throughput,
            rowa.throughput
        );
    }

    #[test]
    fn protocols_agree_on_single_replica() {
        let (cat, cls, reqs) = setup();
        let cluster = ClusterSpec::homogeneous(1);
        let full = Allocation::full_replication(&cls, &cluster);
        let rowa = run_open(
            &full,
            &cls,
            &cluster,
            &cat,
            &reqs,
            0.0,
            &SimConfig::default(),
        );
        let pc = run_open(
            &full,
            &cls,
            &cluster,
            &cat,
            &reqs,
            0.0,
            &SimConfig {
                propagation: UpdatePropagation::PrimaryCopy,
                ..Default::default()
            },
        );
        assert!((rowa.mean_response - pc.mean_response).abs() < 1e-12);
    }
}

#[cfg(test)]
mod balance_tests {
    use super::*;
    use qcpa_core::classify::QueryClass;
    use qcpa_core::greedy;
    use qcpa_core::ClassId;

    fn report(busy: Vec<f64>) -> BatchReport {
        BatchReport {
            makespan: 1.0,
            throughput: 0.0,
            busy,
            n_requests: 0,
            unroutable: 0,
        }
    }

    /// A perfectly balanced cluster deviates by exactly 0 (the values
    /// are chosen exactly representable, so the mean is exact too).
    #[test]
    fn balanced_cluster_has_zero_deviation() {
        assert_eq!(report(vec![2.0, 2.0]).balance_deviation(), 0.0);
        assert_eq!(report(vec![0.5, 0.5, 0.5, 0.5]).balance_deviation(), 0.0);
    }

    /// No backends or an idle cluster: deviation is 0, not NaN.
    #[test]
    fn empty_and_idle_reports_have_zero_deviation() {
        assert_eq!(report(vec![]).balance_deviation(), 0.0);
        assert_eq!(report(vec![0.0, 0.0]).balance_deviation(), 0.0);
    }

    /// The deviation is the worst backend's relative gap to the mean.
    #[test]
    fn deviation_is_the_worst_relative_gap() {
        // busy [1, 3]: mean 2, both gaps |b - 2| / 2 = 0.5.
        assert_eq!(report(vec![1.0, 3.0]).balance_deviation(), 0.5);
        // busy [2, 2, 8]: mean 4, worst gap |8 - 4| / 4 = 1.
        assert_eq!(report(vec![2.0, 2.0, 8.0]).balance_deviation(), 1.0);
    }

    /// The drivers publish their telemetry into the global registry.
    #[test]
    fn runs_populate_the_global_registry() {
        let mut cat = Catalog::new();
        let a = cat.add_table("A", 100);
        let cls = Classification::from_classes(vec![QueryClass::read(0, [a], 1.0)]).unwrap();
        let cluster = ClusterSpec::homogeneous(2);
        let alloc = greedy::allocate(&cls, &cat, &cluster);
        let reqs: Vec<Request> = (0..50)
            .map(|i| Request {
                class: ClassId(0),
                kind: QueryKind::Read,
                service: 0.005,
                arrival: i as f64 * 0.01,
            })
            .collect();
        let cfg = SimConfig::default();
        run_open(&alloc, &cls, &cluster, &cat, &reqs, 0.0, &cfg);
        run_batch(&alloc, &cls, &cluster, &cat, &reqs, &cfg);

        let snap = qcpa_obs::global().snapshot();
        let resp = &snap.histograms["sim.open.response_secs"];
        assert!(resp.count >= 50, "response histogram captured the run");
        assert!(resp.p50 > 0.0 && resp.p99 >= resp.p50);
        assert!(snap.histograms["sim.batch.busy_secs"].count >= 2);
        assert!(snap.histograms["sim.batch.response_secs"].count >= 50);
        assert!(snap.gauges.contains_key("sim.backend.0.utilization"));
        assert!(snap.counters["sim.batch.requests"] >= 50);
    }
}
