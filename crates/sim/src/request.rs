//! Simulated requests and request streams.

use qcpa_core::journal::QueryKind;
use qcpa_core::ClassId;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// One request to process: an instance of a query class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// The query class this request belongs to.
    pub class: ClassId,
    /// Read or update.
    pub kind: QueryKind,
    /// Service demand in seconds on a reference backend (before backend
    /// speed and locality adjustments).
    pub service: f64,
    /// Arrival time in seconds (0 for batch experiments).
    pub arrival: f64,
}

/// Generates request sequences by sampling query classes according to
/// their *frequencies* (how often queries of the class occur — distinct
/// from their weights, which also factor in per-query cost).
#[derive(Debug, Clone)]
pub struct RequestStream {
    /// Per-class occurrence frequency (need not be normalized).
    pub frequency: Vec<f64>,
    /// Per-class kind.
    pub kinds: Vec<QueryKind>,
    /// Per-class mean service seconds on the reference backend.
    pub service: Vec<f64>,
}

impl RequestStream {
    /// Builds a stream spec.
    ///
    /// # Panics
    /// Panics if the vectors disagree in length, frequencies are
    /// negative or all zero, or a service time is non-positive for a
    /// class with positive frequency.
    pub fn new(frequency: Vec<f64>, kinds: Vec<QueryKind>, service: Vec<f64>) -> Self {
        assert_eq!(frequency.len(), kinds.len());
        assert_eq!(frequency.len(), service.len());
        assert!(
            frequency.iter().all(|&f| f >= 0.0),
            "frequencies are non-negative"
        );
        assert!(frequency.iter().sum::<f64>() > 0.0, "some class must occur");
        for (f, s) in frequency.iter().zip(&service) {
            assert!(*f == 0.0 || *s > 0.0, "occurring classes need service time");
        }
        Self {
            frequency,
            kinds,
            service,
        }
    }

    /// The weight each class contributes to the workload:
    /// `freq × service` normalized — consistent with Eq. 4, where weight
    /// is the summed execution time share.
    pub fn weights(&self) -> Vec<f64> {
        let raw: Vec<f64> = self
            .frequency
            .iter()
            .zip(&self.service)
            .map(|(f, s)| f * s)
            .collect();
        let total: f64 = raw.iter().sum();
        raw.into_iter().map(|w| w / total).collect()
    }

    /// Samples `n` batch requests (arrival 0). `jitter` perturbs service
    /// times multiplicatively by `exp(U(-jitter, jitter))`, modelling
    /// run-to-run variance.
    pub fn sample_batch(&self, n: usize, jitter: f64, rng: &mut ChaCha8Rng) -> Vec<Request> {
        let cum = self.cumulative();
        (0..n)
            .map(|_| self.sample_one(&cum, 0.0, jitter, rng))
            .collect()
    }

    /// Samples a Poisson-process arrival stream with the given rate
    /// (requests/second) over `duration` seconds.
    ///
    /// The output buffer is pre-sized to the expected count (plus ~4σ
    /// headroom), so generation is a single allocation in the common
    /// case; the per-request RNG draw order is exactly one interarrival
    /// draw, one class draw, and — only when `jitter > 0` — one jitter
    /// draw, and must stay that way (seeded experiment results are
    /// pinned on it).
    pub fn sample_poisson(
        &self,
        rate: f64,
        duration: f64,
        jitter: f64,
        rng: &mut ChaCha8Rng,
    ) -> Vec<Request> {
        assert!(rate > 0.0 && duration > 0.0);
        let cum = self.cumulative();
        let expect = rate * duration;
        let mut out = Vec::with_capacity((expect + 4.0 * expect.sqrt()).ceil() as usize + 1);
        let mut t = 0.0;
        loop {
            // Exponential inter-arrival.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() / rate;
            if t >= duration {
                return out;
            }
            out.push(self.sample_one(&cum, t, jitter, rng));
        }
    }

    fn cumulative(&self) -> Vec<f64> {
        let total: f64 = self.frequency.iter().sum();
        let mut acc = 0.0;
        self.frequency
            .iter()
            .map(|f| {
                acc += f / total;
                acc
            })
            .collect()
    }

    fn sample_one(&self, cum: &[f64], arrival: f64, jitter: f64, rng: &mut ChaCha8Rng) -> Request {
        let u: f64 = rng.gen_range(0.0..1.0);
        let k = cum.partition_point(|&c| c < u).min(cum.len() - 1);
        let mult = if jitter > 0.0 {
            rng.gen_range(-jitter..jitter).exp()
        } else {
            1.0
        };
        Request {
            class: qcpa_core::ClassId(k as u32),
            kind: self.kinds[k],
            service: self.service[k] * mult,
            arrival,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn stream() -> RequestStream {
        RequestStream::new(
            vec![8.0, 2.0],
            vec![QueryKind::Read, QueryKind::Update],
            vec![0.01, 0.04],
        )
    }

    #[test]
    fn weights_are_freq_times_service() {
        let w = stream().weights();
        // 8×0.01 : 2×0.04 = 0.08 : 0.08 → 50/50.
        assert!((w[0] - 0.5).abs() < 1e-12);
        assert!((w[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn batch_sampling_matches_frequencies() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let reqs = stream().sample_batch(10_000, 0.0, &mut rng);
        let updates = reqs.iter().filter(|r| r.kind == QueryKind::Update).count();
        let frac = updates as f64 / reqs.len() as f64;
        assert!((frac - 0.2).abs() < 0.02, "update fraction {frac}");
    }

    #[test]
    fn poisson_rate_is_respected() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let reqs = stream().sample_poisson(100.0, 50.0, 0.0, &mut rng);
        let rate = reqs.len() as f64 / 50.0;
        assert!((rate - 100.0).abs() < 10.0, "rate {rate}");
        assert!(reqs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    }

    #[test]
    fn jitter_perturbs_but_preserves_scale() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let reqs = stream().sample_batch(5_000, 0.1, &mut rng);
        let reads: Vec<&Request> = reqs.iter().filter(|r| r.kind == QueryKind::Read).collect();
        let mean: f64 = reads.iter().map(|r| r.service).sum::<f64>() / reads.len() as f64;
        assert!((mean - 0.01).abs() < 0.001, "mean {mean}");
        assert!(reads.iter().any(|r| (r.service - 0.01).abs() > 1e-6));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = stream().sample_batch(100, 0.1, &mut ChaCha8Rng::seed_from_u64(7));
        let b = stream().sample_batch(100, 0.1, &mut ChaCha8Rng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
