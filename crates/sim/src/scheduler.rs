//! Request routing: the controller's scheduler.
//!
//! Reads go to exactly one backend holding *all* the class's fragments,
//! chosen by the least-pending-request-first rule (Section 2; the
//! prototype keeps per-request processing times in its query history,
//! so "least pending" is measured in outstanding *work* — which is what
//! makes the strategy competitive for mixes with very skewed per-class
//! costs, like TPC-App's one heavy read class). Updates fan out to every
//! backend holding any of the class's fragments (ROWA).

use qcpa_core::allocation::Allocation;
use qcpa_core::classify::Classification;
use qcpa_core::cluster::ClusterSpec;
use qcpa_core::journal::QueryKind;
use qcpa_core::{ksafety, BackendId, ClassId, EPS};

/// Precomputed routing tables for one allocation.
///
/// Target lists are always sorted ascending by backend index — together
/// with the explicit `then(a.cmp(&b))` tie-break in the routing
/// comparators this pins the routing decision completely: equal pending
/// work always resolves to the *lowest* backend index, independent of
/// how the tables were built (fresh, or remapped by
/// [`Scheduler::for_survivors`]). Retry target selection in the
/// resilience runtime depends on this staying deterministic.
#[derive(Debug, Clone)]
pub struct Scheduler {
    /// Per read class: backends eligible to serve it (capable, and
    /// preferred by the allocation when it assigned them a share).
    read_targets: Vec<Vec<usize>>,
    /// Per read class: every backend holding *all* the class's fragments
    /// (the superset of `read_targets` used for degraded-mode fallback).
    capable_targets: Vec<Vec<usize>>,
    /// Per update class: backends that must apply it.
    update_targets: Vec<Vec<usize>>,
}

impl Scheduler {
    /// Builds routing tables from an allocation.
    ///
    /// For a read class the eligible backends are those the allocation
    /// assigned a positive share (falling back to all capable backends
    /// for zero-weight classes). For an update class they are all
    /// backends overlapping its data — the ROWA set.
    pub fn new(alloc: &Allocation, cls: &Classification) -> Self {
        let n = alloc.n_backends();
        let mut read_targets = vec![Vec::new(); cls.len()];
        let mut capable_targets = vec![Vec::new(); cls.len()];
        let mut update_targets = vec![Vec::new(); cls.len()];
        for c in &cls.classes {
            match c.kind {
                QueryKind::Read => {
                    let capable: Vec<usize> = (0..n)
                        .filter(|&b| c.fragments.iter().all(|f| alloc.fragments[b].contains(f)))
                        .collect();
                    let assigned: Vec<usize> = (0..n)
                        .filter(|&b| alloc.assign[c.id.idx()][b] > EPS)
                        .collect();
                    read_targets[c.id.idx()] = if assigned.is_empty() {
                        capable.clone()
                    } else {
                        assigned
                    };
                    capable_targets[c.id.idx()] = capable;
                }
                QueryKind::Update => {
                    update_targets[c.id.idx()] = (0..n)
                        .filter(|&b| c.fragments.iter().any(|f| alloc.fragments[b].contains(f)))
                        .collect();
                }
            }
        }
        Self {
            read_targets,
            capable_targets,
            update_targets,
        }
    }

    /// Routing tables for the cluster with the `failed` backends down:
    /// the surviving allocation from [`ksafety::fail_backends`]
    /// (restricted fragments, read shares redistributed over the capable
    /// survivors) with its targets mapped back to *full-cluster* backend
    /// indices, so callers keep indexing their per-backend state by the
    /// original ids.
    ///
    /// Returns `None` exactly when `fail_backends` does: some positively
    /// weighted class has no capable survivor — the fault engine then
    /// runs an online [`ksafety::repair`] and retries.
    pub fn for_survivors(
        alloc: &Allocation,
        cls: &Classification,
        cluster: &ClusterSpec,
        failed: &[usize],
    ) -> Option<Scheduler> {
        let ids: Vec<BackendId> = failed.iter().map(|&b| BackendId(b as u32)).collect();
        let surviving = ksafety::fail_backends(alloc, cls, cluster, &ids)?;
        let survivors: Vec<usize> = (0..alloc.n_backends())
            .filter(|b| !failed.contains(b))
            .collect();
        let local = Scheduler::new(&surviving, cls);
        // `survivors` is ascending and the local tables are ascending in
        // the restricted index space, so the remapped tables stay sorted
        // by full-cluster index — the tie-break invariant survives.
        let remap = |targets: Vec<Vec<usize>>| -> Vec<Vec<usize>> {
            targets
                .into_iter()
                .map(|ts| ts.into_iter().map(|nb| survivors[nb]).collect())
                .collect()
        };
        Some(Scheduler {
            read_targets: remap(local.read_targets),
            capable_targets: remap(local.capable_targets),
            update_targets: remap(local.update_targets),
        })
    }

    /// Routing tables for a network partition: only the backends in
    /// `reachable` (the requester's side, sorted ascending) accept new
    /// work. Partitioned-away backends are treated exactly like failed
    /// ones for routing — excluded from every target list, shares
    /// redistributed — but nothing about them is repaired or voided,
    /// so healing the partition and rebuilding with [`Scheduler::new`]
    /// restores the pre-partition tables bit for bit.
    ///
    /// Returns `None` when some positively weighted class has no
    /// capable replica on the reachable side.
    pub fn for_partition(
        alloc: &Allocation,
        cls: &Classification,
        cluster: &ClusterSpec,
        reachable: &[usize],
    ) -> Option<Scheduler> {
        let unreachable: Vec<usize> = (0..alloc.n_backends())
            .filter(|b| !reachable.contains(b))
            .collect();
        if unreachable.is_empty() {
            return Some(Scheduler::new(alloc, cls));
        }
        Scheduler::for_survivors(alloc, cls, cluster, &unreachable)
    }

    /// The backend a read of class `c` should go to, given current
    /// per-backend pending work: least pending first, ties to the lowest
    /// index. Returns `None` if no backend can serve the class.
    pub fn route_read(&self, c: ClassId, pending: &[f64]) -> Option<usize> {
        self.route_read_with(c, |b| pending[b])
    }

    /// Like [`Self::route_read`], but the pending work is probed through
    /// a closure, so callers can derive it on the fly (e.g. from release
    /// times) instead of materializing a per-request vector. Only the
    /// class's eligible backends are probed — O(targets), not
    /// O(backends).
    pub fn route_read_with<F: Fn(usize) -> f64>(&self, c: ClassId, pending: F) -> Option<usize> {
        self.read_targets[c.idx()].iter().copied().min_by(|&a, &b| {
            pending(a)
                .partial_cmp(&pending(b))
                .expect("pending work is finite")
                .then(a.cmp(&b))
        })
    }

    /// Like [`Self::route_read_with`], but backends for which `blocked`
    /// returns `true` (e.g. open-circuit in the resilience runtime) are
    /// skipped. Returns `None` when *every* eligible backend is blocked —
    /// the caller then decides whether to fall back to
    /// [`Self::capable_read_targets`] or override the breaker.
    pub fn route_read_filtered<F, G>(&self, c: ClassId, pending: F, blocked: G) -> Option<usize>
    where
        F: Fn(usize) -> f64,
        G: Fn(usize) -> bool,
    {
        self.read_targets[c.idx()]
            .iter()
            .copied()
            .filter(|&b| !blocked(b))
            .min_by(|&a, &b| {
                pending(a)
                    .partial_cmp(&pending(b))
                    .expect("pending work is finite")
                    .then(a.cmp(&b))
            })
    }

    /// The ROWA set for update class `c`.
    pub fn route_update(&self, c: ClassId) -> &[usize] {
        &self.update_targets[c.idx()]
    }

    /// Number of query classes the tables are sized for (class ids are
    /// dense, so this bounds every valid `ClassId::idx`).
    pub fn n_classes(&self) -> usize {
        self.read_targets.len()
    }

    /// Eligible backends for a read class (diagnostics).
    pub fn read_targets(&self, c: ClassId) -> &[usize] {
        &self.read_targets[c.idx()]
    }

    /// Every backend holding all of read class `c`'s fragments — the
    /// superset of [`Self::read_targets`] used by degraded-mode routing
    /// when the allocation-preferred replicas are unavailable.
    pub fn capable_read_targets(&self, c: ClassId) -> &[usize] {
        &self.capable_targets[c.idx()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcpa_core::classify::QueryClass;
    use qcpa_core::cluster::ClusterSpec;
    use qcpa_core::fragment::Catalog;
    use qcpa_core::greedy;

    fn setup() -> (Classification, Allocation) {
        let mut cat = Catalog::new();
        let a = cat.add_table("A", 100);
        let b = cat.add_table("B", 100);
        let cls = Classification::from_classes(vec![
            QueryClass::read(0, [a], 0.4),
            QueryClass::read(1, [b], 0.4),
            QueryClass::update(2, [a], 0.2),
        ])
        .unwrap();
        let cluster = ClusterSpec::homogeneous(2);
        let alloc = greedy::allocate(&cls, &cat, &cluster);
        (cls, alloc)
    }

    #[test]
    fn reads_route_to_least_pending_capable() {
        let (cls, alloc) = setup();
        let s = Scheduler::new(&alloc, &cls);
        for &r in cls.read_ids() {
            let targets = s.read_targets(r);
            assert!(!targets.is_empty());
            for &b in targets {
                assert!(cls.classes[r.idx()]
                    .fragments
                    .iter()
                    .all(|f| alloc.fragments[b].contains(f)));
            }
        }
    }

    #[test]
    fn updates_cover_all_overlapping_backends() {
        let (cls, alloc) = setup();
        let s = Scheduler::new(&alloc, &cls);
        let rowa = s.route_update(qcpa_core::ClassId(2));
        let expected: Vec<usize> = (0..2)
            .filter(|&b| alloc.fragments[b].iter().any(|f| f.idx() == 0))
            .collect();
        assert_eq!(rowa, expected.as_slice());
    }

    #[test]
    fn least_pending_tie_breaks_by_index() {
        let (cls, _) = setup();
        let cluster = ClusterSpec::homogeneous(3);
        let full = Allocation::full_replication(&cls, &cluster);
        let s = Scheduler::new(&full, &cls);
        assert_eq!(
            s.route_read(qcpa_core::ClassId(0), &[1.0, 0.5, 0.5]),
            Some(1)
        );
        assert_eq!(
            s.route_read(qcpa_core::ClassId(0), &[0.0, 0.0, 0.0]),
            Some(0)
        );
    }

    /// Pins the determinism contract the resilience runtime's retry
    /// target selection depends on: all target tables are sorted
    /// ascending by backend index, and equal pending work always
    /// resolves to the lowest index — including after a
    /// `for_survivors` remap.
    #[test]
    fn target_tables_sorted_and_tie_break_pinned() {
        let (cls, _) = setup();
        let cluster = ClusterSpec::homogeneous(4);
        let full = Allocation::full_replication(&cls, &cluster);
        let s = Scheduler::new(&full, &cls);
        for c in &cls.classes {
            let (targets, capable) = (
                s.read_targets.get(c.id.idx()).cloned().unwrap_or_default(),
                s.capable_targets
                    .get(c.id.idx())
                    .cloned()
                    .unwrap_or_default(),
            );
            assert!(targets.windows(2).all(|w| w[0] < w[1]));
            assert!(capable.windows(2).all(|w| w[0] < w[1]));
            assert!(s.update_targets[c.id.idx()].windows(2).all(|w| w[0] < w[1]));
        }
        // All-equal pending work routes to the lowest backend index.
        assert_eq!(s.route_read(qcpa_core::ClassId(1), &[2.0; 4]), Some(0));
        // Survivor remap keeps tables sorted in full-cluster indices and
        // keeps the tie-break on the lowest surviving index.
        let sv = Scheduler::for_survivors(&full, &cls, &cluster, &[0]).unwrap();
        for &r in cls.read_ids() {
            assert!(sv.read_targets(r).windows(2).all(|w| w[0] < w[1]));
            assert!(!sv.read_targets(r).contains(&0));
            assert!(sv.capable_read_targets(r).windows(2).all(|w| w[0] < w[1]));
        }
        assert_eq!(sv.route_read(qcpa_core::ClassId(0), &[9.0; 4]), Some(1));
    }

    #[test]
    fn filtered_routing_skips_blocked_backends() {
        let (cls, _) = setup();
        let cluster = ClusterSpec::homogeneous(3);
        let full = Allocation::full_replication(&cls, &cluster);
        let s = Scheduler::new(&full, &cls);
        let c = qcpa_core::ClassId(0);
        // Backend 0 has least pending but is blocked — route around it.
        assert_eq!(s.route_read_filtered(c, |b| b as f64, |b| b == 0), Some(1));
        // Everything blocked: None, so the caller can pick a fallback.
        assert_eq!(s.route_read_filtered(c, |_| 0.0, |_| true), None);
        // Nothing blocked: identical to route_read.
        assert_eq!(
            s.route_read_filtered(c, |_| 0.0, |_| false),
            s.route_read(c, &[0.0; 3])
        );
        // Capable targets are a superset of read targets.
        for &b in s.read_targets(c) {
            assert!(s.capable_read_targets(c).contains(&b));
        }
    }
}
