//! Request routing: the controller's scheduler.
//!
//! Reads go to exactly one backend holding *all* the class's fragments,
//! chosen by the least-pending-request-first rule (Section 2; the
//! prototype keeps per-request processing times in its query history,
//! so "least pending" is measured in outstanding *work* — which is what
//! makes the strategy competitive for mixes with very skewed per-class
//! costs, like TPC-App's one heavy read class). Updates fan out to every
//! backend holding any of the class's fragments (ROWA).

use qcpa_core::allocation::Allocation;
use qcpa_core::classify::Classification;
use qcpa_core::cluster::ClusterSpec;
use qcpa_core::journal::QueryKind;
use qcpa_core::{ksafety, BackendId, ClassId, EPS};

/// Precomputed routing tables for one allocation.
#[derive(Debug, Clone)]
pub struct Scheduler {
    /// Per read class: backends eligible to serve it (capable, and
    /// preferred by the allocation when it assigned them a share).
    read_targets: Vec<Vec<usize>>,
    /// Per update class: backends that must apply it.
    update_targets: Vec<Vec<usize>>,
}

impl Scheduler {
    /// Builds routing tables from an allocation.
    ///
    /// For a read class the eligible backends are those the allocation
    /// assigned a positive share (falling back to all capable backends
    /// for zero-weight classes). For an update class they are all
    /// backends overlapping its data — the ROWA set.
    pub fn new(alloc: &Allocation, cls: &Classification) -> Self {
        let n = alloc.n_backends();
        let mut read_targets = vec![Vec::new(); cls.len()];
        let mut update_targets = vec![Vec::new(); cls.len()];
        for c in &cls.classes {
            match c.kind {
                QueryKind::Read => {
                    let mut assigned: Vec<usize> = (0..n)
                        .filter(|&b| alloc.assign[c.id.idx()][b] > EPS)
                        .collect();
                    if assigned.is_empty() {
                        assigned = (0..n)
                            .filter(|&b| c.fragments.iter().all(|f| alloc.fragments[b].contains(f)))
                            .collect();
                    }
                    read_targets[c.id.idx()] = assigned;
                }
                QueryKind::Update => {
                    update_targets[c.id.idx()] = (0..n)
                        .filter(|&b| c.fragments.iter().any(|f| alloc.fragments[b].contains(f)))
                        .collect();
                }
            }
        }
        Self {
            read_targets,
            update_targets,
        }
    }

    /// Routing tables for the cluster with the `failed` backends down:
    /// the surviving allocation from [`ksafety::fail_backends`]
    /// (restricted fragments, read shares redistributed over the capable
    /// survivors) with its targets mapped back to *full-cluster* backend
    /// indices, so callers keep indexing their per-backend state by the
    /// original ids.
    ///
    /// Returns `None` exactly when `fail_backends` does: some positively
    /// weighted class has no capable survivor — the fault engine then
    /// runs an online [`ksafety::repair`] and retries.
    pub fn for_survivors(
        alloc: &Allocation,
        cls: &Classification,
        cluster: &ClusterSpec,
        failed: &[usize],
    ) -> Option<Scheduler> {
        let ids: Vec<BackendId> = failed.iter().map(|&b| BackendId(b as u32)).collect();
        let surviving = ksafety::fail_backends(alloc, cls, cluster, &ids)?;
        let survivors: Vec<usize> = (0..alloc.n_backends())
            .filter(|b| !failed.contains(b))
            .collect();
        let local = Scheduler::new(&surviving, cls);
        let remap = |targets: Vec<Vec<usize>>| -> Vec<Vec<usize>> {
            targets
                .into_iter()
                .map(|ts| ts.into_iter().map(|nb| survivors[nb]).collect())
                .collect()
        };
        Some(Scheduler {
            read_targets: remap(local.read_targets),
            update_targets: remap(local.update_targets),
        })
    }

    /// The backend a read of class `c` should go to, given current
    /// per-backend pending work: least pending first, ties to the lowest
    /// index. Returns `None` if no backend can serve the class.
    pub fn route_read(&self, c: ClassId, pending: &[f64]) -> Option<usize> {
        self.route_read_with(c, |b| pending[b])
    }

    /// Like [`Self::route_read`], but the pending work is probed through
    /// a closure, so callers can derive it on the fly (e.g. from release
    /// times) instead of materializing a per-request vector. Only the
    /// class's eligible backends are probed — O(targets), not
    /// O(backends).
    pub fn route_read_with<F: Fn(usize) -> f64>(&self, c: ClassId, pending: F) -> Option<usize> {
        self.read_targets[c.idx()].iter().copied().min_by(|&a, &b| {
            pending(a)
                .partial_cmp(&pending(b))
                .expect("pending work is finite")
                .then(a.cmp(&b))
        })
    }

    /// The ROWA set for update class `c`.
    pub fn route_update(&self, c: ClassId) -> &[usize] {
        &self.update_targets[c.idx()]
    }

    /// Eligible backends for a read class (diagnostics).
    pub fn read_targets(&self, c: ClassId) -> &[usize] {
        &self.read_targets[c.idx()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcpa_core::classify::QueryClass;
    use qcpa_core::cluster::ClusterSpec;
    use qcpa_core::fragment::Catalog;
    use qcpa_core::greedy;

    fn setup() -> (Classification, Allocation) {
        let mut cat = Catalog::new();
        let a = cat.add_table("A", 100);
        let b = cat.add_table("B", 100);
        let cls = Classification::from_classes(vec![
            QueryClass::read(0, [a], 0.4),
            QueryClass::read(1, [b], 0.4),
            QueryClass::update(2, [a], 0.2),
        ])
        .unwrap();
        let cluster = ClusterSpec::homogeneous(2);
        let alloc = greedy::allocate(&cls, &cat, &cluster);
        (cls, alloc)
    }

    #[test]
    fn reads_route_to_least_pending_capable() {
        let (cls, alloc) = setup();
        let s = Scheduler::new(&alloc, &cls);
        for &r in cls.read_ids() {
            let targets = s.read_targets(r);
            assert!(!targets.is_empty());
            for &b in targets {
                assert!(cls.classes[r.idx()]
                    .fragments
                    .iter()
                    .all(|f| alloc.fragments[b].contains(f)));
            }
        }
    }

    #[test]
    fn updates_cover_all_overlapping_backends() {
        let (cls, alloc) = setup();
        let s = Scheduler::new(&alloc, &cls);
        let rowa = s.route_update(qcpa_core::ClassId(2));
        let expected: Vec<usize> = (0..2)
            .filter(|&b| alloc.fragments[b].iter().any(|f| f.idx() == 0))
            .collect();
        assert_eq!(rowa, expected.as_slice());
    }

    #[test]
    fn least_pending_tie_breaks_by_index() {
        let (cls, _) = setup();
        let cluster = ClusterSpec::homogeneous(3);
        let full = Allocation::full_replication(&cls, &cluster);
        let s = Scheduler::new(&full, &cls);
        assert_eq!(
            s.route_read(qcpa_core::ClassId(0), &[1.0, 0.5, 0.5]),
            Some(1)
        );
        assert_eq!(
            s.route_read(qcpa_core::ClassId(0), &[0.0, 0.0, 0.0]),
            Some(0)
        );
    }
}
