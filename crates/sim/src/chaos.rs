//! Deterministic chaos/soak harness for the fault engines.
//!
//! Each chaos run derives a fresh synthetic workload, allocation and
//! layered fault schedule from a ChaCha8 seed, drives both fault
//! engines through it, and asserts the robustness invariants the
//! simulator promises under *every* schedule:
//!
//! 1. **Conservation** — every offered request reaches exactly one
//!    terminal state and none is lost
//!    (`completed + shed + timed_out == offered`, `lost ≡ 0`);
//! 2. **Post-repair k-safety** — an online repair never leaves a
//!    weighted class below the configured safety level, and no reroute
//!    fails outright;
//! 3. **Bit-identity** — the sharded drivers replay the run bit-for-bit
//!    at 1 and 4 shards;
//! 4. **Fingerprint stability** — tracing the run twice yields the same
//!    trace fingerprint and does not perturb the simulated responses.
//!
//! Violations are collected (not panicked) so a soak sweep reports
//! every broken schedule with its seed for offline replay.

use crate::engine::SimConfig;
use crate::fault::{
    run_open_faults, run_open_faults_traced, FaultConfig, FaultInjectionConfig, FaultPlan,
    LayeredFaultConfig,
};
use crate::request::RequestStream;
use crate::resilience::{run_open_resilient, ResilienceConfig};
use crate::shard::{run_open_faults_sharded, run_open_resilient_sharded};
use qcpa_core::classify::{Classification, QueryClass};
use qcpa_core::cluster::ClusterSpec;
use qcpa_core::fragment::Catalog;
use qcpa_core::greedy;
use qcpa_core::journal::QueryKind;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Chaos sweep knobs.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Randomized schedules to sweep.
    pub runs: usize,
    /// Base seed; run `i` derives everything from `seed + i`.
    pub seed: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig { runs: 64, seed: 9 }
    }
}

impl ChaosConfig {
    /// Applies `QCPA_CHAOS_RUNS` (unset or unparsable leaves the run
    /// count untouched).
    #[must_use]
    pub fn env_overrides(mut self) -> Self {
        // audit:allow(env-access): documented chaos-sweep knob.
        if let Some(runs) = std::env::var("QCPA_CHAOS_RUNS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            self.runs = runs.max(1);
        }
        self
    }
}

/// Outcome of a chaos sweep.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Schedules swept.
    pub runs: usize,
    /// Human-readable invariant violations, capped at
    /// [`ChaosReport::MAX_VIOLATIONS`] entries (the count keeps going).
    pub violations: Vec<String>,
    /// Total violations observed (may exceed `violations.len()`).
    pub violation_count: usize,
    /// Runs whose realized plan scheduled at least one fault event.
    pub schedules_with_faults: usize,
    /// Runs where the sharded drivers actually decomposed the run
    /// (≥ 2 components and no repair fallback).
    pub sharded_nontrivial: usize,
}

impl ChaosReport {
    /// Cap on retained violation strings.
    pub const MAX_VIOLATIONS: usize = 16;

    /// True if every run satisfied every invariant.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.violation_count == 0
    }
}

/// One derived chaos scenario: workload, cluster, allocation, plan.
struct Scenario {
    catalog: Catalog,
    cls: Classification,
    cluster: ClusterSpec,
    requests: Vec<crate::request::Request>,
    plan: FaultPlan,
}

/// Draws a scenario from `seed`. The workload is biased toward
/// decomposable shapes (two disjoint table groups) so the sharded
/// drivers get genuine multi-component coverage, and the fault layers
/// rotate through crash-, partition- and gray-flavored schedules.
/// Crashes and partitions are never mixed in one schedule: a crash
/// inside a partition window could legitimately empty the routable
/// set, and the conservation invariant is only promised for schedules
/// that always leave at least one routable backend.
fn draw_scenario(seed: u64) -> Scenario {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n_backends = rng.gen_range(3..=6usize);
    let mut catalog = Catalog::new();
    // Draw the shape first (weights normalize to 1 afterwards).
    let mut drafts: Vec<(Vec<qcpa_core::fragment::FragmentId>, bool, f64)> = Vec::new();
    for g in 0..2 {
        // 1–2 tables per group, never shared across groups.
        let tables: Vec<_> = (0..rng.gen_range(1..=2usize))
            .map(|t| catalog.add_table(format!("T{g}_{t}"), rng.gen_range(2_000..6_000u64)))
            .collect();
        for _ in 0..rng.gen_range(1..=2usize) {
            let weight = rng.gen_range(0.1..0.4f64);
            let read = rng.gen_range(0..10u32) < 7;
            drafts.push((tables.clone(), read, weight));
        }
    }
    let total: f64 = drafts.iter().map(|d| d.2).sum();
    let mut classes: Vec<QueryClass> = Vec::new();
    let mut freq: Vec<f64> = Vec::new();
    let mut kinds: Vec<QueryKind> = Vec::new();
    for (id, (tables, read, weight)) in drafts.into_iter().enumerate() {
        let w = weight / total;
        let id = id as u32;
        classes.push(if read {
            QueryClass::read(id, tables.iter().copied(), w)
        } else {
            QueryClass::update(id, tables.iter().copied(), w)
        });
        freq.push(w * 100.0);
        kinds.push(if read {
            QueryKind::Read
        } else {
            QueryKind::Update
        });
    }
    let cls = Classification::from_classes(classes).expect("generated weights are normalized");
    let cluster = ClusterSpec::homogeneous(n_backends);
    let service = vec![0.02f64; kinds.len()];
    let stream = RequestStream::new(freq, kinds, service);

    let duration = 3.0;
    let util = rng.gen_range(0.5..0.8f64);
    let rate = util * n_backends as f64 / 0.02;
    let requests = stream.sample_poisson(rate, duration, 0.1, &mut rng);

    let flavor = rng.gen_range(0..3u32);
    let lcfg = match flavor {
        // Crash flavor: independent crashes plus sometimes a zone.
        0 => LayeredFaultConfig {
            crashes: FaultInjectionConfig {
                crashes: rng.gen_range(1..=2usize),
                recover: true,
                mttr: duration / 6.0,
                min_alive: 2,
                catchup_cost: 0.05,
            },
            gray: rng.gen_range(0..=1usize),
            gray_duration: duration / 4.0,
            partitions: 0,
            zones: if rng.gen_range(0..2u32) == 1 { 2 } else { 0 },
            zone_failures: 1,
            zone_mttr: duration / 6.0,
            ..LayeredFaultConfig::default()
        },
        // Partition flavor: one cut/heal episode, no crashes.
        1 => LayeredFaultConfig {
            crashes: FaultInjectionConfig {
                crashes: 0,
                ..FaultInjectionConfig::default()
            },
            gray: rng.gen_range(0..=2usize),
            gray_duration: duration / 4.0,
            partitions: 1,
            partition_duration: duration / 4.0,
            zones: 0,
            zone_failures: 0,
            ..LayeredFaultConfig::default()
        },
        // Gray flavor: degradation only.
        _ => LayeredFaultConfig {
            crashes: FaultInjectionConfig {
                crashes: 0,
                ..FaultInjectionConfig::default()
            },
            gray: rng.gen_range(1..=2usize),
            gray_duration: duration / 3.0,
            partitions: 0,
            zones: 0,
            zone_failures: 0,
            ..LayeredFaultConfig::default()
        },
    };
    let plan = FaultPlan::from_seed_layered(seed ^ 0x9E37_79B9, n_backends, duration, &lcfg);
    Scenario {
        catalog,
        cls,
        cluster,
        requests,
        plan,
    }
}

/// Sweeps `cfg.runs` randomized layered schedules and checks every
/// invariant on each. Deterministic: same config, same report.
#[must_use]
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosReport {
    let _span = qcpa_obs::span("sim", "run_chaos");
    let mut report = ChaosReport {
        runs: cfg.runs,
        violations: Vec::new(),
        violation_count: 0,
        schedules_with_faults: 0,
        sharded_nontrivial: 0,
    };
    let sim = SimConfig::default();
    let fcfg = FaultConfig::default();
    let rcfg = ResilienceConfig::default();

    for run in 0..cfg.runs {
        let seed = cfg.seed.wrapping_add(run as u64);
        let sc = draw_scenario(seed);
        if !sc.plan.is_empty() {
            report.schedules_with_faults += 1;
        }
        let alloc = greedy::allocate(&sc.cls, &sc.catalog, &sc.cluster);
        let violate = |report: &mut ChaosReport, msg: String| {
            report.violation_count += 1;
            if report.violations.len() < ChaosReport::MAX_VIOLATIONS {
                report
                    .violations
                    .push(format!("run {run} (seed {seed}): {msg}"));
            }
        };

        // Invariant 1+2 on the fault engine.
        let fr = run_open_faults(
            &alloc,
            &sc.cls,
            &sc.cluster,
            &sc.catalog,
            &sc.requests,
            0.0,
            &sim,
            &sc.plan,
            &fcfg,
        );
        if fr.lost != 0 {
            violate(&mut report, format!("fault run lost {} requests", fr.lost));
        }
        if fr.completed + fr.lost != sc.requests.len() {
            violate(
                &mut report,
                format!(
                    "fault conservation broke: {} + {} != {}",
                    fr.completed,
                    fr.lost,
                    sc.requests.len()
                ),
            );
        }
        if fr.reroute_failures != 0 {
            violate(
                &mut report,
                format!("{} reroutes failed", fr.reroute_failures),
            );
        }
        if !fr.post_repair_safety_ok {
            violate(&mut report, "post-repair k-safety violated".to_string());
        }

        // Invariant 1 on the resilience engine.
        let rr = run_open_resilient(
            &alloc,
            &sc.cls,
            &sc.cluster,
            &sc.catalog,
            &sc.requests,
            0.0,
            &sim,
            &sc.plan,
            &fcfg,
            &rcfg,
        );
        if !rr.conserved() {
            violate(
                &mut report,
                format!(
                    "resilience conservation broke: {}+{}+{}+{} != {}",
                    rr.completed, rr.shed, rr.timed_out, rr.lost, rr.offered
                ),
            );
        }
        if rr.lost != 0 {
            violate(
                &mut report,
                format!("resilient run lost {} requests", rr.lost),
            );
        }
        if !rr.post_repair_safety_ok {
            violate(
                &mut report,
                "resilient post-repair k-safety violated".to_string(),
            );
        }

        // Invariant 3: sharded replay is bit-identical at 1 and 4 shards.
        {
            let scheduler = crate::scheduler::Scheduler::new(&alloc, &sc.cls);
            let comps =
                crate::shard::fault_components(&scheduler, &sc.cls, sc.cluster.len(), &sc.plan);
            let n_comp = comps.iter().copied().max().map_or(0, |m| m + 1);
            if n_comp >= 2 && !crate::shard::plan_may_repair(&alloc, &sc.cls, &sc.cluster, &sc.plan)
            {
                report.sharded_nontrivial += 1;
            }
        }
        for shards in [1usize, 4] {
            let fs = run_open_faults_sharded(
                &alloc,
                &sc.cls,
                &sc.cluster,
                &sc.catalog,
                &sc.requests,
                0.0,
                &sim,
                &sc.plan,
                &fcfg,
                shards,
            );
            let same =
                fr.responses.len() == fs.responses.len()
                    && fr.responses.iter().zip(&fs.responses).all(|(x, y)| {
                        x.0.to_bits() == y.0.to_bits() && x.1.to_bits() == y.1.to_bits()
                    })
                    && fr
                        .busy
                        .iter()
                        .zip(&fs.busy)
                        .all(|(x, y)| x.to_bits() == y.to_bits());
            if !same {
                violate(
                    &mut report,
                    format!("fault run diverged at {shards} shards"),
                );
            }
            let rs = run_open_resilient_sharded(
                &alloc,
                &sc.cls,
                &sc.cluster,
                &sc.catalog,
                &sc.requests,
                0.0,
                &sim,
                &sc.plan,
                &fcfg,
                &rcfg,
                shards,
            );
            let same =
                rr.responses.len() == rs.responses.len()
                    && rr.responses.iter().zip(&rs.responses).all(|(x, y)| {
                        x.0.to_bits() == y.0.to_bits() && x.1.to_bits() == y.1.to_bits()
                    })
                    && rr
                        .busy
                        .iter()
                        .zip(&rs.busy)
                        .all(|(x, y)| x.to_bits() == y.to_bits())
                    && rr.completed == rs.completed
                    && rr.shed == rs.shed
                    && rr.timed_out == rs.timed_out;
            if !same {
                violate(
                    &mut report,
                    format!("resilient run diverged at {shards} shards"),
                );
            }
        }

        // Invariant 4: tracing is stable and non-perturbing.
        let mut t1 = qcpa_obs::Tracer::new(seed, 0.25);
        let ft1 = run_open_faults_traced(
            &alloc,
            &sc.cls,
            &sc.cluster,
            &sc.catalog,
            &sc.requests,
            0.0,
            &sim,
            &sc.plan,
            &fcfg,
            Some(&mut t1),
        );
        let mut t2 = qcpa_obs::Tracer::new(seed, 0.25);
        let _ = run_open_faults_traced(
            &alloc,
            &sc.cls,
            &sc.cluster,
            &sc.catalog,
            &sc.requests,
            0.0,
            &sim,
            &sc.plan,
            &fcfg,
            Some(&mut t2),
        );
        if t1.tree.fingerprint() != t2.tree.fingerprint() {
            violate(&mut report, "trace fingerprint unstable".to_string());
        }
        let same = ft1.responses.len() == fr.responses.len()
            && ft1
                .responses
                .iter()
                .zip(&fr.responses)
                .all(|(x, y)| x.0.to_bits() == y.0.to_bits() && x.1.to_bits() == y.1.to_bits());
        if !same {
            violate(&mut report, "tracing perturbed the run".to_string());
        }
    }
    let reg = qcpa_obs::global();
    reg.counter("sim.chaos.runs").add(report.runs as u64);
    reg.counter("sim.chaos.violations")
        .add(report.violation_count as u64);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_is_clean_and_deterministic() {
        let cfg = ChaosConfig { runs: 6, seed: 9 };
        let a = run_chaos(&cfg);
        assert!(a.ok(), "violations: {:?}", a.violations);
        assert_eq!(a.runs, 6);
        assert!(a.schedules_with_faults >= 1);
        let b = run_chaos(&cfg);
        assert_eq!(a.violation_count, b.violation_count);
        assert_eq!(a.schedules_with_faults, b.schedules_with_faults);
        assert_eq!(a.sharded_nontrivial, b.sharded_nontrivial);
    }

    #[test]
    fn env_override_parses() {
        // Not touching the environment (tests run concurrently): the
        // builder contract is pinned instead.
        let cfg = ChaosConfig::default();
        assert_eq!(cfg.runs, 64);
        assert!(ChaosConfig { runs: 3, seed: 1 }.env_overrides().runs >= 1);
    }
}
