//! Resilient open-loop driver: deadlines, deterministic retry/backoff,
//! admission control, circuit breaking, and degraded-mode routing.
//!
//! [`run_open_resilient`] extends [`crate::fault::run_open_faults`] with
//! the failure-handling layer a production CDBS controller needs
//! (Section 6's architecture assumes backends come and go while the
//! controller keeps serving):
//!
//! * **Deadlines** — a read leg whose completion would exceed
//!   `dispatch time + deadline` is cancelled *at the deadline*: the work
//!   performed up to the deadline stays charged to the backend, the
//!   remainder is refunded (the same discipline as crash voiding), and
//!   the request retries with capped exponential backoff plus
//!   deterministic seeded jitter (a ChaCha8 stream keyed on request id
//!   and attempt number, so schedules are bit-identical at any
//!   `QCPA_THREADS` setting). A request that exhausts its retry budget
//!   is reported *timed out*, never silently dropped.
//! * **Admission control** — per-backend pending queues are bounded by
//!   `queue_cap`; an arriving read that would overflow the bound is
//!   handled by the configured [`OverloadPolicy`]. Update legs are
//!   replication duty (ROWA correctness requires them on every
//!   overlapping replica), so they occupy queue slots but are never
//!   shed and carry no deadline — the staleness story for unreachable
//!   replicas lives in `qcpa-controller`'s deferred-write ledger.
//! * **Circuit breaking** — per-backend health (an EWMA of observed leg
//!   service times plus a consecutive-failure counter) feeds a breaker
//!   consulted by [`Scheduler::route_read_filtered`]. After a
//!   deterministic cooldown the breaker half-opens and admits one probe
//!   at a time; `half_open_probes` consecutive successes close it.
//! * **Degraded-mode routing** — when every allocation-preferred
//!   replica of a class is open-circuit, reads fall back to any capable
//!   replica (the fragment-covering superset), preferring backends with
//!   spare capacity under [`qcpa_core::robust::spare_room`]; if even
//!   the fallback set is empty the breaker is overridden rather than
//!   failing the request — shedding is the admission policy's job, not
//!   the breaker's.
//!
//! With [`ResilienceConfig::default`] (everything disabled) the run is
//! bit-identical to [`crate::fault::run_open_faults`] — pinned by test —
//! so the resilience layer is a strict, opt-in extension.
//!
//! Every request ends in exactly one terminal state and the engine
//! guarantees the conservation law
//! `completed + shed + timed_out + lost == offered` with `lost == 0`
//! under any valid fault plan (`lost` exists only to make a violation
//! visible instead of silent).

use std::collections::VecDeque;

use qcpa_core::allocation::Allocation;
use qcpa_core::classify::Classification;
use qcpa_core::cluster::ClusterSpec;
use qcpa_core::fragment::Catalog;
use qcpa_core::journal::QueryKind;
use qcpa_core::{robust, ClassId, EPS};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::arena::{LegArena, LegList, LegRef};
use crate::engine::{nearest_rank, SimConfig, UpdatePropagation};
use crate::fault::{reroute, FaultConfig, FaultEvent, FaultPlan, FaultStats};
use crate::queue::{EventQueue, QueueKind, SimQueue};
use crate::request::Request;
use crate::scheduler::Scheduler;
use crate::service::ServiceProfile;

/// What to do with a read that would overflow a backend's bounded
/// pending queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Shed the incoming request.
    Reject,
    /// Evict the lowest-weight *queued, not-yet-started* read if the
    /// incoming class outweighs it (its reserved work is refunded and
    /// the victim is reported shed); otherwise shed the incoming
    /// request. Weight is the paper's class workload share, so heavy
    /// classes displace light ones under overload.
    ShedLowestWeight,
    /// Admit past the bound with service discounted by
    /// `brownout_discount` (a degraded, cheaper answer); shed outright
    /// only past twice the bound.
    Brownout,
}

impl OverloadPolicy {
    /// Parses the `QCPA_OVERLOAD` spelling (case-insensitive):
    /// `reject`, `shed` / `shed_lowest_weight`, `brownout`.
    pub fn parse(s: &str) -> Option<OverloadPolicy> {
        match s.trim().to_ascii_lowercase().as_str() {
            "reject" => Some(OverloadPolicy::Reject),
            "shed" | "shed_lowest_weight" | "shedlowestweight" => {
                Some(OverloadPolicy::ShedLowestWeight)
            }
            "brownout" => Some(OverloadPolicy::Brownout),
            _ => None,
        }
    }

    /// Stable lower-case name (CSV/metrics label).
    pub fn name(&self) -> &'static str {
        match self {
            OverloadPolicy::Reject => "reject",
            OverloadPolicy::ShedLowestWeight => "shed_lowest_weight",
            OverloadPolicy::Brownout => "brownout",
        }
    }
}

/// Knobs for [`run_open_resilient`]. [`Default`] disables every
/// mechanism (infinite deadline, no retries, unbounded queues, breaker
/// off), reproducing [`crate::fault::run_open_faults`] bit for bit;
/// [`ResilienceConfig::standard`] is an active preset; environment
/// variables override either via [`ResilienceConfig::env_overrides`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilienceConfig {
    /// Per-attempt deadline in seconds, measured from the dispatch of
    /// the attempt. `f64::INFINITY` disables timeouts.
    pub deadline: f64,
    /// Retry budget per request (timeout- or unroutable-triggered;
    /// crash re-dispatches are budget-free, as in the fault engine).
    pub max_retries: u32,
    /// Base backoff delay in seconds for the first retry.
    pub backoff_base: f64,
    /// Upper bound on the exponential backoff delay, before jitter.
    pub backoff_cap: f64,
    /// Jitter fraction: the capped delay is stretched by a factor
    /// uniform in `[1, 1 + jitter)`, drawn from a ChaCha8 stream keyed
    /// on `(seed, request id, attempt)` — fully deterministic.
    pub jitter: f64,
    /// Seed for the jitter stream.
    pub seed: u64,
    /// Bound on each backend's pending queue (entries still running or
    /// waiting). `0` means unbounded (admission control off).
    pub queue_cap: usize,
    /// Policy applied when a read would overflow `queue_cap`.
    pub overload: OverloadPolicy,
    /// Service multiplier for browned-out admissions, in `(0, 1]`.
    pub brownout_discount: f64,
    /// Consecutive failures that trip a backend's breaker open. `0`
    /// disables the breaker entirely (unless `slow_trip` is finite).
    pub breaker_failures: u32,
    /// Seconds an open breaker waits before half-opening for probes.
    pub breaker_cooldown: f64,
    /// Consecutive successful probes required to close a half-open
    /// breaker (clamped to at least 1).
    pub half_open_probes: u32,
    /// Smoothing factor of the per-backend service-time EWMA, in
    /// `(0, 1]`.
    pub ewma_alpha: f64,
    /// EWMA level (seconds) that trips the breaker even without
    /// consecutive failures — the latency-based trip wire.
    /// `f64::INFINITY` disables it.
    pub slow_trip: f64,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            deadline: f64::INFINITY,
            max_retries: 0,
            backoff_base: 0.1,
            backoff_cap: 2.0,
            jitter: 0.0,
            seed: 0,
            queue_cap: 0,
            overload: OverloadPolicy::Reject,
            brownout_discount: 0.5,
            breaker_failures: 0,
            breaker_cooldown: 5.0,
            half_open_probes: 2,
            ewma_alpha: 0.2,
            slow_trip: f64::INFINITY,
        }
    }
}

impl ResilienceConfig {
    /// An active preset: 5 s deadlines, 3 retries with 0.25 s → 4 s
    /// backoff and 25 % jitter, 64-deep queues with `Reject`, breaker
    /// tripping after 5 consecutive failures with a 5 s cooldown.
    pub fn standard() -> Self {
        Self {
            deadline: 5.0,
            max_retries: 3,
            backoff_base: 0.25,
            backoff_cap: 4.0,
            jitter: 0.25,
            seed: 0x51C4,
            queue_cap: 64,
            overload: OverloadPolicy::Reject,
            brownout_discount: 0.5,
            breaker_failures: 5,
            breaker_cooldown: 5.0,
            half_open_probes: 2,
            ewma_alpha: 0.2,
            slow_trip: f64::INFINITY,
        }
    }

    /// [`ResilienceConfig::standard`] with environment overrides
    /// applied — the counterpart of `QCPA_THREADS` for the resilience
    /// layer.
    pub fn from_env() -> Self {
        Self::standard().env_overrides()
    }

    /// Applies environment-variable overrides: `QCPA_DEADLINE`,
    /// `QCPA_RETRIES`, `QCPA_BACKOFF`, `QCPA_BACKOFF_CAP`,
    /// `QCPA_JITTER`, `QCPA_RESILIENCE_SEED`, `QCPA_QUEUE_CAP`,
    /// `QCPA_OVERLOAD`, `QCPA_BROWNOUT_DISCOUNT`, `QCPA_BREAKER_FAILS`,
    /// `QCPA_BREAKER_COOLDOWN`, `QCPA_HALF_OPEN_PROBES`,
    /// `QCPA_EWMA_ALPHA`, `QCPA_SLOW_TRIP`. Unset or unparsable
    /// variables leave the field unchanged.
    pub fn env_overrides(mut self) -> Self {
        fn parse<T: std::str::FromStr>(key: &str) -> Option<T> {
            // audit:allow(env-access): shared helper for the documented QCPA_* overrides below; every caller passes a QCPA_ key
            std::env::var(key).ok()?.trim().parse().ok()
        }
        if let Some(v) = parse::<f64>("QCPA_DEADLINE") {
            self.deadline = v;
        }
        if let Some(v) = parse::<u32>("QCPA_RETRIES") {
            self.max_retries = v;
        }
        if let Some(v) = parse::<f64>("QCPA_BACKOFF") {
            self.backoff_base = v;
        }
        if let Some(v) = parse::<f64>("QCPA_BACKOFF_CAP") {
            self.backoff_cap = v;
        }
        if let Some(v) = parse::<f64>("QCPA_JITTER") {
            self.jitter = v;
        }
        if let Some(v) = parse::<u64>("QCPA_RESILIENCE_SEED") {
            self.seed = v;
        }
        if let Some(v) = parse::<usize>("QCPA_QUEUE_CAP") {
            self.queue_cap = v;
        }
        if let Some(v) = std::env::var("QCPA_OVERLOAD")
            .ok()
            .and_then(|s| OverloadPolicy::parse(&s))
        {
            self.overload = v;
        }
        if let Some(v) = parse::<f64>("QCPA_BROWNOUT_DISCOUNT") {
            self.brownout_discount = v;
        }
        if let Some(v) = parse::<u32>("QCPA_BREAKER_FAILS") {
            self.breaker_failures = v;
        }
        if let Some(v) = parse::<f64>("QCPA_BREAKER_COOLDOWN") {
            self.breaker_cooldown = v;
        }
        if let Some(v) = parse::<u32>("QCPA_HALF_OPEN_PROBES") {
            self.half_open_probes = v;
        }
        if let Some(v) = parse::<f64>("QCPA_EWMA_ALPHA") {
            self.ewma_alpha = v;
        }
        if let Some(v) = parse::<f64>("QCPA_SLOW_TRIP") {
            self.slow_trip = v;
        }
        self
    }

    /// Whether the circuit breaker participates in routing.
    pub fn breaker_enabled(&self) -> bool {
        self.breaker_failures > 0 || self.slow_trip.is_finite()
    }

    /// The backoff delay (seconds) before retry `attempt` (1-based) of
    /// request `req_id`: `min(base · 2^(attempt−1), cap)` stretched by
    /// the deterministic jitter factor. Pure — the conformance suite
    /// replays it to pin the schedule.
    pub fn backoff(&self, req_id: u64, attempt: u32) -> f64 {
        let exp = attempt.saturating_sub(1).min(30);
        let capped = (self.backoff_base * f64::from(1u32 << exp)).min(self.backoff_cap);
        if self.jitter <= 0.0 {
            return capped;
        }
        let mut rng = ChaCha8Rng::seed_from_u64(mix(self.seed, req_id, u64::from(attempt)));
        capped * (1.0 + self.jitter * rng.gen_range(0.0..1.0))
    }

    fn validate(&self) {
        assert!(self.deadline > 0.0, "deadline must be positive");
        assert!(
            self.backoff_base >= 0.0 && self.backoff_cap >= 0.0 && self.jitter >= 0.0,
            "backoff knobs must be non-negative"
        );
        assert!(
            self.brownout_discount > 0.0 && self.brownout_discount <= 1.0,
            "brownout_discount must be in (0, 1]"
        );
        assert!(
            self.ewma_alpha > 0.0 && self.ewma_alpha <= 1.0,
            "ewma_alpha must be in (0, 1]"
        );
        assert!(
            self.breaker_cooldown >= 0.0,
            "breaker_cooldown must be non-negative"
        );
    }
}

/// SplitMix64-style avalanche keying the jitter stream on
/// `(seed, request, attempt)` — stable across platforms and thread
/// counts.
pub(crate) fn mix(seed: u64, req: u64, attempt: u64) -> u64 {
    let mut z = seed
        ^ req.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ attempt.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Breaker state of one backend. Transitions are stamped eagerly with
/// times (the analytic engine has no completion callbacks) and resolved
/// lazily whenever the backend is next observed.
#[derive(Debug, Clone, Copy, PartialEq)]
enum BState {
    Closed,
    Open {
        until: f64,
    },
    HalfOpen {
        probe_end: Option<f64>,
        successes: u32,
    },
}

#[derive(Debug, Clone, Copy)]
struct Health {
    ewma: f64,
    seen: bool,
    consec: u32,
    state: BState,
}

impl Health {
    fn fresh() -> Self {
        Health {
            ewma: 0.0,
            seen: false,
            consec: 0,
            state: BState::Closed,
        }
    }
}

/// Per-backend health + breaker bank. All methods are no-ops when the
/// breaker is disabled by config.
struct Breakers {
    cfg: ResilienceConfig,
    health: Vec<Health>,
    /// Transition counters per backend. A sharded component replays all
    /// fault events but only its own dispatches, so backend `b`'s
    /// counters are exact in the component that owns `b` — the merge
    /// takes each backend's column from its owner and sums for the
    /// report.
    opens: Vec<usize>,
    half_opens: Vec<usize>,
    closes: Vec<usize>,
    /// Transition log `(time, backend, name)` drained into the tracer
    /// at the end of a traced run; stays empty unless `log_enabled`.
    log: Vec<(f64, usize, &'static str)>,
    log_enabled: bool,
    /// Emit obs events (sharded component replays pass false).
    publish: bool,
}

impl Breakers {
    fn new(n: usize, cfg: &ResilienceConfig) -> Self {
        Breakers {
            cfg: *cfg,
            health: vec![Health::fresh(); n],
            opens: vec![0; n],
            half_opens: vec![0; n],
            closes: vec![0; n],
            log: Vec::new(),
            log_enabled: false,
            publish: true,
        }
    }

    fn enabled(&self) -> bool {
        self.cfg.breaker_enabled()
    }

    fn note(&mut self, t: f64, b: usize, name: &'static str) {
        if self.log_enabled {
            self.log.push((t, b, name));
        }
    }

    /// Advances `b`'s state machine to time `t`: an expired cooldown
    /// half-opens the breaker; a probe whose leg has finished counts as
    /// a success and may close it.
    fn resolve(&mut self, b: usize, t: f64) {
        if !self.enabled() {
            return;
        }
        loop {
            let h = &mut self.health[b];
            match h.state {
                BState::Open { until } if t >= until && until.is_finite() => {
                    h.state = BState::HalfOpen {
                        probe_end: None,
                        successes: 0,
                    };
                    self.half_opens[b] += 1;
                    self.note(t, b, "breaker_half_open");
                    if self.publish {
                        qcpa_obs::event!(qcpa_obs::Level::Debug, "sim.resilience", "breaker_half_open", {
                            "backend" => b,
                            "at" => t,
                        });
                    }
                }
                BState::HalfOpen {
                    probe_end: Some(pe),
                    successes,
                } if t >= pe => {
                    let s = successes + 1;
                    if s >= self.cfg.half_open_probes.max(1) {
                        h.state = BState::Closed;
                        h.consec = 0;
                        self.closes[b] += 1;
                        self.note(t, b, "breaker_close");
                        if self.publish {
                            qcpa_obs::event!(qcpa_obs::Level::Info, "sim.resilience", "breaker_close", {
                                "backend" => b,
                                "at" => t,
                            });
                        }
                    } else {
                        h.state = BState::HalfOpen {
                            probe_end: None,
                            successes: s,
                        };
                    }
                }
                _ => break,
            }
        }
    }

    /// Whether routing should avoid `b` right now (call
    /// [`Self::resolve`] first). Half-open admits one probe at a time.
    fn is_blocked(&self, b: usize) -> bool {
        if !self.enabled() {
            return false;
        }
        match self.health[b].state {
            BState::Closed => false,
            BState::Open { .. } => true,
            BState::HalfOpen { probe_end, .. } => probe_end.is_some(),
        }
    }

    fn record(&mut self, b: usize, observed: f64) {
        let h = &mut self.health[b];
        if h.seen {
            h.ewma = self.cfg.ewma_alpha * observed + (1.0 - self.cfg.ewma_alpha) * h.ewma;
        } else {
            h.ewma = observed;
            h.seen = true;
        }
    }

    fn trip(&mut self, b: usize, t: f64) {
        let until = t + self.cfg.breaker_cooldown;
        if !matches!(self.health[b].state, BState::Open { .. }) {
            self.opens[b] += 1;
            self.note(t, b, "breaker_open");
        }
        self.health[b].state = BState::Open { until };
        if self.publish {
            qcpa_obs::event!(qcpa_obs::Level::Info, "sim.resilience", "breaker_open", {
                "backend" => b,
                "at" => t,
                "until" => until,
            });
        }
    }

    /// A leg dispatched at `t` will finish by `end` within its
    /// deadline. Consecutive failures reset at dispatch time (the
    /// engine resolves outcomes at dispatch, so this is the natural —
    /// and documented — observation point); a half-open breaker records
    /// the leg as its in-flight probe.
    fn on_dispatch_ok(&mut self, b: usize, t: f64, svc: f64, end: f64) {
        if !self.enabled() {
            return;
        }
        self.resolve(b, t);
        self.record(b, svc);
        let h = &mut self.health[b];
        h.consec = 0;
        if let BState::HalfOpen {
            probe_end: None,
            successes,
        } = h.state
        {
            h.state = BState::HalfOpen {
                probe_end: Some(end),
                successes,
            };
        }
        if matches!(self.health[b].state, BState::Closed)
            && self.health[b].ewma > self.cfg.slow_trip
        {
            self.trip(b, t);
        }
    }

    /// A leg dispatched at `t` was cancelled by its deadline after
    /// `observed` seconds of occupancy.
    fn on_timeout(&mut self, b: usize, t: f64, observed: f64) {
        if !self.enabled() {
            return;
        }
        self.resolve(b, t);
        self.record(b, observed);
        let h = &mut self.health[b];
        h.consec += 1;
        let tripping = match h.state {
            BState::HalfOpen { .. } => true,
            BState::Closed => {
                (self.cfg.breaker_failures > 0 && h.consec >= self.cfg.breaker_failures)
                    || h.ewma > self.cfg.slow_trip
            }
            BState::Open { .. } => false,
        };
        if tripping {
            self.trip(b, t);
        }
    }

    /// A crash holds the breaker open until recovery.
    fn on_crash(&mut self, b: usize, at: f64) {
        if !self.enabled() {
            return;
        }
        if !matches!(self.health[b].state, BState::Open { .. }) {
            self.opens[b] += 1;
            self.note(at, b, "breaker_open");
        }
        self.health[b].state = BState::Open {
            until: f64::INFINITY,
        };
    }

    /// Recovery resets health entirely — the catch-up pause already
    /// models the rejoin cost.
    fn on_recover(&mut self, b: usize, at: f64) {
        if self.enabled() && !matches!(self.health[b].state, BState::Closed) {
            self.note(at, b, "breaker_reset");
        }
        self.health[b] = Health::fresh();
    }
}

/// One per-backend work unit of a request.
#[derive(Debug, Clone, Copy)]
struct RLeg {
    /// Backend the leg ran on (the export track).
    backend: usize,
    end: f64,
    svc: f64,
    /// Voided by a crash (work after the crash refunded).
    voided: bool,
    /// Cancelled by its deadline (never completes the request).
    cancelled: bool,
    primary: bool,
}

/// Terminal classification of a request; `Pending` resolves to
/// completed (or, impossibly, lost) in the final scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Pending,
    Shed,
    TimedOut,
}

#[derive(Debug, Clone, Copy)]
struct RReq {
    arrival: f64,
    class: ClassId,
    kind: QueryKind,
    service: f64,
    /// Global request index — equals the arena index in an unsharded
    /// run, the original stream index in a sharded component. Backoff
    /// jitter is keyed on it so components reproduce the unsharded
    /// delays bit for bit.
    gid: u64,
    /// Chain head in the run's shared [`LegArena`].
    legs: LegList,
    attempts: u32,
    retry_pending: bool,
    outcome: Outcome,
}

/// Entry of a backend's bounded pending queue, in non-decreasing `end`
/// order (per-backend dispatch times are monotone; shed victims leave
/// capacity holes rather than compacting the schedule, mirroring crash
/// voiding).
#[derive(Debug, Clone, Copy)]
struct QEntry {
    end: f64,
    start: f64,
    req: usize,
    leg: LegRef,
    weight: f64,
    /// Only not-yet-started read legs may be evicted by
    /// [`OverloadPolicy::ShedLowestWeight`].
    sheddable: bool,
}

/// Packs a retry's `(sequence, request)` pair into the event queue's
/// payload word. The sequence is unique and monotone, so ordering by
/// the packed word reproduces the old `(at_bits, seq, req)` replay
/// order exactly; both halves stay within 32 bits for any realistic
/// run (debug-asserted at the push site).
fn pack_retry(seq: u64, req: usize) -> u64 {
    debug_assert!(seq < (1 << 32) && req < (1 << 32));
    (seq << 32) | req as u64
}

#[derive(Debug, Default, Clone)]
pub(crate) struct Tally {
    retries: usize,
    timeouts: usize,
    shed: usize,
    shed_victims: usize,
    browned_out: usize,
    timed_out: usize,
    redispatched: usize,
    degraded_fallbacks: usize,
    breaker_overrides: usize,
    unroutable: usize,
}

impl Tally {
    /// Folds another component's per-request counters into this one —
    /// every field is request-driven, so the sharded merge is a sum.
    pub(crate) fn absorb(&mut self, o: &Tally) {
        self.retries += o.retries;
        self.timeouts += o.timeouts;
        self.shed += o.shed;
        self.shed_victims += o.shed_victims;
        self.browned_out += o.browned_out;
        self.timed_out += o.timed_out;
        self.redispatched += o.redispatched;
        self.degraded_fallbacks += o.degraded_fallbacks;
        self.breaker_overrides += o.breaker_overrides;
        self.unroutable += o.unroutable;
    }
}

/// Result of [`run_open_resilient`].
#[derive(Debug, Clone)]
pub struct ResilienceReport {
    /// `(arrival, response)` per completed request, in arrival order.
    pub responses: Vec<(f64, f64)>,
    /// Mean response time of completed requests, seconds.
    pub mean_response: f64,
    /// 95th percentile response time (nearest-rank).
    pub p95_response: f64,
    /// 99th percentile response time (nearest-rank).
    pub p99_response: f64,
    /// Per-backend busy seconds — work actually performed (voided and
    /// cancelled remainders refunded).
    pub busy: Vec<f64>,
    /// Per-backend utilization over the observation window.
    pub utilization: Vec<f64>,
    /// Requests offered to the system.
    pub offered: usize,
    /// Requests that completed.
    pub completed: usize,
    /// Requests shed by admission control (incoming rejections plus
    /// evicted victims).
    pub shed: usize,
    /// Requests that exhausted their deadline/retry budget (includes
    /// requests that were unroutable with an exhausted budget).
    pub timed_out: usize,
    /// Requests in no terminal state — always 0; a nonzero value means
    /// the conservation law was violated.
    pub lost: usize,
    /// Completed requests per class (indexed by class id) — the
    /// policy-facing view of who got served under overload.
    pub per_class_completed: Vec<usize>,
    /// Retries scheduled (each also fires).
    pub retries: usize,
    /// Legs cancelled by their deadline.
    pub timeouts: usize,
    /// Queued victims evicted by [`OverloadPolicy::ShedLowestWeight`]
    /// (a subset of `shed`).
    pub shed_victims: usize,
    /// Reads admitted past the bound with discounted service under
    /// [`OverloadPolicy::Brownout`].
    pub browned_out: usize,
    /// Budget-free crash re-dispatches (as in the fault engine).
    pub redispatched: usize,
    /// Breaker transitions to open.
    pub breaker_opens: usize,
    /// Breaker transitions to half-open.
    pub breaker_half_opens: usize,
    /// Breaker transitions back to closed.
    pub breaker_closes: usize,
    /// Reads served by a capable non-preferred replica because every
    /// preferred replica was open-circuit.
    pub degraded_fallbacks: usize,
    /// Reads that overrode an open breaker because no alternative
    /// existed (served rather than dropped).
    pub breaker_overrides: usize,
    /// Dispatch attempts that found no capable backend.
    pub unroutable: usize,
    /// Crash events applied.
    pub crashes: usize,
    /// Recovery events applied.
    pub recoveries: usize,
    /// Gray-failure windows opened ([`FaultEvent::Degrade`] applied).
    pub gray_windows: usize,
    /// Network partitions activated.
    pub partitions: usize,
    /// Network partitions healed.
    pub heals: usize,
    /// Online repairs triggered by unroutable classes.
    pub repairs: usize,
    /// Total seconds survivors were paused for repair ETL.
    pub repair_pause_secs: f64,
    /// Total bytes repairs re-replicated (Eq. 27).
    pub repair_moved_bytes: u64,
    /// Reroutes that failed even after online repair (the run keeps the
    /// previous routing table).
    pub reroute_failures: usize,
    /// False if any online repair left a weighted class below the
    /// `min(repair_k, survivors − 1)` safety level.
    pub post_repair_safety_ok: bool,
    /// `(time, routable backends)` after each applied fault event — a
    /// backend counts while it is alive and not cut off by a partition.
    pub availability: Vec<(f64, usize)>,
    /// Completed requests per second of observation window — the
    /// graceful-degradation metric of `fig_resilience`.
    pub goodput: f64,
}

impl ResilienceReport {
    /// The conservation law every run must satisfy:
    /// `completed + shed + timed_out + lost == offered`.
    pub fn conserved(&self) -> bool {
        self.completed + self.shed + self.timed_out + self.lost == self.offered
    }
}

/// Engine state shared by dispatch, retry, and fault handling.
struct Engine<'a> {
    cls: &'a Classification,
    cfg: &'a SimConfig,
    rcfg: &'a ResilienceConfig,
    scheduler: Scheduler,
    profile: ServiceProfile,
    spare: Vec<f64>,
    alive: Vec<bool>,
    /// Gray-failure service multiplier per backend; 1.0 when healthy.
    /// Applied at dispatch, so `x * 1.0` keeps healthy runs bit-exact.
    slow: Vec<f64>,
    /// Backends cut off by an active partition: alive, but unroutable.
    cut: Vec<bool>,
    free_at: Vec<f64>,
    busy: Vec<f64>,
    queues: Vec<VecDeque<QEntry>>,
    arena: Vec<RReq>,
    leg_arena: LegArena<RLeg>,
    breakers: Breakers,
    retries: SimQueue,
    retry_seq: u64,
    tally: Tally,
    tracer: Option<&'a mut qcpa_obs::Tracer>,
}

impl Engine<'_> {
    /// Records an instant mark for request `idx` at `t` on the fault
    /// track when the tracer admits the request. The span id is salted
    /// with the mark name and time, so repeated marks on one request
    /// stay distinct.
    fn trace_mark(&mut self, idx: usize, name: &'static str, t: f64) {
        let track = self.free_at.len() as u32;
        if let Some(tr) = self.tracer.as_deref_mut() {
            if tr.admit(idx as u64) {
                let salt = name
                    .bytes()
                    .fold(t.to_bits(), |a, b| a.rotate_left(7) ^ u64::from(b));
                let id = tr.span_id(idx as u64, salt);
                tr.tree.mark(
                    id,
                    None,
                    "resilience",
                    name,
                    track,
                    t,
                    vec![("request", (idx as u64).into())],
                );
            }
        }
    }

    /// Records the backoff interval of a scheduled retry for `idx` as a
    /// span on the fault track.
    fn trace_backoff(&mut self, idx: usize, from: f64, until: f64, attempt: u32) {
        let track = self.free_at.len() as u32;
        if let Some(tr) = self.tracer.as_deref_mut() {
            if tr.admit(idx as u64) {
                let s = tr.tree.begin(
                    tr.span_id(idx as u64, 0x4000_0000_0000_0000 | u64::from(attempt)),
                    None,
                    "resilience",
                    "backoff",
                    track,
                    from,
                );
                tr.tree.arg(s, "request", idx as u64);
                tr.tree.arg(s, "attempt", attempt);
                tr.tree.end(s, until);
            }
        }
    }

    /// Schedules a retry for `idx` from time `from`, or marks it timed
    /// out when the budget is exhausted.
    fn retry_or_expire(&mut self, idx: usize, from: f64) {
        let attempts = self.arena[idx].attempts + 1;
        self.arena[idx].attempts = attempts;
        if attempts <= self.rcfg.max_retries {
            let delay = self.rcfg.backoff(self.arena[idx].gid, attempts);
            self.retry_seq += 1;
            self.retries
                .push((from + delay).to_bits(), pack_retry(self.retry_seq, idx));
            self.arena[idx].retry_pending = true;
            self.tally.retries += 1;
            self.trace_backoff(idx, from, from + delay, attempts);
        } else {
            self.arena[idx].outcome = Outcome::TimedOut;
            self.tally.timed_out += 1;
            self.trace_mark(idx, "timed_out", from);
        }
    }

    /// Picks the backend for a read of `class` at time `t`, consulting
    /// the breaker and falling back to degraded-mode routing. `None`
    /// only when the class has no capable backend at all.
    fn pick_read_backend(&mut self, idx: usize, class: ClassId, t: f64) -> Option<usize> {
        if !self.breakers.enabled() {
            let free_at = &self.free_at;
            return self
                .scheduler
                .route_read_with(class, |b| (free_at[b] - t).max(0.0));
        }
        for &b in self.scheduler.read_targets(class) {
            self.breakers.resolve(b, t);
        }
        let free_at = &self.free_at;
        let pending = |b: usize| (free_at[b] - t).max(0.0);
        if let Some(b) = self
            .scheduler
            .route_read_filtered(class, pending, |b| self.breakers.is_blocked(b))
        {
            return Some(b);
        }
        // Every preferred replica is open-circuit: degrade to the
        // capable superset, preferring spare capacity under the
        // allocation (Section 5's robustness headroom).
        for &b in self.scheduler.capable_read_targets(class) {
            self.breakers.resolve(b, t);
        }
        let free_at = &self.free_at;
        let pending = |b: usize| (free_at[b] - t).max(0.0);
        let by_pending = |&a: &usize, &b: &usize| {
            pending(a)
                .partial_cmp(&pending(b))
                .expect("pending work is finite")
                .then(a.cmp(&b))
        };
        let avail: Vec<usize> = self
            .scheduler
            .capable_read_targets(class)
            .iter()
            .copied()
            .filter(|&b| self.alive[b] && !self.cut[b] && !self.breakers.is_blocked(b))
            .collect();
        let pick = avail
            .iter()
            .copied()
            .filter(|&b| self.spare[b] > EPS)
            .min_by(|a, b| by_pending(a, b))
            .or_else(|| avail.into_iter().min_by(|a, b| by_pending(a, b)));
        if let Some(b) = pick {
            self.tally.degraded_fallbacks += 1;
            self.trace_mark(idx, "degraded_fallback", t);
            return Some(b);
        }
        // Nothing healthy anywhere: overriding the breaker beats
        // dropping the request — shedding is the admission policy's
        // decision, not the breaker's.
        let routed = self
            .scheduler
            .route_read_with(class, |b| (self.free_at[b] - t).max(0.0));
        if routed.is_some() {
            self.tally.breaker_overrides += 1;
            self.trace_mark(idx, "breaker_override", t);
        }
        routed
    }

    /// Admits a read of `class` onto backend `b` at time `t` under the
    /// overload policy. Returns the admitted service multiplier, or
    /// `None` when the incoming request was shed.
    fn admit_read(&mut self, idx: usize, class: ClassId, b: usize, t: f64) -> Option<f64> {
        let q = &mut self.queues[b];
        while q.front().is_some_and(|e| e.end <= t) {
            q.pop_front();
        }
        if self.rcfg.queue_cap == 0 || q.len() < self.rcfg.queue_cap {
            return Some(1.0);
        }
        match self.rcfg.overload {
            OverloadPolicy::Reject => {
                self.shed_incoming(idx, t);
                None
            }
            OverloadPolicy::ShedLowestWeight => {
                let w_in = self.cls.classes[class.idx()].weight;
                let victim = q
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.sheddable && e.start > t)
                    .min_by(|(_, x), (_, y)| {
                        x.weight
                            .partial_cmp(&y.weight)
                            .expect("class weights are finite")
                            .then(x.req.cmp(&y.req))
                    })
                    .map(|(i, e)| (i, *e));
                match victim {
                    Some((vi, ve)) if ve.weight < w_in => {
                        q.remove(vi);
                        // The victim never started: refund its whole
                        // reservation but leave `free_at` untouched — a
                        // capacity hole, the same discipline as crash
                        // voiding.
                        self.busy[b] -= ve.end - ve.start;
                        self.leg_arena.get_mut(ve.leg).voided = true;
                        self.arena[ve.req].outcome = Outcome::Shed;
                        self.tally.shed += 1;
                        self.tally.shed_victims += 1;
                        self.trace_mark(ve.req, "shed_victim", t);
                        Some(1.0)
                    }
                    _ => {
                        self.shed_incoming(idx, t);
                        None
                    }
                }
            }
            OverloadPolicy::Brownout => {
                if q.len() >= 2 * self.rcfg.queue_cap {
                    self.shed_incoming(idx, t);
                    None
                } else {
                    self.tally.browned_out += 1;
                    self.trace_mark(idx, "brownout", t);
                    Some(self.rcfg.brownout_discount)
                }
            }
        }
    }

    fn shed_incoming(&mut self, idx: usize, t: f64) {
        self.arena[idx].outcome = Outcome::Shed;
        self.tally.shed += 1;
        self.trace_mark(idx, "shed", t);
    }

    /// Dispatches request `idx` at time `t` (arrival, retry, or crash
    /// re-dispatch — all take the same path).
    fn dispatch(&mut self, idx: usize, t: f64) {
        let (class, kind, service) = {
            let r = &mut self.arena[idx];
            r.retry_pending = false;
            if r.outcome != Outcome::Pending {
                // A retry can race a shed/expiry decision made after it
                // was scheduled; terminal requests stay terminal.
                return;
            }
            (r.class, r.kind, r.service)
        };
        match kind {
            QueryKind::Read => {
                let Some(b) = self.pick_read_backend(idx, class, t) else {
                    self.tally.unroutable += 1;
                    self.trace_mark(idx, "unroutable", t);
                    self.retry_or_expire(idx, t);
                    return;
                };
                let Some(mult) = self.admit_read(idx, class, b, t) else {
                    return;
                };
                let svc = self.profile.effective(b, service) * mult * self.slow[b];
                let start = self.free_at[b].max(t);
                let end = start + svc;
                let deadline = t + self.rcfg.deadline;
                if end > deadline {
                    // Cancel at the deadline: charge only the work
                    // performed. Nothing was queued behind this leg
                    // yet, so rolling `free_at` back is exact.
                    let performed = (deadline - start).clamp(0.0, svc);
                    self.busy[b] += performed;
                    self.free_at[b] = start + performed;
                    let lref = self.leg_arena.push(
                        &mut self.arena[idx].legs,
                        RLeg {
                            backend: b,
                            end: start + performed,
                            svc: performed,
                            voided: false,
                            cancelled: true,
                            primary: true,
                        },
                    );
                    if performed > 0.0 {
                        self.queues[b].push_back(QEntry {
                            end: start + performed,
                            start,
                            req: idx,
                            leg: lref,
                            weight: f64::INFINITY,
                            sheddable: false,
                        });
                    }
                    self.breakers.on_timeout(b, t, performed.max(0.0));
                    self.tally.timeouts += 1;
                    self.trace_mark(idx, "leg_timeout", deadline);
                    self.retry_or_expire(idx, deadline);
                } else {
                    self.free_at[b] = end;
                    self.busy[b] += svc;
                    let lref = self.leg_arena.push(
                        &mut self.arena[idx].legs,
                        RLeg {
                            backend: b,
                            end,
                            svc,
                            voided: false,
                            cancelled: false,
                            primary: true,
                        },
                    );
                    self.queues[b].push_back(QEntry {
                        end,
                        start,
                        req: idx,
                        leg: lref,
                        weight: self.cls.classes[class.idx()].weight,
                        sheddable: true,
                    });
                    self.breakers.on_dispatch_ok(b, t, svc, end);
                }
            }
            QueryKind::Update => {
                // Replication duty: fans out to every overlapping
                // replica exactly as in the fault engine — no deadline,
                // no shedding (a dropped update leg would silently
                // diverge the replica).
                let targets = self.scheduler.route_update(class).to_vec();
                if targets.is_empty() {
                    self.tally.unroutable += 1;
                    self.trace_mark(idx, "unroutable", t);
                    self.retry_or_expire(idx, t);
                    return;
                }
                let sync = match self.cfg.propagation {
                    UpdatePropagation::Rowa => {
                        1.0 + self.cfg.rowa_overhead * (targets.len() as f64 - 1.0)
                    }
                    _ => 1.0,
                };
                let weight = self.cls.classes[class.idx()].weight;
                for (i, &b) in targets.iter().enumerate() {
                    let mult = match self.cfg.propagation {
                        UpdatePropagation::Lazy { batching_discount } if i > 0 => batching_discount,
                        _ => sync,
                    };
                    let svc = self.profile.effective(b, service) * mult * self.slow[b];
                    let start = self.free_at[b].max(t);
                    let end = start + svc;
                    self.free_at[b] = end;
                    self.busy[b] += svc;
                    let lref = self.leg_arena.push(
                        &mut self.arena[idx].legs,
                        RLeg {
                            backend: b,
                            end,
                            svc,
                            voided: false,
                            cancelled: false,
                            primary: i == 0,
                        },
                    );
                    self.queues[b].push_back(QEntry {
                        end,
                        start,
                        req: idx,
                        leg: lref,
                        weight,
                        sheddable: false,
                    });
                }
            }
        }
    }
}

/// Records a sampled request's finalize-time span tree: a `request`
/// root stamped with its terminal outcome and one `leg` child per
/// dispatched leg (cancelled and voided legs annotated), reconstructed
/// from the engine arena exactly as the finalize scan sees it.
fn trace_resilient_request(
    tr: &mut qcpa_obs::Tracer,
    req: u64,
    r: &RReq,
    leg_arena: &LegArena<RLeg>,
    outcome: &'static str,
    fault_track: u32,
) {
    let name = match r.kind {
        QueryKind::Read => "read",
        QueryKind::Update => "update",
    };
    let track = leg_arena
        .iter(r.legs)
        .next()
        .map_or(fault_track, |l| l.backend as u32);
    let root = tr
        .tree
        .begin(tr.span_id(req, 0), None, "request", name, track, r.arrival);
    tr.tree.arg(root, "request", req);
    tr.tree.arg(root, "class", r.class.0);
    tr.tree.arg(root, "outcome", outcome);
    tr.tree.arg(root, "attempts", r.attempts);
    let mut end = r.arrival;
    for (i, leg) in leg_arena.iter(r.legs).enumerate() {
        let s = tr.tree.begin(
            tr.span_id(req, 1 + i as u64),
            Some(root),
            "service",
            "leg",
            leg.backend as u32,
            leg.end - leg.svc,
        );
        tr.tree.arg(s, "backend", leg.backend);
        if leg.voided {
            tr.tree.arg(s, "voided", "true");
        }
        if leg.cancelled {
            tr.tree.arg(s, "cancelled", "true");
        }
        tr.tree.end(s, leg.end);
        if !leg.voided && !leg.cancelled {
            end = end.max(leg.end);
        }
    }
    tr.tree.end(root, end);
}

/// Runs timed arrivals through the scheduler with the resilience layer
/// active, while applying `plan`'s crashes and recoveries. Requests
/// must be sorted by arrival time. With [`ResilienceConfig::default`]
/// the result is bit-identical to [`crate::fault::run_open_faults`].
#[allow(clippy::too_many_arguments)]
pub fn run_open_resilient(
    alloc: &Allocation,
    cls: &Classification,
    cluster: &ClusterSpec,
    catalog: &Catalog,
    requests: &[Request],
    warmup_backlog: f64,
    cfg: &SimConfig,
    plan: &FaultPlan,
    fcfg: &FaultConfig,
    rcfg: &ResilienceConfig,
) -> ResilienceReport {
    run_open_resilient_traced(
        alloc,
        cls,
        cluster,
        catalog,
        requests,
        warmup_backlog,
        cfg,
        plan,
        fcfg,
        rcfg,
        None,
    )
}

/// [`run_open_resilient`] with an optional causal tracer. Sampled
/// requests become span trees (per-leg service intervals plus backoff
/// spans), while admission, retry, breaker, and fault transitions
/// become instant marks on a dedicated track (`tid == cluster size`).
/// `None` — and `Some` with a zero sampling rate — leave the simulated
/// results bit-identical to the untraced run.
#[allow(clippy::too_many_arguments)]
pub fn run_open_resilient_traced(
    alloc: &Allocation,
    cls: &Classification,
    cluster: &ClusterSpec,
    catalog: &Catalog,
    requests: &[Request],
    warmup_backlog: f64,
    cfg: &SimConfig,
    plan: &FaultPlan,
    fcfg: &FaultConfig,
    rcfg: &ResilienceConfig,
    tracer: Option<&mut qcpa_obs::Tracer>,
) -> ResilienceReport {
    let core = resilient_core(
        alloc,
        cls,
        cluster,
        catalog,
        requests,
        None,
        warmup_backlog,
        cfg,
        plan,
        fcfg,
        rcfg,
        tracer,
        true,
    );
    assemble_resilience_report(requests, cls.len(), core)
}

/// Terminal state of one request in a [`resilient_core`] run.
#[derive(Debug, Clone, Copy)]
pub(crate) enum RFinal {
    /// Completed at this absolute time.
    Completed(f64),
    Shed,
    TimedOut,
    /// Never reached a terminal state — a conservation-law violation.
    Lost,
}

/// Raw outcome of [`resilient_core`]: per-request terminal states in
/// arrival order plus the counters the sharded merge recombines.
pub(crate) struct RCore {
    /// `(arrival, class, final state)` per request, in arrival order.
    pub finals: Vec<(f64, ClassId, RFinal)>,
    pub busy: Vec<f64>,
    pub tally: Tally,
    /// Per-backend breaker transition counts (see [`Breakers`]).
    pub breaker_opens: Vec<usize>,
    pub breaker_half_opens: Vec<usize>,
    pub breaker_closes: Vec<usize>,
    pub stats: FaultStats,
}

/// The resilience engine proper: replays arrivals, retries, and the
/// layered fault schedule in one total order and returns raw terminal
/// states. `gids` maps each request to its global stream index (`None`
/// = identity) so backoff jitter in a sharded component reproduces the
/// unsharded draws bit for bit; `publish = false` suppresses obs
/// emission for per-component replays — the sharded driver publishes
/// once from the merged result.
#[allow(clippy::too_many_arguments)]
pub(crate) fn resilient_core(
    alloc: &Allocation,
    cls: &Classification,
    cluster: &ClusterSpec,
    catalog: &Catalog,
    requests: &[Request],
    gids: Option<&[usize]>,
    warmup_backlog: f64,
    cfg: &SimConfig,
    plan: &FaultPlan,
    fcfg: &FaultConfig,
    rcfg: &ResilienceConfig,
    mut tracer: Option<&mut qcpa_obs::Tracer>,
    publish: bool,
) -> RCore {
    let _span = qcpa_obs::span("sim", "run_open_resilient");
    let n = cluster.len();
    assert_eq!(
        plan.n_backends(),
        n,
        "fault plan validated for a different cluster size"
    );
    rcfg.validate();

    let fault_track = n as u32;
    if let Some(tr) = tracer.as_deref_mut() {
        if tr.enabled() {
            for b in 0..n {
                tr.tree.name_track(b as u32, format!("backend {b}"));
            }
            tr.tree.name_track(fault_track, "resilience");
        }
    }
    let trace_on = tracer.as_ref().is_some_and(|tr| tr.enabled());

    let mut current = alloc.clone();
    let mut eng = Engine {
        cls,
        cfg,
        rcfg,
        scheduler: Scheduler::new(&current, cls),
        profile: ServiceProfile::new(&current, cluster, catalog, cfg.locality),
        spare: robust::spare_room(&current, cluster),
        alive: vec![true; n],
        slow: vec![1.0f64; n],
        cut: vec![false; n],
        free_at: vec![warmup_backlog.max(0.0); n],
        busy: vec![0.0; n],
        queues: vec![VecDeque::new(); n],
        arena: Vec::with_capacity(requests.len()),
        leg_arena: LegArena::with_capacity(requests.len() * 2),
        breakers: Breakers::new(n, rcfg),
        retries: SimQueue::with_capacity(QueueKind::from_env(), 0),
        retry_seq: 0,
        tally: Tally::default(),
        tracer,
    };
    eng.breakers.log_enabled = trace_on;
    eng.breakers.publish = publish;

    let mut stats = FaultStats::new(n, publish);

    let events = plan.events();
    let mut ev_i = 0usize;
    let mut req_i = 0usize;

    // One merged, totally ordered replay: fault events first at equal
    // times (matching the fault engine's `<=` arrival rule), then
    // retries, then arrivals.
    loop {
        let ta = requests
            .get(req_i)
            .map(|r| r.arrival)
            .unwrap_or(f64::INFINITY);
        let te = events.get(ev_i).map(|e| e.at()).unwrap_or(f64::INFINITY);
        let tr = eng
            .retries
            .peek()
            .map(|(bits, _)| f64::from_bits(bits))
            .unwrap_or(f64::INFINITY);
        if ta.is_infinite() && te.is_infinite() && tr.is_infinite() {
            break;
        }
        if te <= tr && te <= ta {
            let e = &events[ev_i];
            ev_i += 1;
            match *e {
                FaultEvent::Crash { backend, at } => {
                    eng.alive[backend] = false;
                    stats.crashes += 1;
                    eng.breakers.on_crash(backend, at);
                    // Void legs still running or queued on the casualty
                    // and refund their unperformed work.
                    let entries = std::mem::take(&mut eng.queues[backend]);
                    let mut candidates: Vec<usize> = Vec::new();
                    let mut voided = 0usize;
                    for qe in entries {
                        if qe.end > at {
                            let leg = *eng.leg_arena.get(qe.leg);
                            eng.leg_arena.get_mut(qe.leg).voided = true;
                            eng.busy[backend] -= (leg.end - at).min(leg.svc);
                            candidates.push(qe.req);
                            voided += 1;
                        }
                    }
                    candidates.sort_unstable();
                    candidates.dedup();
                    if publish {
                        qcpa_obs::event!(qcpa_obs::Level::Info, "sim.fault", "crash", {
                            "backend" => backend,
                            "at" => at,
                            "voided_legs" => voided,
                        });
                    }
                    if let Some(tr) = eng.tracer.as_deref_mut() {
                        if tr.enabled() {
                            tr.tree.mark(
                                tr.span_id(u64::MAX - backend as u64, at.to_bits()),
                                None,
                                "fault",
                                "crash",
                                fault_track,
                                at,
                                vec![("backend", backend.into()), ("voided_legs", voided.into())],
                            );
                        }
                    }
                    let routable: Vec<bool> = eng
                        .alive
                        .iter()
                        .zip(eng.cut.iter())
                        .map(|(&a, &c)| a && !c)
                        .collect();
                    if let Ok(s) = reroute(
                        at,
                        &mut current,
                        cls,
                        cluster,
                        catalog,
                        &routable,
                        fcfg,
                        &mut eng.free_at,
                        &mut stats.tally,
                    ) {
                        eng.scheduler = s;
                    }
                    eng.profile = ServiceProfile::new(&current, cluster, catalog, cfg.locality);
                    eng.spare = robust::spare_room(&current, cluster);
                    // Re-queue the requests the crash voided, in
                    // arrival order — unless a retry is already
                    // scheduled (it will re-dispatch them) or they
                    // reached a terminal state.
                    for ri in candidates {
                        let needs = {
                            let r = &eng.arena[ri];
                            if r.outcome != Outcome::Pending || r.retry_pending {
                                false
                            } else {
                                match (r.kind, cfg.propagation) {
                                    (QueryKind::Read, _)
                                    | (QueryKind::Update, UpdatePropagation::Rowa) => eng
                                        .leg_arena
                                        .iter(r.legs)
                                        .filter(|l| !l.cancelled)
                                        .all(|l| l.voided),
                                    (QueryKind::Update, _) => eng
                                        .leg_arena
                                        .iter(r.legs)
                                        .filter(|l| !l.cancelled && l.primary)
                                        .last()
                                        .is_none_or(|l| l.voided),
                                }
                            }
                        };
                        if !needs {
                            continue;
                        }
                        eng.arena[ri].outcome = Outcome::Pending;
                        eng.tally.redispatched += 1;
                        eng.trace_mark(ri, "redispatch", at);
                        eng.dispatch(ri, at);
                    }
                }
                FaultEvent::Recover {
                    backend,
                    at,
                    catchup_cost,
                } => {
                    eng.alive[backend] = true;
                    stats.recoveries += 1;
                    eng.free_at[backend] = at + catchup_cost;
                    eng.queues[backend].clear();
                    eng.breakers.on_recover(backend, at);
                    if publish {
                        qcpa_obs::event!(qcpa_obs::Level::Info, "sim.fault", "recover", {
                            "backend" => backend,
                            "at" => at,
                            "catchup_secs" => catchup_cost,
                        });
                    }
                    if let Some(tr) = eng.tracer.as_deref_mut() {
                        if tr.enabled() {
                            tr.tree.mark(
                                tr.span_id(u64::MAX - backend as u64, at.to_bits() ^ 1),
                                None,
                                "fault",
                                "recover",
                                fault_track,
                                at,
                                vec![
                                    ("backend", backend.into()),
                                    ("catchup_secs", catchup_cost.into()),
                                ],
                            );
                        }
                    }
                    let routable: Vec<bool> = eng
                        .alive
                        .iter()
                        .zip(eng.cut.iter())
                        .map(|(&a, &c)| a && !c)
                        .collect();
                    if let Ok(s) = reroute(
                        at,
                        &mut current,
                        cls,
                        cluster,
                        catalog,
                        &routable,
                        fcfg,
                        &mut eng.free_at,
                        &mut stats.tally,
                    ) {
                        eng.scheduler = s;
                    }
                    eng.profile = ServiceProfile::new(&current, cluster, catalog, cfg.locality);
                    eng.spare = robust::spare_room(&current, cluster);
                }
                FaultEvent::Degrade {
                    backend,
                    at,
                    factor,
                } => {
                    // Gray failure: the backend keeps serving (and keeps
                    // its breaker state), but every leg dispatched from
                    // now on takes `factor` times as long — the breaker
                    // EWMA observes the slowdown and may trip on it.
                    eng.slow[backend] = factor;
                    stats.gray_windows += 1;
                    if publish {
                        qcpa_obs::event!(qcpa_obs::Level::Info, "sim.fault", "degrade", {
                            "backend" => backend,
                            "at" => at,
                            "factor" => factor,
                        });
                    }
                    if let Some(tr) = eng.tracer.as_deref_mut() {
                        if tr.enabled() {
                            tr.tree.mark(
                                tr.span_id(u64::MAX - backend as u64, at.to_bits() ^ 2),
                                None,
                                "fault",
                                "degrade",
                                fault_track,
                                at,
                                vec![("backend", backend.into()), ("factor", factor.into())],
                            );
                        }
                    }
                }
                FaultEvent::Restore { backend, at } => {
                    eng.slow[backend] = 1.0;
                    if publish {
                        qcpa_obs::event!(qcpa_obs::Level::Info, "sim.fault", "restore", {
                            "backend" => backend,
                            "at" => at,
                        });
                    }
                    if let Some(tr) = eng.tracer.as_deref_mut() {
                        if tr.enabled() {
                            tr.tree.mark(
                                tr.span_id(u64::MAX - backend as u64, at.to_bits() ^ 3),
                                None,
                                "fault",
                                "restore",
                                fault_track,
                                at,
                                vec![("backend", backend.into())],
                            );
                        }
                    }
                }
                FaultEvent::Partition { id, at } => {
                    // Link cut, not death: no voiding, no breaker trip —
                    // in-flight and queued legs on the cut side still
                    // complete; the side is only excluded from new
                    // routing until healed.
                    for &m in plan.partition_side(id) {
                        eng.cut[m] = true;
                    }
                    stats.partitions += 1;
                    if publish {
                        qcpa_obs::event!(qcpa_obs::Level::Info, "sim.fault", "partition", {
                            "partition" => id,
                            "at" => at,
                            "cut" => plan.partition_side(id).len(),
                        });
                    }
                    if let Some(tr) = eng.tracer.as_deref_mut() {
                        if tr.enabled() {
                            tr.tree.mark(
                                tr.span_id(u64::MAX / 2 - u64::from(id), at.to_bits()),
                                None,
                                "fault",
                                "partition",
                                fault_track,
                                at,
                                vec![
                                    ("partition", id.into()),
                                    ("cut", plan.partition_side(id).len().into()),
                                ],
                            );
                        }
                    }
                    let routable: Vec<bool> = eng
                        .alive
                        .iter()
                        .zip(eng.cut.iter())
                        .map(|(&a, &c)| a && !c)
                        .collect();
                    if let Ok(s) = reroute(
                        at,
                        &mut current,
                        cls,
                        cluster,
                        catalog,
                        &routable,
                        fcfg,
                        &mut eng.free_at,
                        &mut stats.tally,
                    ) {
                        eng.scheduler = s;
                    }
                    eng.profile = ServiceProfile::new(&current, cluster, catalog, cfg.locality);
                    eng.spare = robust::spare_room(&current, cluster);
                }
                FaultEvent::Heal { id, at } => {
                    for &m in plan.partition_side(id) {
                        eng.cut[m] = false;
                    }
                    stats.heals += 1;
                    if publish {
                        qcpa_obs::event!(qcpa_obs::Level::Info, "sim.fault", "heal", {
                            "partition" => id,
                            "at" => at,
                        });
                    }
                    if let Some(tr) = eng.tracer.as_deref_mut() {
                        if tr.enabled() {
                            tr.tree.mark(
                                tr.span_id(u64::MAX / 2 - u64::from(id), at.to_bits() ^ 1),
                                None,
                                "fault",
                                "heal",
                                fault_track,
                                at,
                                vec![("partition", id.into())],
                            );
                        }
                    }
                    let routable: Vec<bool> = eng
                        .alive
                        .iter()
                        .zip(eng.cut.iter())
                        .map(|(&a, &c)| a && !c)
                        .collect();
                    if let Ok(s) = reroute(
                        at,
                        &mut current,
                        cls,
                        cluster,
                        catalog,
                        &routable,
                        fcfg,
                        &mut eng.free_at,
                        &mut stats.tally,
                    ) {
                        eng.scheduler = s;
                    }
                    eng.profile = ServiceProfile::new(&current, cluster, catalog, cfg.locality);
                    eng.spare = robust::spare_room(&current, cluster);
                }
            }
            let routable = eng
                .alive
                .iter()
                .zip(eng.cut.iter())
                .filter(|&(&a, &c)| a && !c)
                .count();
            stats.availability.push((e.at(), routable));
        } else if tr <= ta {
            if let Some((bits, packed)) = eng.retries.pop() {
                eng.dispatch((packed & 0xFFFF_FFFF) as usize, f64::from_bits(bits));
            }
        } else {
            let r = &requests[req_i];
            req_i += 1;
            debug_assert!(
                eng.arena.last().is_none_or(|p| p.arrival <= r.arrival),
                "arrivals must be sorted"
            );
            let idx = eng.arena.len();
            eng.arena.push(RReq {
                arrival: r.arrival,
                class: r.class,
                kind: r.kind,
                service: r.service,
                gid: gids.map_or(idx as u64, |g| g[idx] as u64),
                legs: LegList::new(),
                attempts: 0,
                retry_pending: false,
                outcome: Outcome::Pending,
            });
            eng.dispatch(idx, r.arrival);
        }
    }

    // Reclaim the tracer: the breaker transition log and the sampled
    // per-request trees are recorded outside the engine's borrow.
    let mut tracer = eng.tracer.take();
    if let Some(tr) = tracer.as_deref_mut() {
        if tr.enabled() {
            for (i, &(t, b, name)) in eng.breakers.log.iter().enumerate() {
                tr.tree.mark(
                    tr.span_id(0x8000_0000_0000_0000 | b as u64, i as u64),
                    None,
                    "breaker",
                    name,
                    fault_track,
                    t,
                    vec![("backend", b.into())],
                );
            }
        }
    }

    // Finalize: every non-voided, non-cancelled leg ran to completion.
    let mut finals = Vec::with_capacity(eng.arena.len());
    for (idx, r) in eng.arena.iter().enumerate() {
        let fin = match r.outcome {
            Outcome::Shed => RFinal::Shed,
            Outcome::TimedOut => RFinal::TimedOut,
            Outcome::Pending => {
                let live = |l: &&RLeg| !l.voided && !l.cancelled;
                let completion = match (r.kind, cfg.propagation) {
                    (QueryKind::Read, _) => eng
                        .leg_arena
                        .iter(r.legs)
                        .filter(live)
                        .last()
                        .map(|l| l.end),
                    (QueryKind::Update, UpdatePropagation::Rowa) => eng
                        .leg_arena
                        .iter(r.legs)
                        .filter(live)
                        .map(|l| l.end)
                        .fold(None, |acc: Option<f64>, e| {
                            Some(acc.map_or(e, |a| a.max(e)))
                        }),
                    (QueryKind::Update, _) => eng
                        .leg_arena
                        .iter(r.legs)
                        .filter(|l| l.primary && !l.voided && !l.cancelled)
                        .last()
                        .map(|l| l.end),
                };
                match completion {
                    Some(end) => RFinal::Completed(end),
                    None => RFinal::Lost,
                }
            }
        };
        if let Some(tr) = tracer.as_deref_mut() {
            if tr.admit(idx as u64) {
                let outcome = match fin {
                    RFinal::Completed(_) => "completed",
                    RFinal::Shed => "shed",
                    RFinal::TimedOut => "timed_out",
                    RFinal::Lost => "lost",
                };
                trace_resilient_request(tr, idx as u64, r, &eng.leg_arena, outcome, fault_track);
            }
        }
        finals.push((r.arrival, r.class, fin));
    }

    RCore {
        finals,
        busy: eng.busy,
        tally: eng.tally,
        breaker_opens: eng.breakers.opens,
        breaker_half_opens: eng.breakers.half_opens,
        breaker_closes: eng.breakers.closes,
        stats,
    }
}

/// Rebuilds the public [`ResilienceReport`] from raw terminal states —
/// the histogram, percentiles and per-class tallies replay in global
/// arrival order, so a merge of per-component cores assembles to the
/// unsharded report bit for bit. Publishes the run's obs counters.
pub(crate) fn assemble_resilience_report(
    requests: &[Request],
    n_classes: usize,
    core: RCore,
) -> ResilienceReport {
    let RCore {
        finals,
        busy,
        tally,
        breaker_opens,
        breaker_half_opens,
        breaker_closes,
        stats,
    } = core;
    let mut responses = Vec::with_capacity(finals.len());
    let mut resp_hist = qcpa_obs::Histogram::new();
    let mut per_class_completed = vec![0usize; n_classes];
    let mut shed = 0usize;
    let mut timed_out = 0usize;
    let mut lost = 0usize;
    for &(arrival, class, fin) in &finals {
        match fin {
            RFinal::Completed(end) => {
                resp_hist.record(end - arrival);
                responses.push((arrival, end - arrival));
                per_class_completed[class.idx()] += 1;
            }
            RFinal::Shed => shed += 1,
            RFinal::TimedOut => timed_out += 1,
            RFinal::Lost => lost += 1,
        }
    }
    debug_assert_eq!(shed, tally.shed);
    debug_assert_eq!(timed_out, tally.timed_out);

    let mut resp: Vec<f64> = responses.iter().map(|&(_, r)| r).collect();
    let mean_response = if resp.is_empty() {
        0.0
    } else {
        resp.iter().sum::<f64>() / resp.len() as f64
    };
    let p95_response = nearest_rank(&mut resp, 0.95);
    let p99_response = nearest_rank(&mut resp, 0.99);
    let window = requests.last().map(|r| r.arrival).unwrap_or(0.0).max(1e-9);
    let utilization: Vec<f64> = busy.iter().map(|b| b / window).collect();
    let goodput = responses.len() as f64 / window;
    let opens: usize = breaker_opens.iter().sum();
    let half_opens: usize = breaker_half_opens.iter().sum();
    let closes: usize = breaker_closes.iter().sum();

    let reg = qcpa_obs::global();
    reg.counter("sim.resilience.offered")
        .add(requests.len() as u64);
    reg.counter("sim.resilience.completed")
        .add(responses.len() as u64);
    reg.counter("sim.resilience.shed").add(shed as u64);
    reg.counter("sim.resilience.timed_out")
        .add(timed_out as u64);
    reg.counter("sim.resilience.lost").add(lost as u64);
    reg.counter("sim.resilience.timeouts")
        .add(tally.timeouts as u64);
    reg.counter("sim.resilience.retries")
        .add(tally.retries as u64);
    reg.counter("sim.resilience.shed_victims")
        .add(tally.shed_victims as u64);
    reg.counter("sim.resilience.browned_out")
        .add(tally.browned_out as u64);
    reg.counter("sim.resilience.redispatched")
        .add(tally.redispatched as u64);
    reg.counter("sim.resilience.breaker_opens")
        .add(opens as u64);
    reg.counter("sim.resilience.breaker_half_opens")
        .add(half_opens as u64);
    reg.counter("sim.resilience.breaker_closes")
        .add(closes as u64);
    reg.counter("sim.resilience.degraded_fallbacks")
        .add(tally.degraded_fallbacks as u64);
    reg.counter("sim.resilience.breaker_overrides")
        .add(tally.breaker_overrides as u64);
    reg.counter("sim.resilience.unroutable")
        .add(tally.unroutable as u64);
    reg.counter("sim.fault.crashes").add(stats.crashes as u64);
    reg.counter("sim.fault.recoveries")
        .add(stats.recoveries as u64);
    reg.merge_histogram("sim.resilience.response_secs", &resp_hist);

    ResilienceReport {
        completed: responses.len(),
        responses,
        mean_response,
        p95_response,
        p99_response,
        busy,
        utilization,
        offered: requests.len(),
        shed,
        timed_out,
        lost,
        per_class_completed,
        retries: tally.retries,
        timeouts: tally.timeouts,
        shed_victims: tally.shed_victims,
        browned_out: tally.browned_out,
        redispatched: tally.redispatched,
        breaker_opens: opens,
        breaker_half_opens: half_opens,
        breaker_closes: closes,
        degraded_fallbacks: tally.degraded_fallbacks,
        breaker_overrides: tally.breaker_overrides,
        unroutable: tally.unroutable,
        crashes: stats.crashes,
        recoveries: stats.recoveries,
        gray_windows: stats.gray_windows,
        partitions: stats.partitions,
        heals: stats.heals,
        repairs: stats.tally.repairs,
        repair_pause_secs: stats.tally.pause_secs,
        repair_moved_bytes: stats.tally.moved_bytes,
        reroute_failures: stats.tally.failures,
        post_repair_safety_ok: stats.tally.safety_ok,
        availability: stats.availability,
        goodput,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{run_open_faults, FaultInjectionConfig};
    use crate::request::RequestStream;
    use qcpa_core::classify::QueryClass;
    use qcpa_core::greedy;

    fn workload() -> (Catalog, Classification, RequestStream) {
        let mut cat = Catalog::new();
        let a = cat.add_table("A", 4_000);
        let b = cat.add_table("B", 4_000);
        let cls = Classification::from_classes(vec![
            QueryClass::read(0, [a], 0.45),
            QueryClass::read(1, [b], 0.35),
            QueryClass::update(2, [a], 0.20),
        ])
        .unwrap();
        let stream = RequestStream::new(
            vec![45.0, 35.0, 20.0],
            vec![QueryKind::Read, QueryKind::Read, QueryKind::Update],
            vec![0.01; 3],
        );
        (cat, cls, stream)
    }

    fn read_burst(n: usize, spacing: f64, service: f64, from: f64) -> Vec<Request> {
        (0..n)
            .map(|i| Request {
                class: ClassId(0),
                kind: QueryKind::Read,
                service,
                arrival: from + i as f64 * spacing,
            })
            .collect()
    }

    #[test]
    fn disabled_config_matches_run_open_faults_exactly() {
        let (cat, cls, stream) = workload();
        let cluster = ClusterSpec::homogeneous(4);
        let alloc = Allocation::full_replication(&cls, &cluster);
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let reqs = stream.sample_poisson(120.0, 40.0, 0.0, &mut rng);
        let cfg = SimConfig::default();
        let fic = FaultInjectionConfig {
            crashes: 3,
            ..Default::default()
        };
        let plan = FaultPlan::from_seed(99, 4, 40.0, &fic);
        assert!(!plan.is_empty());
        let base = run_open_faults(
            &alloc,
            &cls,
            &cluster,
            &cat,
            &reqs,
            0.0,
            &cfg,
            &plan,
            &FaultConfig::default(),
        );
        let rep = run_open_resilient(
            &alloc,
            &cls,
            &cluster,
            &cat,
            &reqs,
            0.0,
            &cfg,
            &plan,
            &FaultConfig::default(),
            &ResilienceConfig::default(),
        );
        assert_eq!(rep.responses.len(), base.responses.len());
        for (x, y) in rep.responses.iter().zip(&base.responses) {
            assert_eq!(x.0.to_bits(), y.0.to_bits());
            assert_eq!(x.1.to_bits(), y.1.to_bits(), "at arrival {}", x.0);
        }
        for (x, y) in rep.busy.iter().zip(&base.busy) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(rep.availability, base.availability);
        assert_eq!(rep.redispatched, base.redispatched);
        assert_eq!(rep.shed + rep.timed_out + rep.lost, base.lost);
        assert!(rep.conserved());
        assert_eq!(rep.timeouts, 0);
        assert_eq!(rep.retries, 0);
        assert_eq!(rep.breaker_opens, 0);
    }

    #[test]
    fn deadlines_cancel_retry_and_conserve() {
        let (cat, cls, _) = workload();
        let cluster = ClusterSpec::homogeneous(2);
        let alloc = Allocation::full_replication(&cls, &cluster);
        // 2× overload: queueing delay grows past the deadline quickly.
        let reqs = read_burst(400, 0.05, 0.2, 0.0);
        let plan = FaultPlan::new(Vec::new(), 2).unwrap();
        let rcfg = ResilienceConfig {
            deadline: 1.0,
            max_retries: 2,
            backoff_base: 0.1,
            backoff_cap: 1.0,
            jitter: 0.5,
            seed: 7,
            ..Default::default()
        };
        let rep = run_open_resilient(
            &alloc,
            &cls,
            &cluster,
            &cat,
            &reqs,
            0.0,
            &SimConfig::default(),
            &plan,
            &FaultConfig::default(),
            &rcfg,
        );
        assert!(rep.conserved(), "conservation law violated");
        assert_eq!(rep.lost, 0);
        assert!(rep.timeouts > 0, "overload must trigger timeouts");
        assert!(rep.retries > 0);
        assert!(rep.timed_out > 0, "budget exhaustion must be reported");
        // Every completed response meets its (final-attempt) deadline
        // plus the accumulated backoff delays — in particular it is
        // bounded, not an unbounded queueing tail.
        let worst_backoff: f64 = (1..=rcfg.max_retries)
            .map(|_| rcfg.backoff_cap * (1.0 + rcfg.jitter))
            .sum::<f64>()
            + rcfg.deadline * f64::from(rcfg.max_retries);
        for &(_, resp) in &rep.responses {
            assert!(resp <= rcfg.deadline + worst_backoff + 1e-9);
        }
    }

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        let rcfg = ResilienceConfig {
            backoff_base: 0.25,
            backoff_cap: 4.0,
            jitter: 0.25,
            seed: 42,
            max_retries: 10,
            ..Default::default()
        };
        for req in 0..20u64 {
            for attempt in 1..=10u32 {
                let d1 = rcfg.backoff(req, attempt);
                let d2 = rcfg.backoff(req, attempt);
                assert_eq!(d1.to_bits(), d2.to_bits(), "jitter must be deterministic");
                let capped = (0.25 * f64::from(1u32 << (attempt - 1).min(30))).min(4.0);
                assert!(d1 >= capped && d1 < capped * 1.25 + 1e-12);
            }
        }
        // Distinct (request, attempt) keys give distinct jitter.
        assert_ne!(rcfg.backoff(1, 5).to_bits(), rcfg.backoff(2, 5).to_bits());
        let no_jitter = ResilienceConfig {
            jitter: 0.0,
            ..rcfg
        };
        assert_eq!(no_jitter.backoff(3, 1), 0.25);
        assert_eq!(no_jitter.backoff(3, 9), 4.0);
    }

    #[test]
    fn reject_policy_bounds_queues_and_sheds() {
        let (cat, cls, _) = workload();
        let cluster = ClusterSpec::homogeneous(2);
        let alloc = Allocation::full_replication(&cls, &cluster);
        let reqs = read_burst(600, 0.05, 0.2, 0.0);
        let plan = FaultPlan::new(Vec::new(), 2).unwrap();
        let rcfg = ResilienceConfig {
            queue_cap: 8,
            overload: OverloadPolicy::Reject,
            ..Default::default()
        };
        let rep = run_open_resilient(
            &alloc,
            &cls,
            &cluster,
            &cat,
            &reqs,
            0.0,
            &SimConfig::default(),
            &plan,
            &FaultConfig::default(),
            &rcfg,
        );
        assert!(rep.conserved());
        assert!(rep.shed > 0, "2x overload with cap 8 must shed");
        assert!(rep.completed > 0);
        // Bounded queues bound the sojourn: at most cap+1 services wait
        // ahead of an admitted request.
        let bound = (rcfg.queue_cap as f64 + 1.0) * 0.2 + 1e-9;
        for &(_, resp) in &rep.responses {
            assert!(resp <= bound, "response {resp} exceeds bound {bound}");
        }
        // Unbounded run for contrast: no shedding, unbounded tail.
        let open = run_open_resilient(
            &alloc,
            &cls,
            &cluster,
            &cat,
            &reqs,
            0.0,
            &SimConfig::default(),
            &plan,
            &FaultConfig::default(),
            &ResilienceConfig::default(),
        );
        assert_eq!(open.shed, 0);
        assert!(open.p99_response > rep.p99_response);
    }

    #[test]
    fn shed_lowest_weight_prefers_heavy_classes() {
        let mut cat = Catalog::new();
        let a = cat.add_table("A", 1_000);
        let cls = Classification::from_classes(vec![
            QueryClass::read(0, [a], 0.8),
            QueryClass::read(1, [a], 0.2),
        ])
        .unwrap();
        let cluster = ClusterSpec::homogeneous(1);
        let alloc = Allocation::full_replication(&cls, &cluster);
        // Light arrivals first each millisecond so the queue holds
        // light work when heavy requests arrive.
        let mut reqs = Vec::new();
        for i in 0..300 {
            let t = i as f64 * 0.05;
            reqs.push(Request {
                class: ClassId(1),
                kind: QueryKind::Read,
                service: 0.2,
                arrival: t,
            });
            reqs.push(Request {
                class: ClassId(0),
                kind: QueryKind::Read,
                service: 0.2,
                arrival: t + 0.02,
            });
        }
        let plan = FaultPlan::new(Vec::new(), 1).unwrap();
        let rcfg = ResilienceConfig {
            queue_cap: 6,
            overload: OverloadPolicy::ShedLowestWeight,
            ..Default::default()
        };
        let rep = run_open_resilient(
            &alloc,
            &cls,
            &cluster,
            &cat,
            &reqs,
            0.0,
            &SimConfig::default(),
            &plan,
            &FaultConfig::default(),
            &rcfg,
        );
        assert!(rep.conserved());
        assert!(rep.shed_victims > 0, "heavy arrivals must evict light work");
        assert!(
            rep.per_class_completed[0] > rep.per_class_completed[1],
            "the heavy class must complete more than the light one: {:?}",
            rep.per_class_completed
        );
    }

    #[test]
    fn brownout_discounts_instead_of_shedding() {
        let (cat, cls, _) = workload();
        let cluster = ClusterSpec::homogeneous(2);
        let alloc = Allocation::full_replication(&cls, &cluster);
        let reqs = read_burst(600, 0.05, 0.2, 0.0);
        let plan = FaultPlan::new(Vec::new(), 2).unwrap();
        let mk = |overload| ResilienceConfig {
            queue_cap: 8,
            overload,
            brownout_discount: 0.25,
            ..Default::default()
        };
        let brown = run_open_resilient(
            &alloc,
            &cls,
            &cluster,
            &cat,
            &reqs,
            0.0,
            &SimConfig::default(),
            &plan,
            &FaultConfig::default(),
            &mk(OverloadPolicy::Brownout),
        );
        let reject = run_open_resilient(
            &alloc,
            &cls,
            &cluster,
            &cat,
            &reqs,
            0.0,
            &SimConfig::default(),
            &plan,
            &FaultConfig::default(),
            &mk(OverloadPolicy::Reject),
        );
        assert!(brown.conserved() && reject.conserved());
        assert!(brown.browned_out > 0);
        assert!(
            brown.completed > reject.completed,
            "brownout trades fidelity for goodput: {} vs {}",
            brown.completed,
            reject.completed
        );
        assert!(brown.shed < reject.shed);
    }

    #[test]
    fn breaker_opens_under_timeouts_and_recloses_when_idle() {
        let (cat, cls, _) = workload();
        let cluster = ClusterSpec::homogeneous(2);
        let alloc = Allocation::full_replication(&cls, &cluster);
        // Phase 1: heavy overload forcing consecutive timeouts on both
        // backends; phase 2 (after a long gap): light traffic the
        // drained backends serve within deadline, so half-open probes
        // succeed and the breakers close.
        let mut reqs = read_burst(200, 0.02, 0.3, 0.0);
        reqs.extend(read_burst(20, 1.0, 0.05, 60.0));
        let plan = FaultPlan::new(Vec::new(), 2).unwrap();
        let rcfg = ResilienceConfig {
            deadline: 0.5,
            max_retries: 1,
            backoff_base: 0.1,
            backoff_cap: 0.5,
            breaker_failures: 3,
            breaker_cooldown: 2.0,
            half_open_probes: 2,
            ..Default::default()
        };
        let rep = run_open_resilient(
            &alloc,
            &cls,
            &cluster,
            &cat,
            &reqs,
            0.0,
            &SimConfig::default(),
            &plan,
            &FaultConfig::default(),
            &rcfg,
        );
        assert!(rep.conserved());
        assert!(rep.breaker_opens > 0, "consecutive timeouts must trip");
        assert!(rep.breaker_half_opens > 0, "cooldown must half-open");
        assert!(rep.breaker_closes > 0, "successful probes must re-close");
        // When both replicas were open-circuit the engine served anyway
        // instead of dropping (override or degraded fallback).
        assert_eq!(rep.lost, 0);
        // Phase-2 requests complete promptly.
        let late: Vec<f64> = rep
            .responses
            .iter()
            .filter(|&&(a, _)| a >= 60.0)
            .map(|&(_, r)| r)
            .collect();
        assert!(!late.is_empty());
    }

    #[test]
    fn crashes_with_deadlines_never_lose_or_double_count() {
        let (cat, cls, stream) = workload();
        let cluster = ClusterSpec::homogeneous(3);
        let alloc = greedy::allocate(&cls, &cat, &cluster);
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let reqs = stream.sample_poisson(150.0, 30.0, 0.0, &mut rng);
        let fic = FaultInjectionConfig {
            crashes: 2,
            ..Default::default()
        };
        let plan = FaultPlan::from_seed(5, 3, 30.0, &fic);
        let rcfg = ResilienceConfig {
            deadline: 2.0,
            max_retries: 3,
            jitter: 0.25,
            seed: 9,
            queue_cap: 32,
            overload: OverloadPolicy::Reject,
            breaker_failures: 4,
            breaker_cooldown: 3.0,
            ..Default::default()
        };
        let run = || {
            run_open_resilient(
                &alloc,
                &cls,
                &cluster,
                &cat,
                &reqs,
                0.0,
                &SimConfig::default(),
                &plan,
                &FaultConfig::default(),
                &rcfg,
            )
        };
        let a = run();
        let b = run();
        assert!(a.conserved(), "conservation under crashes + deadlines");
        assert_eq!(a.lost, 0);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.shed, b.shed);
        assert_eq!(a.timed_out, b.timed_out);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.breaker_opens, b.breaker_opens);
        for (x, y) in a.responses.iter().zip(&b.responses) {
            assert_eq!(x.1.to_bits(), y.1.to_bits());
        }
        for (x, y) in a.busy.iter().zip(&b.busy) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn env_overrides_parse_known_keys() {
        // Serialize against other env-touching tests by using unique
        // keys only set here.
        std::env::set_var("QCPA_DEADLINE", "2.5");
        std::env::set_var("QCPA_RETRIES", "7");
        std::env::set_var("QCPA_OVERLOAD", "brownout");
        std::env::set_var("QCPA_QUEUE_CAP", "17");
        let cfg = ResilienceConfig::from_env();
        std::env::remove_var("QCPA_DEADLINE");
        std::env::remove_var("QCPA_RETRIES");
        std::env::remove_var("QCPA_OVERLOAD");
        std::env::remove_var("QCPA_QUEUE_CAP");
        assert_eq!(cfg.deadline, 2.5);
        assert_eq!(cfg.max_retries, 7);
        assert_eq!(cfg.overload, OverloadPolicy::Brownout);
        assert_eq!(cfg.queue_cap, 17);
        assert_eq!(
            OverloadPolicy::parse("SHED"),
            Some(OverloadPolicy::ShedLowestWeight)
        );
        assert_eq!(OverloadPolicy::parse("nope"), None);
    }
}
