//! Sharded open-loop runs: partition the cluster into independent
//! backend components and simulate them on [`qcpa_par`] workers.
//!
//! Two backends interact in [`crate::engine::run_open`] only if some
//! query class can touch both — a read routed between them, or an
//! update fanned out across them. Union-find over every class's target
//! sets therefore splits the cluster into **connected components**
//! whose simulations are completely independent: a request only ever
//! probes and advances the release times of its own component.
//!
//! [`run_open_sharded`] exploits that:
//!
//! 1. classes (and with them requests) are assigned to components;
//! 2. each component replays *its* request subsequence through the
//!    same [`crate::engine`] hot path, on a [`qcpa_par::Pool`] of up to
//!    `shards` workers (`QCPA_SIM_SHARDS` via [`shards_from_env`]);
//! 3. the per-request outcomes are merged back **by original arrival
//!    index** and the report's histograms/statistics are rebuilt in
//!    that global order.
//!
//! The merge contract makes the result *bit-identical* to the
//! single-threaded [`crate::engine::run_open`] at every worker count:
//! outcome values are unchanged (a component's release times never
//! depend on another component's requests), and every order-sensitive
//! f64 accumulation — histogram sums, the mean, per-backend busy —
//! replays in the exact sequence the unsharded loop used.
//! `tests/sim_equivalence.rs` holds that gate across shard counts and
//! `QCPA_THREADS`.
//!
//! A workload whose class graph is one component (e.g. any class
//! eligible on every backend) degenerates to the plain engine run —
//! sharding never changes results, it only buys wall-clock when the
//! allocation actually decomposes.

use qcpa_core::allocation::Allocation;
use qcpa_core::classify::Classification;
use qcpa_core::cluster::ClusterSpec;
use qcpa_core::fragment::Catalog;
use qcpa_core::journal::QueryKind;

use crate::engine::{finish_open_report, open_loop_core, CoreOutcome, OpenReport, SimConfig};
use crate::queue::QueueKind;
use crate::request::Request;
use crate::scheduler::Scheduler;
use crate::service::ServiceProfile;

/// Reads `QCPA_SIM_SHARDS`: the maximum number of parallel workers a
/// sharded run may use. Unset, unparsable, or `0` means 1 (serial).
#[must_use]
pub fn shards_from_env() -> usize {
    std::env::var("QCPA_SIM_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&s| s > 0)
        .unwrap_or(1)
}

/// Union-find with path halving; union by smaller root so component
/// representatives are the lowest backend index they contain.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// The connected components of the backend-interaction graph under
/// `scheduler`'s routing tables: `component[b]` is a dense id in
/// `0..n_components`, numbered in order of lowest member backend.
/// Classes whose targets span several backends weld them together;
/// backends no class touches each form a singleton.
#[must_use]
pub fn backend_components(scheduler: &Scheduler, cls: &Classification, n: usize) -> Vec<usize> {
    let mut uf = UnionFind::new(n);
    for c in &cls.classes {
        let weld = |uf: &mut UnionFind, targets: &[usize]| {
            for w in targets.windows(2) {
                uf.union(w[0], w[1]);
            }
        };
        match c.kind {
            QueryKind::Read => {
                weld(&mut uf, scheduler.read_targets(c.id));
                // Degraded routing may fall back to any capable backend;
                // welding the superset keeps the split conservative.
                weld(&mut uf, scheduler.capable_read_targets(c.id));
            }
            QueryKind::Update => weld(&mut uf, scheduler.route_update(c.id)),
        }
    }
    let mut component = vec![usize::MAX; n];
    let mut next = 0usize;
    for b in 0..n {
        let root = uf.find(b);
        if component[root] == usize::MAX {
            component[root] = next;
            next += 1;
        }
        component[b] = component[root];
    }
    component
}

/// [`crate::engine::run_open`] over backend components on up to
/// `shards` [`qcpa_par`] workers — bit-identical to the unsharded run
/// (see the module docs for the merge contract). Tracing is not
/// supported here; use the unsharded [`crate::engine::run_open_traced`]
/// when a trace is wanted.
#[allow(clippy::too_many_arguments)]
pub fn run_open_sharded(
    alloc: &Allocation,
    cls: &Classification,
    cluster: &ClusterSpec,
    catalog: &Catalog,
    requests: &[Request],
    warmup_backlog: f64,
    cfg: &SimConfig,
    shards: usize,
) -> OpenReport {
    let _span = qcpa_obs::span("sim", "run_open_sharded");
    let scheduler = Scheduler::new(alloc, cls);
    let profile = ServiceProfile::new(alloc, cluster, catalog, cfg.locality);
    let n = cluster.len();
    let kind = QueueKind::from_env();

    let component = backend_components(&scheduler, cls, n);
    let n_components = component.iter().copied().max().map_or(0, |m| m + 1);

    // One component (or a degenerate cluster): the split buys nothing.
    if n_components <= 1 {
        let (outcomes, busy) = open_loop_core(
            &scheduler,
            &profile,
            n,
            requests,
            warmup_backlog,
            cfg,
            kind,
            None,
        );
        return finish_open_report(requests, &outcomes, busy);
    }

    // A class's component is the component of any of its targets (they
    // are all welded together). Classes with no targets at all route
    // nowhere in the engine, so their requests are dropped the same way
    // the unsharded loop drops them: no outcome, no state change.
    let class_comp: Vec<Option<usize>> = cls
        .classes
        .iter()
        .map(|c| {
            let targets = match c.kind {
                QueryKind::Read => scheduler.read_targets(c.id),
                QueryKind::Update => scheduler.route_update(c.id),
            };
            targets.first().map(|&b| component[b])
        })
        .collect();

    // Partition the arrival sequence per component, remembering each
    // request's original index for the merge.
    let mut shard_reqs: Vec<Vec<Request>> = vec![Vec::new(); n_components];
    let mut shard_orig: Vec<Vec<u32>> = vec![Vec::new(); n_components];
    for (i, r) in requests.iter().enumerate() {
        if let Some(j) = class_comp.get(r.class.idx()).copied().flatten() {
            shard_reqs[j].push(*r);
            shard_orig[j].push(i as u32);
        }
    }

    // Simulate each component independently. Results are slotted by
    // component index, so the outcome is identical at any worker count.
    let pool = qcpa_par::Pool::with_workers(shards.max(1).min(n_components));
    let per_shard: Vec<(Vec<CoreOutcome>, Vec<f64>)> = pool.map(n_components, |j| {
        open_loop_core(
            &scheduler,
            &profile,
            n,
            &shard_reqs[j],
            warmup_backlog,
            cfg,
            kind,
            None,
        )
    });

    // Merge outcomes back into global arrival order and re-key them by
    // original request index; merge busy from each backend's owning
    // component (the only one that ever dispatched to it).
    let mut merged: Vec<CoreOutcome> =
        Vec::with_capacity(per_shard.iter().map(|(o, _)| o.len()).sum());
    for (j, (outcomes, _)) in per_shard.iter().enumerate() {
        merged.extend(outcomes.iter().map(|o| CoreOutcome {
            req: shard_orig[j][o.req as usize],
            ..*o
        }));
    }
    merged.sort_unstable_by_key(|o| o.req);
    let mut busy = vec![0.0f64; n];
    for (b, busy_b) in busy.iter_mut().enumerate() {
        *busy_b = per_shard[component[b]].1[b];
    }
    finish_open_report(requests, &merged, busy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_open;
    use crate::request::RequestStream;
    use qcpa_core::classify::QueryClass;
    use qcpa_core::greedy;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Two disjoint table groups → two components under a greedy
    /// allocation that keeps them apart.
    fn disjoint_setup() -> (Catalog, Classification, RequestStream) {
        let mut cat = Catalog::new();
        let a = cat.add_table("A", 4_000);
        let b = cat.add_table("B", 4_000);
        let c = cat.add_table("C", 4_000);
        let d = cat.add_table("D", 4_000);
        let cls = Classification::from_classes(vec![
            QueryClass::read(0, [a], 0.3),
            QueryClass::update(1, [b], 0.2),
            QueryClass::read(2, [c], 0.3),
            QueryClass::update(3, [d], 0.2),
        ])
        .unwrap();
        let stream = RequestStream::new(
            vec![30.0, 20.0, 30.0, 20.0],
            vec![
                QueryKind::Read,
                QueryKind::Update,
                QueryKind::Read,
                QueryKind::Update,
            ],
            vec![0.01; 4],
        );
        (cat, cls, stream)
    }

    fn assert_reports_bit_identical(a: &OpenReport, b: &OpenReport) {
        assert_eq!(a.responses.len(), b.responses.len());
        for (x, y) in a.responses.iter().zip(&b.responses) {
            assert_eq!(x.0.to_bits(), y.0.to_bits());
            assert_eq!(x.1.to_bits(), y.1.to_bits());
        }
        assert_eq!(a.mean_response.to_bits(), b.mean_response.to_bits());
        assert_eq!(a.p95_response.to_bits(), b.p95_response.to_bits());
        for (x, y) in a.busy.iter().zip(&b.busy) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in a.utilization.iter().zip(&b.utilization) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn sharded_run_matches_unsharded_bit_for_bit() {
        let (cat, cls, stream) = disjoint_setup();
        let cluster = ClusterSpec::homogeneous(4);
        let alloc = greedy::allocate(&cls, &cat, &cluster);
        let scheduler = Scheduler::new(&alloc, &cls);
        let comps = backend_components(&scheduler, &cls, 4);
        let n_comp = comps.iter().max().unwrap() + 1;
        assert!(n_comp >= 2, "setup must decompose: components {comps:?}");

        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let reqs = stream.sample_poisson(80.0, 30.0, 0.1, &mut rng);
        let cfg = SimConfig::default();
        let plain = run_open(&alloc, &cls, &cluster, &cat, &reqs, 0.0, &cfg);
        for shards in [1usize, 2, 4] {
            let sharded = run_open_sharded(&alloc, &cls, &cluster, &cat, &reqs, 0.0, &cfg, shards);
            assert_reports_bit_identical(&plain, &sharded);
        }
    }

    #[test]
    fn full_replication_is_one_component() {
        let (cat, cls, _) = disjoint_setup();
        let cluster = ClusterSpec::homogeneous(3);
        let full = Allocation::full_replication(&cls, &cluster);
        let scheduler = Scheduler::new(&full, &cls);
        let comps = backend_components(&scheduler, &cls, 3);
        assert!(comps.iter().all(|&c| c == 0), "{comps:?}");
        let _ = cat;
    }

    #[test]
    fn shards_env_defaults_to_serial() {
        // Not manipulating the environment (tests run concurrently):
        // the parse contract is pinned on the helper's fallback.
        assert!(shards_from_env() >= 1);
    }
}
