//! Sharded open-loop runs: partition the cluster into independent
//! backend components and simulate them on [`qcpa_par`] workers.
//!
//! Two backends interact in [`crate::engine::run_open`] only if some
//! query class can touch both — a read routed between them, or an
//! update fanned out across them. Union-find over every class's target
//! sets therefore splits the cluster into **connected components**
//! whose simulations are completely independent: a request only ever
//! probes and advances the release times of its own component.
//!
//! [`run_open_sharded`] exploits that:
//!
//! 1. classes (and with them requests) are assigned to components;
//! 2. each component replays *its* request subsequence through the
//!    same [`crate::engine`] hot path, on a [`qcpa_par::Pool`] of up to
//!    `shards` workers (`QCPA_SIM_SHARDS` via [`shards_from_env`]);
//! 3. the per-request outcomes are merged back **by original arrival
//!    index** and the report's histograms/statistics are rebuilt in
//!    that global order.
//!
//! The merge contract makes the result *bit-identical* to the
//! single-threaded [`crate::engine::run_open`] at every worker count:
//! outcome values are unchanged (a component's release times never
//! depend on another component's requests), and every order-sensitive
//! f64 accumulation — histogram sums, the mean, per-backend busy —
//! replays in the exact sequence the unsharded loop used.
//! `tests/sim_equivalence.rs` holds that gate across shard counts and
//! `QCPA_THREADS`.
//!
//! A workload whose class graph is one component (e.g. any class
//! eligible on every backend) degenerates to the plain engine run —
//! sharding never changes results, it only buys wall-clock when the
//! allocation actually decomposes.

use qcpa_core::allocation::Allocation;
use qcpa_core::classify::Classification;
use qcpa_core::cluster::ClusterSpec;
use qcpa_core::fragment::Catalog;
use qcpa_core::journal::QueryKind;

use crate::engine::{finish_open_report, open_loop_core, CoreOutcome, OpenReport, SimConfig};
use crate::fault::{
    assemble_fault_report, fault_core, run_open_faults, FaultConfig, FaultCore, FaultEvent,
    FaultPlan, FaultReport,
};
use crate::queue::QueueKind;
use crate::request::Request;
use crate::resilience::{
    assemble_resilience_report, resilient_core, run_open_resilient, RCore, RFinal,
    ResilienceConfig, ResilienceReport, Tally,
};
use crate::scheduler::Scheduler;
use crate::service::ServiceProfile;

/// Reads `QCPA_SIM_SHARDS`: the maximum number of parallel workers a
/// sharded run may use. Unset, unparsable, or `0` means 1 (serial).
#[must_use]
pub fn shards_from_env() -> usize {
    std::env::var("QCPA_SIM_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&s| s > 0)
        .unwrap_or(1)
}

/// Union-find with path halving; union by smaller root so component
/// representatives are the lowest backend index they contain.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// The connected components of the backend-interaction graph under
/// `scheduler`'s routing tables: `component[b]` is a dense id in
/// `0..n_components`, numbered in order of lowest member backend.
/// Classes whose targets span several backends weld them together;
/// backends no class touches each form a singleton.
#[must_use]
pub fn backend_components(scheduler: &Scheduler, cls: &Classification, n: usize) -> Vec<usize> {
    let mut uf = UnionFind::new(n);
    for c in &cls.classes {
        let weld = |uf: &mut UnionFind, targets: &[usize]| {
            for w in targets.windows(2) {
                uf.union(w[0], w[1]);
            }
        };
        match c.kind {
            QueryKind::Read => {
                weld(&mut uf, scheduler.read_targets(c.id));
                // Degraded routing may fall back to any capable backend;
                // welding the superset keeps the split conservative.
                weld(&mut uf, scheduler.capable_read_targets(c.id));
            }
            QueryKind::Update => weld(&mut uf, scheduler.route_update(c.id)),
        }
    }
    let mut component = vec![usize::MAX; n];
    let mut next = 0usize;
    for b in 0..n {
        let root = uf.find(b);
        if component[root] == usize::MAX {
            component[root] = next;
            next += 1;
        }
        component[b] = component[root];
    }
    component
}

/// [`crate::engine::run_open`] over backend components on up to
/// `shards` [`qcpa_par`] workers — bit-identical to the unsharded run
/// (see the module docs for the merge contract). Tracing is not
/// supported here; use the unsharded [`crate::engine::run_open_traced`]
/// when a trace is wanted.
#[allow(clippy::too_many_arguments)]
pub fn run_open_sharded(
    alloc: &Allocation,
    cls: &Classification,
    cluster: &ClusterSpec,
    catalog: &Catalog,
    requests: &[Request],
    warmup_backlog: f64,
    cfg: &SimConfig,
    shards: usize,
) -> OpenReport {
    let _span = qcpa_obs::span("sim", "run_open_sharded");
    let scheduler = Scheduler::new(alloc, cls);
    let profile = ServiceProfile::new(alloc, cluster, catalog, cfg.locality);
    let n = cluster.len();
    let kind = QueueKind::from_env();

    let component = backend_components(&scheduler, cls, n);
    let n_components = component.iter().copied().max().map_or(0, |m| m + 1);

    // One component (or a degenerate cluster): the split buys nothing.
    if n_components <= 1 {
        let (outcomes, busy) = open_loop_core(
            &scheduler,
            &profile,
            n,
            requests,
            warmup_backlog,
            cfg,
            kind,
            None,
        );
        return finish_open_report(requests, &outcomes, busy);
    }

    // A class's component is the component of any of its targets (they
    // are all welded together). Classes with no targets at all route
    // nowhere in the engine, so their requests are dropped the same way
    // the unsharded loop drops them: no outcome, no state change.
    let class_comp: Vec<Option<usize>> = cls
        .classes
        .iter()
        .map(|c| {
            let targets = match c.kind {
                QueryKind::Read => scheduler.read_targets(c.id),
                QueryKind::Update => scheduler.route_update(c.id),
            };
            targets.first().map(|&b| component[b])
        })
        .collect();

    // Partition the arrival sequence per component, remembering each
    // request's original index for the merge.
    let mut shard_reqs: Vec<Vec<Request>> = vec![Vec::new(); n_components];
    let mut shard_orig: Vec<Vec<u32>> = vec![Vec::new(); n_components];
    for (i, r) in requests.iter().enumerate() {
        if let Some(j) = class_comp.get(r.class.idx()).copied().flatten() {
            shard_reqs[j].push(*r);
            shard_orig[j].push(i as u32);
        }
    }

    // Simulate each component independently. Results are slotted by
    // component index, so the outcome is identical at any worker count.
    let pool = qcpa_par::Pool::with_workers(shards.max(1).min(n_components));
    let per_shard: Vec<(Vec<CoreOutcome>, Vec<f64>)> = pool.map(n_components, |j| {
        open_loop_core(
            &scheduler,
            &profile,
            n,
            &shard_reqs[j],
            warmup_backlog,
            cfg,
            kind,
            None,
        )
    });

    // Merge outcomes back into global arrival order and re-key them by
    // original request index; merge busy from each backend's owning
    // component (the only one that ever dispatched to it).
    let mut merged: Vec<CoreOutcome> =
        Vec::with_capacity(per_shard.iter().map(|(o, _)| o.len()).sum());
    for (j, (outcomes, _)) in per_shard.iter().enumerate() {
        merged.extend(outcomes.iter().map(|o| CoreOutcome {
            req: shard_orig[j][o.req as usize],
            ..*o
        }));
    }
    merged.sort_unstable_by_key(|o| o.req);
    let mut busy = vec![0.0f64; n];
    for (b, busy_b) in busy.iter_mut().enumerate() {
        *busy_b = per_shard[component[b]].1[b];
    }
    finish_open_report(requests, &merged, busy)
}

/// [`backend_components`] with the fault plan welded into the coupling
/// graph: beyond the class-routing edges, every pair of backends coupled
/// by a fault event lands in one component — members of a partition
/// side (they are cut and healed as one routing change) and backends
/// crashed at the same instant (a correlated zone failure). Repair
/// source/target coupling is handled separately: plans that can trigger
/// an online repair mutate the allocation globally, so the sharded
/// drivers detect them with [`plan_may_repair`] and fall back to the
/// unsharded engine instead of welding everything into one component.
#[must_use]
pub fn fault_components(
    scheduler: &Scheduler,
    cls: &Classification,
    n: usize,
    plan: &FaultPlan,
) -> Vec<usize> {
    let mut uf = UnionFind::new(n);
    for c in &cls.classes {
        let weld = |uf: &mut UnionFind, targets: &[usize]| {
            for w in targets.windows(2) {
                uf.union(w[0], w[1]);
            }
        };
        match c.kind {
            QueryKind::Read => {
                weld(&mut uf, scheduler.read_targets(c.id));
                weld(&mut uf, scheduler.capable_read_targets(c.id));
            }
            QueryKind::Update => weld(&mut uf, scheduler.route_update(c.id)),
        }
    }
    for side in plan.partition_sides() {
        for w in side.windows(2) {
            uf.union(w[0], w[1]);
        }
    }
    // Correlated crashes: zone failures draw one instant for every
    // member, so identical at-bits mark the zone's members.
    let crashes: Vec<(u64, usize)> = plan
        .events()
        .iter()
        .filter_map(|e| match *e {
            FaultEvent::Crash { backend, at } => Some((at.to_bits(), backend)),
            _ => None,
        })
        .collect();
    for (i, &(at, b)) in crashes.iter().enumerate() {
        for &(at2, b2) in &crashes[i + 1..] {
            if at == at2 {
                uf.union(b, b2);
            }
        }
    }
    let mut component = vec![usize::MAX; n];
    let mut next = 0usize;
    for b in 0..n {
        let root = uf.find(b);
        if component[root] == usize::MAX {
            component[root] = next;
            next += 1;
        }
        component[b] = component[root];
    }
    component
}

/// Whether replaying `plan` against the pristine allocation could ever
/// trigger an online k-safety repair (or an outright reroute failure).
/// Until the first repair the fault engines never mutate the
/// allocation, so the pre-check is exact: after each routing-changing
/// event the routable set either still serves every weighted class
/// ([`Scheduler::for_survivors`] is `Some`) or the engine would repair.
/// Repairs couple every surviving backend through the re-replicated
/// fragments, so the sharded drivers fall back to the unsharded engine
/// when this returns true.
#[must_use]
pub fn plan_may_repair(
    alloc: &Allocation,
    cls: &Classification,
    cluster: &ClusterSpec,
    plan: &FaultPlan,
) -> bool {
    let n = alloc.n_backends();
    let mut alive = vec![true; n];
    let mut cut = vec![false; n];
    for e in plan.events() {
        let reroutes = match *e {
            FaultEvent::Crash { backend, .. } => {
                alive[backend] = false;
                true
            }
            FaultEvent::Recover { backend, .. } => {
                alive[backend] = true;
                true
            }
            FaultEvent::Partition { id, .. } => {
                for &m in plan.partition_side(id) {
                    cut[m] = true;
                }
                true
            }
            FaultEvent::Heal { id, .. } => {
                for &m in plan.partition_side(id) {
                    cut[m] = false;
                }
                true
            }
            FaultEvent::Degrade { .. } | FaultEvent::Restore { .. } => false,
        };
        if !reroutes {
            continue;
        }
        let failed: Vec<usize> = (0..n).filter(|&b| !alive[b] || cut[b]).collect();
        if failed.is_empty() {
            continue;
        }
        if failed.len() == n || Scheduler::for_survivors(alloc, cls, cluster, &failed).is_none() {
            return true;
        }
    }
    false
}

/// Per-component request split shared by the fault-aware drivers:
/// `(class → component, per-component requests, original indices)`.
/// `None` in the class map marks a class with no routing targets.
type RequestSplit = (Vec<Option<usize>>, Vec<Vec<Request>>, Vec<Vec<u32>>);

fn split_requests(
    scheduler: &Scheduler,
    cls: &Classification,
    component: &[usize],
    n_components: usize,
    requests: &[Request],
) -> RequestSplit {
    let class_comp: Vec<Option<usize>> = cls
        .classes
        .iter()
        .map(|c| {
            let targets = match c.kind {
                QueryKind::Read => scheduler.read_targets(c.id),
                QueryKind::Update => scheduler.route_update(c.id),
            };
            targets.first().map(|&b| component[b])
        })
        .collect();
    let mut shard_reqs: Vec<Vec<Request>> = vec![Vec::new(); n_components];
    let mut shard_orig: Vec<Vec<u32>> = vec![Vec::new(); n_components];
    for (i, r) in requests.iter().enumerate() {
        if let Some(j) = class_comp.get(r.class.idx()).copied().flatten() {
            shard_reqs[j].push(*r);
            shard_orig[j].push(i as u32);
        }
    }
    (class_comp, shard_reqs, shard_orig)
}

/// [`run_open_faults`] over fault-welded backend components on up to
/// `shards` [`qcpa_par`] workers — bit-identical to the unsharded run.
/// Every component replays the *full* event schedule (events are cheap
/// and keep the per-component alive/cut/slow trajectories exactly the
/// unsharded ones) but only its own arrivals. Falls back to the
/// unsharded engine when the plan could trigger an online repair, when
/// some class routes nowhere, or when the graph is one component.
#[allow(clippy::too_many_arguments)]
pub fn run_open_faults_sharded(
    alloc: &Allocation,
    cls: &Classification,
    cluster: &ClusterSpec,
    catalog: &Catalog,
    requests: &[Request],
    warmup_backlog: f64,
    cfg: &SimConfig,
    plan: &FaultPlan,
    fcfg: &FaultConfig,
    shards: usize,
) -> FaultReport {
    let _span = qcpa_obs::span("sim", "run_open_faults_sharded");
    let n = cluster.len();
    let scheduler = Scheduler::new(alloc, cls);
    let component = fault_components(&scheduler, cls, n, plan);
    let n_components = component.iter().copied().max().map_or(0, |m| m + 1);
    let (class_comp, shard_reqs, shard_orig) =
        split_requests(&scheduler, cls, &component, n_components.max(1), requests);
    if n_components <= 1
        || class_comp.iter().any(|c| c.is_none())
        || plan_may_repair(alloc, cls, cluster, plan)
    {
        return run_open_faults(
            alloc,
            cls,
            cluster,
            catalog,
            requests,
            warmup_backlog,
            cfg,
            plan,
            fcfg,
        );
    }

    let pool = qcpa_par::Pool::with_workers(shards.max(1).min(n_components));
    let per_shard: Vec<FaultCore> = pool.map(n_components, |j| {
        fault_core(
            alloc,
            cls,
            cluster,
            catalog,
            &shard_reqs[j],
            warmup_backlog,
            cfg,
            plan,
            fcfg,
            None,
            false,
        )
    });

    // Merge: completions re-keyed by original arrival index; busy from
    // each backend's owning component; event stats from component 0
    // (identical everywhere) with the request-driven re-dispatch count
    // summed.
    let mut completions: Vec<(f64, Option<f64>)> =
        requests.iter().map(|r| (r.arrival, None)).collect();
    let mut redispatched = 0usize;
    for (j, core) in per_shard.iter().enumerate() {
        for (k, &c) in core.completions.iter().enumerate() {
            completions[shard_orig[j][k] as usize] = c;
        }
        redispatched += core.stats.redispatched;
        debug_assert_eq!(
            core.stats.tally.repairs, 0,
            "plans that may repair must fall back to the unsharded engine"
        );
    }
    let mut busy = vec![0.0f64; n];
    for (b, busy_b) in busy.iter_mut().enumerate() {
        *busy_b = per_shard[component[b]].busy[b];
    }
    let mut stats = per_shard[0].stats.clone();
    stats.redispatched = redispatched;
    assemble_fault_report(
        requests,
        FaultCore {
            completions,
            busy,
            stats,
        },
    )
}

/// [`run_open_resilient`] over fault-welded backend components — the
/// sharded counterpart of [`run_open_faults_sharded`] for the full
/// resilience runtime. Backend-local breaker state is exact in the
/// component that owns the backend (it sees all fault events plus
/// every dispatch to it), retry jitter is keyed on global request ids,
/// and the per-request tallies sum — so the merge is bit-identical to
/// the unsharded run. Same fallbacks as the fault driver.
#[allow(clippy::too_many_arguments)]
pub fn run_open_resilient_sharded(
    alloc: &Allocation,
    cls: &Classification,
    cluster: &ClusterSpec,
    catalog: &Catalog,
    requests: &[Request],
    warmup_backlog: f64,
    cfg: &SimConfig,
    plan: &FaultPlan,
    fcfg: &FaultConfig,
    rcfg: &ResilienceConfig,
    shards: usize,
) -> ResilienceReport {
    let _span = qcpa_obs::span("sim", "run_open_resilient_sharded");
    let n = cluster.len();
    let scheduler = Scheduler::new(alloc, cls);
    let component = fault_components(&scheduler, cls, n, plan);
    let n_components = component.iter().copied().max().map_or(0, |m| m + 1);
    let (class_comp, shard_reqs, shard_orig) =
        split_requests(&scheduler, cls, &component, n_components.max(1), requests);
    if n_components <= 1
        || class_comp.iter().any(|c| c.is_none())
        || plan_may_repair(alloc, cls, cluster, plan)
    {
        return run_open_resilient(
            alloc,
            cls,
            cluster,
            catalog,
            requests,
            warmup_backlog,
            cfg,
            plan,
            fcfg,
            rcfg,
        );
    }

    let shard_gids: Vec<Vec<usize>> = shard_orig
        .iter()
        .map(|orig| orig.iter().map(|&i| i as usize).collect())
        .collect();
    let pool = qcpa_par::Pool::with_workers(shards.max(1).min(n_components));
    let per_shard: Vec<RCore> = pool.map(n_components, |j| {
        resilient_core(
            alloc,
            cls,
            cluster,
            catalog,
            &shard_reqs[j],
            Some(&shard_gids[j]),
            warmup_backlog,
            cfg,
            plan,
            fcfg,
            rcfg,
            None,
            false,
        )
    });

    // Merge: terminal states re-keyed by original index (every request
    // is in exactly one component, so the placeholder is always
    // overwritten); busy and breaker columns from each backend's owner;
    // request-driven tallies sum; event stats from component 0.
    let mut finals: Vec<_> = requests
        .iter()
        .map(|r| (r.arrival, r.class, RFinal::Lost))
        .collect();
    let mut tally = Tally::default();
    for (j, core) in per_shard.iter().enumerate() {
        for (k, &f) in core.finals.iter().enumerate() {
            finals[shard_orig[j][k] as usize] = f;
        }
        tally.absorb(&core.tally);
        debug_assert_eq!(
            core.stats.tally.repairs, 0,
            "plans that may repair must fall back to the unsharded engine"
        );
    }
    let owner = |b: usize| &per_shard[component[b]];
    let busy: Vec<f64> = (0..n).map(|b| owner(b).busy[b]).collect();
    let breaker_opens: Vec<usize> = (0..n).map(|b| owner(b).breaker_opens[b]).collect();
    let breaker_half_opens: Vec<usize> = (0..n).map(|b| owner(b).breaker_half_opens[b]).collect();
    let breaker_closes: Vec<usize> = (0..n).map(|b| owner(b).breaker_closes[b]).collect();
    let stats = per_shard[0].stats.clone();
    assemble_resilience_report(
        requests,
        cls.len(),
        RCore {
            finals,
            busy,
            tally,
            breaker_opens,
            breaker_half_opens,
            breaker_closes,
            stats,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_open;
    use crate::request::RequestStream;
    use qcpa_core::classify::QueryClass;
    use qcpa_core::greedy;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Two disjoint table groups → two components under a greedy
    /// allocation that keeps them apart.
    fn disjoint_setup() -> (Catalog, Classification, RequestStream) {
        let mut cat = Catalog::new();
        let a = cat.add_table("A", 4_000);
        let b = cat.add_table("B", 4_000);
        let c = cat.add_table("C", 4_000);
        let d = cat.add_table("D", 4_000);
        let cls = Classification::from_classes(vec![
            QueryClass::read(0, [a], 0.3),
            QueryClass::update(1, [b], 0.2),
            QueryClass::read(2, [c], 0.3),
            QueryClass::update(3, [d], 0.2),
        ])
        .unwrap();
        let stream = RequestStream::new(
            vec![30.0, 20.0, 30.0, 20.0],
            vec![
                QueryKind::Read,
                QueryKind::Update,
                QueryKind::Read,
                QueryKind::Update,
            ],
            vec![0.01; 4],
        );
        (cat, cls, stream)
    }

    fn assert_reports_bit_identical(a: &OpenReport, b: &OpenReport) {
        assert_eq!(a.responses.len(), b.responses.len());
        for (x, y) in a.responses.iter().zip(&b.responses) {
            assert_eq!(x.0.to_bits(), y.0.to_bits());
            assert_eq!(x.1.to_bits(), y.1.to_bits());
        }
        assert_eq!(a.mean_response.to_bits(), b.mean_response.to_bits());
        assert_eq!(a.p95_response.to_bits(), b.p95_response.to_bits());
        for (x, y) in a.busy.iter().zip(&b.busy) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in a.utilization.iter().zip(&b.utilization) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn sharded_run_matches_unsharded_bit_for_bit() {
        let (cat, cls, stream) = disjoint_setup();
        let cluster = ClusterSpec::homogeneous(4);
        let alloc = greedy::allocate(&cls, &cat, &cluster);
        let scheduler = Scheduler::new(&alloc, &cls);
        let comps = backend_components(&scheduler, &cls, 4);
        let n_comp = comps.iter().max().unwrap() + 1;
        assert!(n_comp >= 2, "setup must decompose: components {comps:?}");

        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let reqs = stream.sample_poisson(80.0, 30.0, 0.1, &mut rng);
        let cfg = SimConfig::default();
        let plain = run_open(&alloc, &cls, &cluster, &cat, &reqs, 0.0, &cfg);
        for shards in [1usize, 2, 4] {
            let sharded = run_open_sharded(&alloc, &cls, &cluster, &cat, &reqs, 0.0, &cfg, shards);
            assert_reports_bit_identical(&plain, &sharded);
        }
    }

    #[test]
    fn sharded_fault_engines_match_unsharded_bit_for_bit() {
        use crate::fault::LayeredFaultConfig;

        let (cat, cls, stream) = disjoint_setup();
        let cluster = ClusterSpec::homogeneous(4);
        let alloc = greedy::allocate(&cls, &cat, &cluster);
        let cfg = SimConfig::default();
        let fcfg = FaultConfig::default();
        let rcfg = ResilienceConfig::default();
        let lcfg = LayeredFaultConfig {
            gray: 2,
            partitions: 1,
            gray_duration: 4.0,
            partition_duration: 4.0,
            ..LayeredFaultConfig::default()
        };

        let mut nontrivial = 0usize;
        for seed in 0..10u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let reqs = stream.sample_poisson(80.0, 20.0, 0.1, &mut rng);
            let plan = FaultPlan::from_seed_layered(seed, 4, 20.0, &lcfg);
            let scheduler = Scheduler::new(&alloc, &cls);
            let comps = fault_components(&scheduler, &cls, 4, &plan);
            let n_comp = comps.iter().max().unwrap() + 1;
            if n_comp >= 2 && !plan_may_repair(&alloc, &cls, &cluster, &plan) {
                nontrivial += 1;
            }

            let fr = crate::fault::run_open_faults(
                &alloc, &cls, &cluster, &cat, &reqs, 0.0, &cfg, &plan, &fcfg,
            );
            let rr = crate::resilience::run_open_resilient(
                &alloc, &cls, &cluster, &cat, &reqs, 0.0, &cfg, &plan, &fcfg, &rcfg,
            );
            for shards in [1usize, 2, 4] {
                let fs = run_open_faults_sharded(
                    &alloc, &cls, &cluster, &cat, &reqs, 0.0, &cfg, &plan, &fcfg, shards,
                );
                assert_eq!(fr.responses.len(), fs.responses.len());
                for (x, y) in fr.responses.iter().zip(&fs.responses) {
                    assert_eq!(x.0.to_bits(), y.0.to_bits(), "seed {seed} shards {shards}");
                    assert_eq!(x.1.to_bits(), y.1.to_bits());
                }
                assert_eq!(fr.lost, fs.lost);
                assert_eq!(fr.redispatched, fs.redispatched);
                assert_eq!(fr.gray_windows, fs.gray_windows);
                assert_eq!(fr.partitions, fs.partitions);
                for (x, y) in fr.busy.iter().zip(&fs.busy) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
                assert_eq!(fr.availability, fs.availability);

                let rs = run_open_resilient_sharded(
                    &alloc, &cls, &cluster, &cat, &reqs, 0.0, &cfg, &plan, &fcfg, &rcfg, shards,
                );
                assert_eq!(rr.responses.len(), rs.responses.len());
                for (x, y) in rr.responses.iter().zip(&rs.responses) {
                    assert_eq!(x.0.to_bits(), y.0.to_bits(), "seed {seed} shards {shards}");
                    assert_eq!(x.1.to_bits(), y.1.to_bits());
                }
                assert_eq!(rr.completed, rs.completed);
                assert_eq!(rr.shed, rs.shed);
                assert_eq!(rr.timed_out, rs.timed_out);
                assert_eq!(rr.lost, rs.lost);
                assert_eq!(rr.retries, rs.retries);
                assert_eq!(rr.breaker_opens, rs.breaker_opens);
                assert_eq!(rr.breaker_closes, rs.breaker_closes);
                for (x, y) in rr.busy.iter().zip(&rs.busy) {
                    assert_eq!(x.to_bits(), y.to_bits(), "seed {seed} shards {shards}");
                }
                assert_eq!(rr.availability, rs.availability);
            }
        }
        assert!(
            nontrivial >= 1,
            "at least one seed must exercise the genuinely sharded path"
        );
    }

    #[test]
    fn fault_components_weld_partition_sides_and_zones() {
        let (cat, cls, _) = disjoint_setup();
        let cluster = ClusterSpec::homogeneous(4);
        let alloc = greedy::allocate(&cls, &cat, &cluster);
        let scheduler = Scheduler::new(&alloc, &cls);
        let base = backend_components(&scheduler, &cls, 4);
        let n_base = base.iter().max().unwrap() + 1;
        assert!(n_base >= 2, "setup must decompose: {base:?}");
        // A partition side spanning two base components welds them.
        let (u, v) = (0..4)
            .flat_map(|a| (0..4).map(move |b| (a, b)))
            .find(|&(a, b)| base[a] != base[b])
            .unwrap();
        let side = if u < v { vec![u, v] } else { vec![v, u] };
        let plan = FaultPlan::with_partitions(
            vec![
                FaultEvent::Partition { id: 0, at: 1.0 },
                FaultEvent::Heal { id: 0, at: 2.0 },
            ],
            4,
            vec![side],
        )
        .unwrap();
        let welded = fault_components(&scheduler, &cls, 4, &plan);
        assert_eq!(welded[u], welded[v], "{welded:?}");
        // Co-crashed backends (same instant → zone failure) weld too.
        let plan = FaultPlan::new(
            vec![
                FaultEvent::Crash {
                    backend: u,
                    at: 1.5,
                },
                FaultEvent::Crash {
                    backend: v,
                    at: 1.5,
                },
                FaultEvent::Recover {
                    backend: u,
                    at: 3.0,
                    catchup_cost: 0.0,
                },
                FaultEvent::Recover {
                    backend: v,
                    at: 3.5,
                    catchup_cost: 0.0,
                },
            ],
            4,
        )
        .unwrap();
        let welded = fault_components(&scheduler, &cls, 4, &plan);
        assert_eq!(welded[u], welded[v], "{welded:?}");
        // An empty plan changes nothing.
        let empty = FaultPlan::new(Vec::new(), 4).unwrap();
        assert_eq!(fault_components(&scheduler, &cls, 4, &empty), base);
    }

    #[test]
    fn full_replication_is_one_component() {
        let (cat, cls, _) = disjoint_setup();
        let cluster = ClusterSpec::homogeneous(3);
        let full = Allocation::full_replication(&cls, &cluster);
        let scheduler = Scheduler::new(&full, &cls);
        let comps = backend_components(&scheduler, &cls, 3);
        assert!(comps.iter().all(|&c| c == 0), "{comps:?}");
        let _ = cat;
    }

    #[test]
    fn shards_env_defaults_to_serial() {
        // Not manipulating the environment (tests run concurrently):
        // the parse contract is pinned on the helper's fallback.
        assert!(shards_from_env() >= 1);
    }
}
