//! # qcpa-sim
//!
//! A discrete-event simulator of the CDBS processing model (Section 2):
//! a controller with one FIFO queue per backend, the
//! *least-pending-request-first* scheduler, and ROWA update fan-out.
//! Queries are atomic — each read runs entirely on one backend holding
//! all its data; each update runs on *every* backend holding any of its
//! data.
//!
//! This substitutes for the paper's physical 16-node cluster running
//! PostgreSQL/MySQL: throughput and speedup are determined by how the
//! allocation spreads query-class work over backends, which is exactly
//! what the simulation computes. Two drivers are provided:
//!
//! * [`engine::run_batch`] — the paper's throughput experiments: a fixed
//!   request batch is pushed through the scheduler; throughput is
//!   `requests / makespan` (Figures 4(a)–(i));
//! * [`engine::run_open`] — open-loop timed arrivals measuring response
//!   times, used by the autonomic-scaling experiments (Section 5).
//!
//! The optional [`service::LocalityModel`] reproduces the caching
//! effect the paper observes: backends storing a smaller share of the
//! database serve queries faster (better cache hit rates, less data to
//! move from disk), which is why partial replication beats full
//! replication even on read-only workloads.
//!
//! Every open-loop driver also has a `*_traced` variant taking
//! `Option<&mut qcpa_obs::Tracer>`: sampled requests are recorded as
//! causal span trees (queueing, per-leg service, retries, breaker and
//! fault transitions) that export to Perfetto via `qcpa_obs::perfetto`.
//! Sampling is deterministic and head-based, so tracing never perturbs
//! the simulated results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod baseline;
pub mod chaos;
pub mod engine;
pub mod fault;
pub mod queue;
pub mod request;
pub mod resilience;
pub mod scheduler;
pub mod service;
pub mod shard;

pub use arena::{LegArena, LegList, LegRef};
pub use chaos::{run_chaos, ChaosConfig, ChaosReport};
pub use engine::{
    run_batch, run_open, run_open_traced, BatchReport, OpenReport, SimConfig, UpdatePropagation,
};
pub use fault::{
    run_open_faults, run_open_faults_traced, FaultConfig, FaultEvent, FaultInjectionConfig,
    FaultPlan, FaultReport, InvalidFaultPlan, LayeredFaultConfig, RerouteError,
};
pub use queue::{BinaryHeapQueue, CalendarQueue, EventQueue, QueueKind, SimQueue};
pub use request::{Request, RequestStream};
pub use resilience::{
    run_open_resilient, run_open_resilient_traced, OverloadPolicy, ResilienceConfig,
    ResilienceReport,
};
pub use scheduler::Scheduler;
pub use service::{LocalityModel, ServiceProfile};
pub use shard::{
    backend_components, fault_components, plan_may_repair, run_open_faults_sharded,
    run_open_resilient_sharded, run_open_sharded,
};
