//! Generational leg arena: flat storage for per-request work units.
//!
//! The fault and resilience engines grow one leg record per dispatch,
//! and a request can be re-dispatched several times (crash re-queues,
//! retries). Storing those legs as a `Vec` inside every request makes
//! each request a separate heap allocation that reallocates as legs
//! arrive — millions of tiny allocations on the hot path. A
//! [`LegArena`] instead keeps *all* legs of a run in one flat `Vec` and
//! threads each request's legs through it as an intrusive singly-linked
//! list ([`LegList`]): pushing a leg is an amortized-O(1) append to the
//! shared buffer, and a request is just a 12-byte list head.
//!
//! References into the arena are **generational** ([`LegRef`]): the
//! arena stamps every reference with its current generation, and
//! [`LegArena::reset`] bumps the generation while clearing the storage,
//! so a stale reference held across runs is caught by a debug assertion
//! instead of silently reading another run's leg. Slots are never freed
//! individually — engines void legs in place and drop the whole arena
//! (or [`LegArena::reset`] it) at the end of a run, which is what makes
//! the flat layout safe.
//!
//! Iteration over a request's legs is forward, in insertion order —
//! exactly the order the engines' finalize scans and trace exporters
//! relied on when the legs were a `Vec`. "Last matching leg" queries
//! (`.rev().find(..)` on a `Vec`) become `.filter(..).last()` on the
//! forward iterator, which visits the same elements and returns the
//! same leg.

/// Sentinel for "no slot" in the intrusive links.
const NONE: u32 = u32::MAX;

/// A generational reference to one leg in a [`LegArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LegRef {
    slot: u32,
    generation: u32,
}

/// One request's chain of legs inside a [`LegArena`]: a 12-byte
/// `(head, tail, len)` triple instead of an owning `Vec`.
#[derive(Debug, Clone, Copy)]
pub struct LegList {
    head: u32,
    tail: u32,
    len: u32,
}

impl LegList {
    /// An empty chain.
    #[must_use]
    pub fn new() -> Self {
        LegList {
            head: NONE,
            tail: NONE,
            len: 0,
        }
    }

    /// Number of legs in the chain.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when no leg has been pushed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Default for LegList {
    fn default() -> Self {
        LegList::new()
    }
}

struct Slot<L> {
    leg: L,
    next: u32,
}

/// Flat generational storage for every leg of one simulation run. See
/// the module docs for the layout and invalidation contract.
pub struct LegArena<L> {
    slots: Vec<Slot<L>>,
    generation: u32,
}

impl<L> LegArena<L> {
    /// An empty arena.
    #[must_use]
    pub fn new() -> Self {
        LegArena {
            slots: Vec::new(),
            generation: 0,
        }
    }

    /// An empty arena with room for `cap` legs before reallocating.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        LegArena {
            slots: Vec::with_capacity(cap),
            generation: 0,
        }
    }

    /// Total legs stored (across every chain).
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no chain holds any leg.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Appends `leg` to `list`'s chain and returns a stable reference
    /// to it. O(1); never moves previously stored legs.
    pub fn push(&mut self, list: &mut LegList, leg: L) -> LegRef {
        let slot = self.slots.len() as u32;
        debug_assert!(slot != NONE, "leg arena full");
        self.slots.push(Slot { leg, next: NONE });
        if list.head == NONE {
            list.head = slot;
        } else {
            self.slots[list.tail as usize].next = slot;
        }
        list.tail = slot;
        list.len += 1;
        LegRef {
            slot,
            generation: self.generation,
        }
    }

    /// The leg `r` points at. Debug-asserts that `r` belongs to the
    /// arena's current generation.
    #[must_use]
    pub fn get(&self, r: LegRef) -> &L {
        debug_assert_eq!(r.generation, self.generation, "stale leg reference");
        &self.slots[r.slot as usize].leg
    }

    /// Mutable access to the leg `r` points at (used by crash voiding
    /// and shed eviction, which hold refs from the in-flight lists).
    pub fn get_mut(&mut self, r: LegRef) -> &mut L {
        debug_assert_eq!(r.generation, self.generation, "stale leg reference");
        &mut self.slots[r.slot as usize].leg
    }

    /// Iterates `list`'s legs in insertion order.
    pub fn iter(&self, list: LegList) -> LegIter<'_, L> {
        LegIter {
            arena: self,
            cur: list.head,
            remaining: list.len,
        }
    }

    /// Clears the storage and bumps the generation, invalidating every
    /// outstanding [`LegRef`] (caught by debug assertions on access).
    /// Capacity is retained, so a reused arena allocates nothing.
    pub fn reset(&mut self) {
        self.slots.clear();
        self.generation = self.generation.wrapping_add(1);
    }
}

impl<L> Default for LegArena<L> {
    fn default() -> Self {
        LegArena::new()
    }
}

/// Forward iterator over one chain's legs. See [`LegArena::iter`].
pub struct LegIter<'a, L> {
    arena: &'a LegArena<L>,
    cur: u32,
    remaining: u32,
}

impl<'a, L> Iterator for LegIter<'a, L> {
    type Item = &'a L;

    fn next(&mut self) -> Option<&'a L> {
        if self.cur == NONE {
            return None;
        }
        let slot = &self.arena.slots[self.cur as usize];
        self.cur = slot.next;
        self.remaining = self.remaining.saturating_sub(1);
        Some(&slot.leg)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl<L> ExactSizeIterator for LegIter<'_, L> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chains_are_independent_and_ordered() {
        let mut arena = LegArena::with_capacity(8);
        let mut a = LegList::new();
        let mut b = LegList::new();
        // Interleave pushes so the chains are physically interleaved in
        // the flat buffer.
        arena.push(&mut a, 1);
        arena.push(&mut b, 10);
        arena.push(&mut a, 2);
        arena.push(&mut b, 20);
        let ra3 = arena.push(&mut a, 3);
        assert_eq!(arena.iter(a).copied().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(arena.iter(b).copied().collect::<Vec<_>>(), vec![10, 20]);
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 2);
        assert!(!a.is_empty());
        assert_eq!(arena.len(), 5);
        assert_eq!(*arena.get(ra3), 3);
        *arena.get_mut(ra3) = 30;
        assert_eq!(arena.iter(a).copied().collect::<Vec<_>>(), vec![1, 2, 30]);
    }

    #[test]
    fn empty_list_iterates_nothing() {
        let arena: LegArena<u32> = LegArena::new();
        let list = LegList::default();
        assert!(list.is_empty());
        assert_eq!(arena.iter(list).count(), 0);
        assert!(arena.is_empty());
    }

    #[test]
    fn last_matching_equals_vec_rev_find() {
        // The engines replaced `.iter().rev().find(p)` with
        // `.iter().filter(p).last()`; pin the equivalence.
        let mut arena = LegArena::new();
        let mut l = LegList::new();
        for v in [4, 7, 9, 7, 2] {
            arena.push(&mut l, v);
        }
        let vec: Vec<i32> = arena.iter(l).copied().collect();
        let odd = |x: &&i32| **x % 2 == 1;
        assert_eq!(arena.iter(l).filter(odd).last(), vec.iter().rev().find(odd));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "stale leg reference")]
    fn reset_invalidates_refs() {
        let mut arena = LegArena::new();
        let mut l = LegList::new();
        let r = arena.push(&mut l, 1);
        arena.reset();
        let _ = arena.get(r);
    }

    #[test]
    fn reset_retains_capacity_and_restarts() {
        let mut arena = LegArena::with_capacity(4);
        let mut l = LegList::new();
        arena.push(&mut l, 1);
        arena.reset();
        assert!(arena.is_empty());
        let mut m = LegList::new();
        let r = arena.push(&mut m, 5);
        assert_eq!(*arena.get(r), 5);
        assert_eq!(arena.iter(m).count(), 1);
    }
}
