//! Deterministic in-simulation fault injection.
//!
//! A [`FaultPlan`] is a validated, time-ordered schedule of backend
//! crashes and recoveries that [`run_open_faults`] interleaves with the
//! open-loop arrival stream — the FoundationDB-style discipline of
//! making fault timelines a first-class, seed-reproducible simulator
//! input rather than an ambient source of nondeterminism. Everything
//! downstream of the plan is deterministic: the same `(workload seed,
//! fault seed)` pair replays the exact run, bit for bit, at any
//! `QCPA_THREADS` setting.
//!
//! Semantics of a crash at time `T` on backend `d`:
//!
//! * legs (per-backend work units of a request) already finished on `d`
//!   (`end ≤ T`) stand; legs still running or queued are **voided** and
//!   their unperformed work is refunded from `d`'s busy time;
//! * a request whose *primary* leg was voided (reads have one leg, which
//!   is primary; updates use their first ROWA target, matching the
//!   response rule of [`crate::engine::run_open`]) — or whose legs were
//!   all voided — is **re-queued at `T`** through the post-crash router,
//!   so no request is ever lost while any capable backend survives;
//! * routing switches to the surviving allocation via
//!   [`qcpa_core::ksafety::fail_backends`]; if a positively weighted
//!   class lost its last capable replica, an online
//!   [`qcpa_core::ksafety::repair`] re-replicates it from the master
//!   copy and the implied data movement is priced with the Eq. 27 ETL
//!   model from `qcpa-matching` and charged to every survivor's clock
//!   (the availability gap the paper's k-safety construction avoids).
//!
//! A recovery at time `T` brings the backend back with its fragments
//! intact after a catch-up pause: it accepts new work from
//! `T + catchup_cost` on.

use qcpa_core::allocation::Allocation;
use qcpa_core::classify::Classification;
use qcpa_core::cluster::ClusterSpec;
use qcpa_core::fragment::Catalog;
use qcpa_core::journal::QueryKind;
use qcpa_core::{ksafety, BackendId, ClassId};
use qcpa_matching::physical::{move_cost, EtlCostModel};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::arena::{LegArena, LegList, LegRef};
use crate::engine::{nearest_rank, SimConfig, UpdatePropagation};
use crate::request::Request;
use crate::scheduler::Scheduler;
use crate::service::ServiceProfile;

/// One entry of a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// Backend `backend` fails at time `at`: its in-flight work is
    /// voided and routing excludes it until it recovers.
    Crash {
        /// The failing backend (full-cluster index).
        backend: usize,
        /// Failure time in seconds.
        at: f64,
    },
    /// Backend `backend` rejoins at time `at` with its fragments
    /// restored; it accepts work from `at + catchup_cost` on (the replay
    /// of updates it missed while down).
    Recover {
        /// The recovering backend (full-cluster index).
        backend: usize,
        /// Recovery time in seconds.
        at: f64,
        /// Catch-up pause in seconds before it serves again.
        catchup_cost: f64,
    },
}

impl FaultEvent {
    /// The event's scheduled time.
    pub fn at(&self) -> f64 {
        match *self {
            FaultEvent::Crash { at, .. } | FaultEvent::Recover { at, .. } => at,
        }
    }

    /// The backend the event concerns.
    pub fn backend(&self) -> usize {
        match *self {
            FaultEvent::Crash { backend, .. } | FaultEvent::Recover { backend, .. } => backend,
        }
    }
}

/// Why a [`FaultPlan`] was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum InvalidFaultPlan {
    /// An event names a backend outside the cluster.
    UnknownBackend {
        /// Offending event index.
        index: usize,
        /// The named backend.
        backend: usize,
        /// The cluster size the plan was validated against.
        n_backends: usize,
    },
    /// Event times are not non-decreasing.
    Unsorted {
        /// Index of the event earlier than its predecessor.
        index: usize,
    },
    /// A time or catch-up cost is negative, NaN or infinite.
    NonFinite {
        /// Offending event index.
        index: usize,
    },
    /// A backend crashes while already down.
    DoubleCrash {
        /// Offending event index.
        index: usize,
        /// The backend crashed twice.
        backend: usize,
    },
    /// A backend recovers while up.
    RecoverAlive {
        /// Offending event index.
        index: usize,
        /// The backend recovered while alive.
        backend: usize,
    },
    /// The plan takes every backend down simultaneously — the simulated
    /// system would have nowhere to queue work, so such plans are
    /// rejected up front.
    AllBackendsDown {
        /// Index of the crash that kills the last backend.
        index: usize,
    },
}

impl std::fmt::Display for InvalidFaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvalidFaultPlan::UnknownBackend {
                index,
                backend,
                n_backends,
            } => write!(
                f,
                "event {index}: backend {backend} outside cluster of {n_backends}"
            ),
            InvalidFaultPlan::Unsorted { index } => {
                write!(f, "event {index} is earlier than its predecessor")
            }
            InvalidFaultPlan::NonFinite { index } => {
                write!(f, "event {index} has a negative or non-finite time/cost")
            }
            InvalidFaultPlan::DoubleCrash { index, backend } => {
                write!(f, "event {index}: backend {backend} crashes while down")
            }
            InvalidFaultPlan::RecoverAlive { index, backend } => {
                write!(f, "event {index}: backend {backend} recovers while up")
            }
            InvalidFaultPlan::AllBackendsDown { index } => {
                write!(f, "event {index} would take the last live backend down")
            }
        }
    }
}

impl std::error::Error for InvalidFaultPlan {}

/// Knobs for [`FaultPlan::from_seed`].
#[derive(Debug, Clone, Copy)]
pub struct FaultInjectionConfig {
    /// Crash events to attempt (invalid candidates — already-dead
    /// backend, would violate `min_alive` — are dropped, so the realized
    /// plan may contain fewer).
    pub crashes: usize,
    /// Whether each crash schedules a matching recovery.
    pub recover: bool,
    /// Mean time to recovery in seconds (each realized delay is jittered
    /// in `[0.5, 1.5) × mttr`).
    pub mttr: f64,
    /// Never take the cluster below this many live backends (clamped to
    /// at least 1).
    pub min_alive: usize,
    /// Catch-up pause attached to every recovery, in seconds.
    pub catchup_cost: f64,
}

impl Default for FaultInjectionConfig {
    fn default() -> Self {
        Self {
            crashes: 1,
            recover: true,
            mttr: 5.0,
            min_alive: 1,
            catchup_cost: 1.0,
        }
    }
}

/// A validated, time-ordered fault schedule for a cluster of
/// `n_backends`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    n_backends: usize,
}

impl FaultPlan {
    /// Validates an explicit event list: times non-decreasing and
    /// finite, backends in range, crash/recover alternating per backend,
    /// and at least one backend alive at every instant.
    pub fn new(events: Vec<FaultEvent>, n_backends: usize) -> Result<FaultPlan, InvalidFaultPlan> {
        let mut alive = vec![true; n_backends];
        let mut n_alive = n_backends;
        let mut last_t = 0.0f64;
        for (index, e) in events.iter().enumerate() {
            let b = e.backend();
            if b >= n_backends {
                return Err(InvalidFaultPlan::UnknownBackend {
                    index,
                    backend: b,
                    n_backends,
                });
            }
            let finite = match *e {
                FaultEvent::Crash { at, .. } => at.is_finite() && at >= 0.0,
                FaultEvent::Recover {
                    at, catchup_cost, ..
                } => at.is_finite() && at >= 0.0 && catchup_cost.is_finite() && catchup_cost >= 0.0,
            };
            if !finite {
                return Err(InvalidFaultPlan::NonFinite { index });
            }
            if e.at() < last_t {
                return Err(InvalidFaultPlan::Unsorted { index });
            }
            last_t = e.at();
            match *e {
                FaultEvent::Crash { backend, .. } => {
                    if !alive[backend] {
                        return Err(InvalidFaultPlan::DoubleCrash { index, backend });
                    }
                    if n_alive == 1 {
                        return Err(InvalidFaultPlan::AllBackendsDown { index });
                    }
                    alive[backend] = false;
                    n_alive -= 1;
                }
                FaultEvent::Recover { backend, .. } => {
                    if alive[backend] {
                        return Err(InvalidFaultPlan::RecoverAlive { index, backend });
                    }
                    alive[backend] = true;
                    n_alive += 1;
                }
            }
        }
        Ok(FaultPlan { events, n_backends })
    }

    /// Derives a valid plan from a seed: `cfg.crashes` candidate crash
    /// times uniform in `[0.1, 0.9) × duration` on uniformly drawn
    /// backends, each optionally paired with a jittered recovery, then
    /// filtered through the crash/recover state machine so the result
    /// always validates. The RNG consumption is independent of which
    /// candidates survive, so plans are stable under config tweaks that
    /// do not change the draw count.
    pub fn from_seed(
        seed: u64,
        n_backends: usize,
        duration: f64,
        cfg: &FaultInjectionConfig,
    ) -> FaultPlan {
        assert!(n_backends > 0, "need at least one backend");
        assert!(duration > 0.0 && duration.is_finite());
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut cand: Vec<FaultEvent> = Vec::with_capacity(cfg.crashes * 2);
        for _ in 0..cfg.crashes {
            let at = duration * rng.gen_range(0.1..0.9);
            let backend = rng.gen_range(0..n_backends);
            cand.push(FaultEvent::Crash { backend, at });
            if cfg.recover {
                let delay = cfg.mttr.max(0.0) * rng.gen_range(0.5..1.5);
                cand.push(FaultEvent::Recover {
                    backend,
                    at: at + delay,
                    catchup_cost: cfg.catchup_cost.max(0.0),
                });
            }
        }
        // Recoveries before crashes at equal times: freed capacity first.
        cand.sort_by_key(|e| {
            let variant = match e {
                FaultEvent::Recover { .. } => 0u8,
                FaultEvent::Crash { .. } => 1u8,
            };
            (e.at().to_bits(), variant, e.backend())
        });
        let min_alive = cfg.min_alive.max(1);
        let mut alive = vec![true; n_backends];
        let mut n_alive = n_backends;
        let mut events = Vec::with_capacity(cand.len());
        for e in cand {
            match e {
                FaultEvent::Crash { backend, .. } => {
                    if alive[backend] && n_alive > min_alive {
                        alive[backend] = false;
                        n_alive -= 1;
                        events.push(e);
                    }
                }
                FaultEvent::Recover { backend, .. } => {
                    if !alive[backend] {
                        alive[backend] = true;
                        n_alive += 1;
                        events.push(e);
                    }
                }
            }
        }
        FaultPlan::new(events, n_backends).expect("state-machine-filtered plan is valid")
    }

    /// The validated events in time order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The cluster size the plan was validated against.
    pub fn n_backends(&self) -> usize {
        self.n_backends
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the plan schedules nothing (the driver then reduces to
    /// plain open-loop behaviour).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Driver knobs for [`run_open_faults`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultConfig {
    /// ETL throughput model pricing the online repair's data movement
    /// (Eq. 27 bytes through the Figure 4(d) phases).
    pub etl: EtlCostModel,
    /// Safety level an online repair restores: every class becomes
    /// processable by `min(repair_k + 1, survivors)` backends.
    pub repair_k: usize,
}

/// Rebuilds routing for the current liveness, repairing the allocation
/// online when a weighted class lost its last replica. Shared between
/// [`run_open_faults`] and [`crate::resilience::run_open_resilient`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn reroute(
    at: f64,
    current: &mut Allocation,
    cls: &Classification,
    cluster: &ClusterSpec,
    catalog: &Catalog,
    alive: &[bool],
    fcfg: &FaultConfig,
    free_at: &mut [f64],
    repairs: &mut usize,
    repair_pause_secs: &mut f64,
    repair_moved_bytes: &mut u64,
) -> Scheduler {
    let failed: Vec<usize> = (0..alive.len()).filter(|&b| !alive[b]).collect();
    if failed.is_empty() {
        return Scheduler::new(current, cls);
    }
    if let Some(s) = Scheduler::for_survivors(current, cls, cluster, &failed) {
        return s;
    }
    // Some weighted class has no capable survivor: repair the
    // surviving sub-allocation and graft the grown fragment sets
    // back into the full-width allocation.
    *repairs += 1;
    let survivors: Vec<usize> = (0..alive.len()).filter(|&b| alive[b]).collect();
    let failed_ids: Vec<BackendId> = failed.iter().map(|&b| BackendId(b as u32)).collect();
    let surv_cluster = ksafety::surviving_cluster(cluster, &failed_ids)
        .expect("fault plans keep at least one backend alive");
    let mut restricted = current.restrict(&survivors);
    let report = ksafety::repair_report(&mut restricted, cls, &surv_cluster, fcfg.repair_k);
    let before = current.clone();
    for (nb, &b) in survivors.iter().enumerate() {
        current.fragments[b] = restricted.fragments[nb].clone();
    }
    // Price the movement with Eq. 27 against the pre-repair state
    // and the Figure 4(d) ETL phase model: serial preparation plus
    // the slowest node's transfer + load.
    let per_node: Vec<u64> = survivors
        .iter()
        .map(|&b| move_cost(current, b, &before, b, catalog))
        .collect();
    let moved: u64 = per_node.iter().sum();
    let pause = if moved == 0 {
        0.0
    } else {
        let slowest = per_node
            .iter()
            .map(|&bytes| {
                bytes as f64 / fcfg.etl.transfer_bytes_per_sec
                    + bytes as f64 / fcfg.etl.load_bytes_per_sec
            })
            .fold(0.0, f64::max);
        fcfg.etl.fixed_overhead_secs + moved as f64 / fcfg.etl.prep_bytes_per_sec + slowest
    };
    for &b in &survivors {
        free_at[b] = free_at[b].max(at) + pause;
    }
    *repair_pause_secs += pause;
    *repair_moved_bytes += moved;
    qcpa_obs::global().counter("sim.fault.repairs").inc();
    qcpa_obs::event!(qcpa_obs::Level::Info, "sim.fault", "repair", {
        "at" => at,
        "moved_bytes" => moved,
        "pause_secs" => pause,
        "grants" => report.grants,
    });
    Scheduler::for_survivors(current, cls, cluster, &failed)
        .expect("repair restores coverage for every class")
}

/// One per-backend work unit of a request (the backend it runs on is
/// keyed by the per-backend in-flight lists).
#[derive(Debug, Clone, Copy)]
struct Leg {
    backend: usize,
    end: f64,
    svc: f64,
    voided: bool,
    primary: bool,
}

/// A request's lifetime across dispatches and re-dispatches. Legs live
/// in the run's shared [`LegArena`]; the request holds only the chain
/// head.
#[derive(Debug, Clone, Copy)]
struct OpenReq {
    arrival: f64,
    class: ClassId,
    kind: QueryKind,
    service: f64,
    legs: LegList,
    redispatches: u32,
}

/// Result of an open-loop run under a fault plan.
#[derive(Debug, Clone)]
pub struct FaultReport {
    /// `(arrival, response)` per completed request, in arrival order.
    /// Responses of re-queued requests span their full lifetime — from
    /// the original arrival to the final completion after the crash.
    pub responses: Vec<(f64, f64)>,
    /// Mean response time in seconds.
    pub mean_response: f64,
    /// 95th percentile response time (nearest-rank, as in
    /// [`crate::engine::run_open`]).
    pub p95_response: f64,
    /// Per-backend busy seconds — only work actually performed: the
    /// unexecuted remainder of voided legs is refunded.
    pub busy: Vec<f64>,
    /// Per-backend utilization over the observation window.
    pub utilization: Vec<f64>,
    /// Requests that completed (every request, unless a zero-weight
    /// class lost all replicas and nothing repaired it).
    pub completed: usize,
    /// Requests that never completed.
    pub lost: usize,
    /// Requests re-queued by crashes (counted once per re-dispatch).
    pub redispatched: usize,
    /// Crash events applied.
    pub crashes: usize,
    /// Recovery events applied.
    pub recoveries: usize,
    /// Online repairs triggered by unroutable classes.
    pub repairs: usize,
    /// Total seconds the survivors were paused for repair ETL.
    pub repair_pause_secs: f64,
    /// Total bytes the repairs re-replicated (Eq. 27).
    pub repair_moved_bytes: u64,
    /// `(time, live backends)` after each applied fault event, starting
    /// with `(0, n)` — the nodes-available timeline of the availability
    /// figure.
    pub availability: Vec<(f64, usize)>,
}

impl FaultReport {
    /// The lowest number of simultaneously live backends.
    pub fn min_alive(&self) -> usize {
        self.availability.iter().map(|&(_, n)| n).min().unwrap_or(0)
    }

    /// The worst response time (the availability gap a crash opens).
    pub fn max_response(&self) -> f64 {
        self.responses.iter().map(|&(_, r)| r).fold(0.0, f64::max)
    }
}

/// Records a sampled request's lifetime from the fault-run arena: a
/// `request` root spanning arrival → completion (arrival only, if
/// lost), one `leg` child per dispatch on that leg's backend track,
/// with voided legs and the re-dispatch count annotated.
fn trace_fault_request(
    tr: &mut qcpa_obs::Tracer,
    req: u64,
    r: &OpenReq,
    leg_arena: &LegArena<Leg>,
    completion: Option<f64>,
    fault_track: u32,
) {
    let name = match r.kind {
        QueryKind::Read => "read",
        QueryKind::Update => "update",
    };
    let track = leg_arena
        .iter(r.legs)
        .next()
        .map_or(fault_track, |l| l.backend as u32);
    let root = tr
        .tree
        .begin(tr.span_id(req, 0), None, "request", name, track, r.arrival);
    tr.tree.arg(root, "request", req);
    tr.tree.arg(root, "class", r.class.0);
    tr.tree.arg(root, "redispatches", r.redispatches);
    if completion.is_none() {
        tr.tree.arg(root, "lost", "true");
    }
    for (i, leg) in leg_arena.iter(r.legs).enumerate() {
        let s = tr.tree.begin(
            tr.span_id(req, 1 + i as u64),
            Some(root),
            "service",
            "leg",
            leg.backend as u32,
            leg.end - leg.svc,
        );
        tr.tree.arg(s, "backend", leg.backend);
        if leg.voided {
            tr.tree.arg(s, "voided", "true");
        }
        tr.tree.end(s, leg.end);
    }
    tr.tree.end(root, completion.unwrap_or(r.arrival));
}

/// Runs timed arrivals through the scheduler while applying `plan`'s
/// crashes and recoveries. Requests must be sorted by arrival time;
/// fault events scheduled at or before an arrival are applied first, and
/// events past the last arrival are drained at the end (they can still
/// void queued work). With an empty plan the responses equal
/// [`crate::engine::run_open`]'s exactly.
#[allow(clippy::too_many_arguments)]
pub fn run_open_faults(
    alloc: &Allocation,
    cls: &Classification,
    cluster: &ClusterSpec,
    catalog: &Catalog,
    requests: &[Request],
    warmup_backlog: f64,
    cfg: &SimConfig,
    plan: &FaultPlan,
    fcfg: &FaultConfig,
) -> FaultReport {
    run_open_faults_traced(
        alloc,
        cls,
        cluster,
        catalog,
        requests,
        warmup_backlog,
        cfg,
        plan,
        fcfg,
        None,
    )
}

/// [`run_open_faults`] with causal tracing. Sampled requests (by
/// arrival index) record a `request` root with one `leg` span per
/// dispatch (voided legs and re-dispatches annotated); crash/recover
/// events and re-dispatches become instant marks on a dedicated
/// `faults` track (`tid` = cluster size).
#[allow(clippy::too_many_arguments)]
pub fn run_open_faults_traced(
    alloc: &Allocation,
    cls: &Classification,
    cluster: &ClusterSpec,
    catalog: &Catalog,
    requests: &[Request],
    warmup_backlog: f64,
    cfg: &SimConfig,
    plan: &FaultPlan,
    fcfg: &FaultConfig,
    mut tracer: Option<&mut qcpa_obs::Tracer>,
) -> FaultReport {
    let _span = qcpa_obs::span("sim", "run_open_faults");
    let n = cluster.len();
    let fault_track = n as u32;
    if let Some(tr) = tracer.as_deref_mut() {
        if tr.enabled() {
            for b in 0..n {
                tr.tree.name_track(b as u32, format!("backend {b}"));
            }
            tr.tree.name_track(fault_track, "faults");
        }
    }
    assert_eq!(
        plan.n_backends(),
        n,
        "fault plan validated for a different cluster size"
    );

    let mut current = alloc.clone();
    let mut alive = vec![true; n];
    let mut free_at = vec![warmup_backlog.max(0.0); n];
    let mut busy = vec![0.0f64; n];
    let mut arena: Vec<OpenReq> = Vec::with_capacity(requests.len());
    let mut leg_arena: LegArena<Leg> = LegArena::with_capacity(requests.len() * 2);
    let mut inflight: Vec<Vec<(usize, LegRef)>> = vec![Vec::new(); n];
    let mut scheduler = Scheduler::new(&current, cls);
    let mut profile = ServiceProfile::new(&current, cluster, catalog, cfg.locality);

    let mut crashes = 0usize;
    let mut recoveries = 0usize;
    let mut repairs = 0usize;
    let mut redispatched = 0usize;
    let mut repair_pause_secs = 0.0f64;
    let mut repair_moved_bytes = 0u64;
    let mut availability = vec![(0.0, n)];

    // Dispatches request `idx` at time `t`, appending its legs. Returns
    // false if no backend could serve it.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_one(
        idx: usize,
        t: f64,
        scheduler: &Scheduler,
        profile: &ServiceProfile,
        cfg: &SimConfig,
        arena: &mut [OpenReq],
        leg_arena: &mut LegArena<Leg>,
        inflight: &mut [Vec<(usize, LegRef)>],
        free_at: &mut [f64],
        busy: &mut [f64],
    ) -> bool {
        let (class, kind, service) = {
            let r = &arena[idx];
            (r.class, r.kind, r.service)
        };
        match kind {
            QueryKind::Read => {
                let routed = scheduler.route_read_with(class, |b| (free_at[b] - t).max(0.0));
                let Some(b) = routed else { return false };
                let svc = profile.effective(b, service);
                let end = free_at[b].max(t) + svc;
                free_at[b] = end;
                busy[b] += svc;
                let lref = leg_arena.push(
                    &mut arena[idx].legs,
                    Leg {
                        backend: b,
                        end,
                        svc,
                        voided: false,
                        primary: true,
                    },
                );
                inflight[b].push((idx, lref));
                true
            }
            QueryKind::Update => {
                let targets = scheduler.route_update(class).to_vec();
                if targets.is_empty() {
                    return false;
                }
                let sync = match cfg.propagation {
                    UpdatePropagation::Rowa => {
                        1.0 + cfg.rowa_overhead * (targets.len() as f64 - 1.0)
                    }
                    _ => 1.0,
                };
                for (i, &b) in targets.iter().enumerate() {
                    let mult = match cfg.propagation {
                        UpdatePropagation::Lazy { batching_discount } if i > 0 => batching_discount,
                        _ => sync,
                    };
                    let svc = profile.effective(b, service) * mult;
                    let end = free_at[b].max(t) + svc;
                    free_at[b] = end;
                    busy[b] += svc;
                    let lref = leg_arena.push(
                        &mut arena[idx].legs,
                        Leg {
                            backend: b,
                            end,
                            svc,
                            voided: false,
                            primary: i == 0,
                        },
                    );
                    inflight[b].push((idx, lref));
                }
                true
            }
        }
    }

    let events = plan.events();
    let mut ev_i = 0usize;
    let mut apply_event = |e: &FaultEvent,
                           arena: &mut Vec<OpenReq>,
                           leg_arena: &mut LegArena<Leg>,
                           inflight: &mut Vec<Vec<(usize, LegRef)>>,
                           free_at: &mut Vec<f64>,
                           busy: &mut Vec<f64>,
                           alive: &mut Vec<bool>,
                           current: &mut Allocation,
                           scheduler: &mut Scheduler,
                           profile: &mut ServiceProfile,
                           tracer: &mut Option<&mut qcpa_obs::Tracer>| {
        match *e {
            FaultEvent::Crash { backend, at } => {
                alive[backend] = false;
                crashes += 1;
                // Void the legs still running or queued on the casualty
                // and refund their unperformed work.
                let entries = std::mem::take(&mut inflight[backend]);
                let mut candidates: Vec<usize> = Vec::new();
                let mut voided = 0usize;
                for (ri, lref) in entries {
                    let leg = *leg_arena.get(lref);
                    if leg.end > at {
                        leg_arena.get_mut(lref).voided = true;
                        busy[backend] -= (leg.end - at).min(leg.svc);
                        candidates.push(ri);
                        voided += 1;
                    }
                }
                candidates.sort_unstable();
                candidates.dedup();
                qcpa_obs::global().counter("sim.fault.crashes").inc();
                qcpa_obs::event!(qcpa_obs::Level::Info, "sim.fault", "crash", {
                    "backend" => backend,
                    "at" => at,
                    "voided_legs" => voided,
                });
                if let Some(tr) = tracer.as_deref_mut() {
                    if tr.enabled() {
                        let id = tr.span_id(u64::MAX - backend as u64, at.to_bits());
                        tr.tree.mark(
                            id,
                            None,
                            "fault",
                            "crash",
                            fault_track,
                            at,
                            vec![("backend", backend.into()), ("voided_legs", voided.into())],
                        );
                    }
                }
                *scheduler = reroute(
                    at,
                    current,
                    cls,
                    cluster,
                    catalog,
                    alive,
                    fcfg,
                    free_at,
                    &mut repairs,
                    &mut repair_pause_secs,
                    &mut repair_moved_bytes,
                );
                *profile = ServiceProfile::new(current, cluster, catalog, cfg.locality);
                // Re-queue the requests the crash voided, in arrival
                // order, through the post-crash router.
                for ri in candidates {
                    let needs = {
                        let r = &arena[ri];
                        match (r.kind, cfg.propagation) {
                            (QueryKind::Read, _) | (QueryKind::Update, UpdatePropagation::Rowa) => {
                                leg_arena.iter(r.legs).all(|l| l.voided)
                            }
                            (QueryKind::Update, _) => leg_arena
                                .iter(r.legs)
                                .filter(|l| l.primary)
                                .last()
                                .is_none_or(|l| l.voided),
                        }
                    };
                    if !needs {
                        continue;
                    }
                    arena[ri].redispatches += 1;
                    redispatched += 1;
                    if let Some(tr) = tracer.as_deref_mut() {
                        if tr.admit(ri as u64) {
                            let id =
                                tr.span_id(ri as u64, 1000 + u64::from(arena[ri].redispatches));
                            tr.tree.mark(
                                id,
                                None,
                                "fault",
                                "redispatch",
                                fault_track,
                                at,
                                vec![
                                    ("request", ri.into()),
                                    ("attempt", arena[ri].redispatches.into()),
                                ],
                            );
                        }
                    }
                    dispatch_one(
                        ri, at, scheduler, profile, cfg, arena, leg_arena, inflight, free_at, busy,
                    );
                }
            }
            FaultEvent::Recover {
                backend,
                at,
                catchup_cost,
            } => {
                alive[backend] = true;
                recoveries += 1;
                free_at[backend] = at + catchup_cost;
                inflight[backend].clear();
                qcpa_obs::global().counter("sim.fault.recoveries").inc();
                qcpa_obs::event!(qcpa_obs::Level::Info, "sim.fault", "recover", {
                    "backend" => backend,
                    "at" => at,
                    "catchup_secs" => catchup_cost,
                });
                if let Some(tr) = tracer.as_deref_mut() {
                    if tr.enabled() {
                        let id = tr.span_id(u64::MAX - backend as u64, at.to_bits() ^ 1);
                        tr.tree.mark(
                            id,
                            None,
                            "fault",
                            "recover",
                            fault_track,
                            at,
                            vec![
                                ("backend", backend.into()),
                                ("catchup_secs", catchup_cost.into()),
                            ],
                        );
                    }
                }
                *scheduler = reroute(
                    at,
                    current,
                    cls,
                    cluster,
                    catalog,
                    alive,
                    fcfg,
                    free_at,
                    &mut repairs,
                    &mut repair_pause_secs,
                    &mut repair_moved_bytes,
                );
                *profile = ServiceProfile::new(current, cluster, catalog, cfg.locality);
            }
        }
        availability.push((e.at(), alive.iter().filter(|&&a| a).count()));
    };

    let mut last_t = 0.0f64;
    for r in requests {
        debug_assert!(r.arrival >= last_t, "arrivals must be sorted");
        last_t = r.arrival;
        while ev_i < events.len() && events[ev_i].at() <= r.arrival {
            apply_event(
                &events[ev_i],
                &mut arena,
                &mut leg_arena,
                &mut inflight,
                &mut free_at,
                &mut busy,
                &mut alive,
                &mut current,
                &mut scheduler,
                &mut profile,
                &mut tracer,
            );
            ev_i += 1;
        }
        let idx = arena.len();
        arena.push(OpenReq {
            arrival: r.arrival,
            class: r.class,
            kind: r.kind,
            service: r.service,
            legs: LegList::new(),
            redispatches: 0,
        });
        dispatch_one(
            idx,
            r.arrival,
            &scheduler,
            &profile,
            cfg,
            &mut arena,
            &mut leg_arena,
            &mut inflight,
            &mut free_at,
            &mut busy,
        );
    }
    // Crashes scheduled past the last arrival still void queued work.
    while ev_i < events.len() {
        apply_event(
            &events[ev_i],
            &mut arena,
            &mut leg_arena,
            &mut inflight,
            &mut free_at,
            &mut busy,
            &mut alive,
            &mut current,
            &mut scheduler,
            &mut profile,
            &mut tracer,
        );
        ev_i += 1;
    }

    // Finalize: every non-voided leg ran to completion.
    let mut responses = Vec::with_capacity(arena.len());
    let mut resp_hist = qcpa_obs::Histogram::new();
    let mut lost = 0usize;
    for (idx, r) in arena.iter().enumerate() {
        let completion = match (r.kind, cfg.propagation) {
            (QueryKind::Read, _) => leg_arena
                .iter(r.legs)
                .filter(|l| !l.voided)
                .last()
                .map(|l| l.end),
            (QueryKind::Update, UpdatePropagation::Rowa) => leg_arena
                .iter(r.legs)
                .filter(|l| !l.voided)
                .map(|l| l.end)
                .fold(None, |acc: Option<f64>, e| {
                    Some(acc.map_or(e, |a| a.max(e)))
                }),
            (QueryKind::Update, _) => leg_arena
                .iter(r.legs)
                .filter(|l| l.primary && !l.voided)
                .last()
                .map(|l| l.end),
        };
        match completion {
            Some(end) => {
                resp_hist.record(end - r.arrival);
                responses.push((r.arrival, end - r.arrival));
            }
            None => lost += 1,
        }
        if let Some(tr) = tracer.as_deref_mut() {
            if tr.admit(idx as u64) {
                trace_fault_request(tr, idx as u64, r, &leg_arena, completion, fault_track);
            }
        }
    }

    let mut resp: Vec<f64> = responses.iter().map(|&(_, r)| r).collect();
    let mean_response = if resp.is_empty() {
        0.0
    } else {
        resp.iter().sum::<f64>() / resp.len() as f64
    };
    let p95_response = nearest_rank(&mut resp, 0.95);
    let window = requests.last().map(|r| r.arrival).unwrap_or(0.0).max(1e-9);
    let utilization: Vec<f64> = busy.iter().map(|b| b / window).collect();

    let reg = qcpa_obs::global();
    reg.counter("sim.fault.requests").add(requests.len() as u64);
    reg.counter("sim.fault.lost").add(lost as u64);
    reg.counter("sim.fault.redispatched")
        .add(redispatched as u64);
    reg.merge_histogram("sim.fault.response_secs", &resp_hist);

    FaultReport {
        completed: responses.len(),
        responses,
        mean_response,
        p95_response,
        busy,
        utilization,
        lost,
        redispatched,
        crashes,
        recoveries,
        repairs,
        repair_pause_secs,
        repair_moved_bytes,
        availability,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_open;
    use crate::request::RequestStream;
    use qcpa_core::classify::QueryClass;
    use qcpa_core::greedy;

    fn workload() -> (Catalog, Classification, RequestStream) {
        let mut cat = Catalog::new();
        let a = cat.add_table("A", 4_000);
        let b = cat.add_table("B", 4_000);
        let cls = Classification::from_classes(vec![
            QueryClass::read(0, [a], 0.45),
            QueryClass::read(1, [b], 0.35),
            QueryClass::update(2, [a], 0.20),
        ])
        .unwrap();
        let stream = RequestStream::new(
            vec![45.0, 35.0, 20.0],
            vec![QueryKind::Read, QueryKind::Read, QueryKind::Update],
            vec![0.01; 3],
        );
        (cat, cls, stream)
    }

    #[test]
    fn empty_plan_matches_run_open_exactly() {
        let (cat, cls, stream) = workload();
        let cluster = ClusterSpec::homogeneous(3);
        let alloc = greedy::allocate(&cls, &cat, &cluster);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let reqs = stream.sample_poisson(80.0, 30.0, 0.0, &mut rng);
        let cfg = SimConfig::default();
        let base = run_open(&alloc, &cls, &cluster, &cat, &reqs, 0.0, &cfg);
        let plan = FaultPlan::new(Vec::new(), 3).unwrap();
        let rep = run_open_faults(
            &alloc,
            &cls,
            &cluster,
            &cat,
            &reqs,
            0.0,
            &cfg,
            &plan,
            &FaultConfig::default(),
        );
        assert_eq!(rep.lost, 0);
        assert_eq!(rep.responses.len(), base.responses.len());
        for (f, o) in rep.responses.iter().zip(&base.responses) {
            assert_eq!(f.0.to_bits(), o.0.to_bits());
            assert_eq!(f.1.to_bits(), o.1.to_bits(), "at arrival {}", f.0);
        }
        for (f, o) in rep.busy.iter().zip(&base.busy) {
            assert!((f - o).abs() < 1e-9);
        }
    }

    #[test]
    fn seeded_plan_is_bit_identical_across_reruns() {
        let (cat, cls, stream) = workload();
        let cluster = ClusterSpec::homogeneous(4);
        let alloc = Allocation::full_replication(&cls, &cluster);
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let reqs = stream.sample_poisson(120.0, 40.0, 0.0, &mut rng);
        let cfg = SimConfig::default();
        let fic = FaultInjectionConfig {
            crashes: 3,
            ..Default::default()
        };
        let plan_a = FaultPlan::from_seed(99, 4, 40.0, &fic);
        let plan_b = FaultPlan::from_seed(99, 4, 40.0, &fic);
        assert_eq!(plan_a, plan_b);
        assert!(!plan_a.is_empty());
        let run = |plan: &FaultPlan| {
            run_open_faults(
                &alloc,
                &cls,
                &cluster,
                &cat,
                &reqs,
                0.0,
                &cfg,
                plan,
                &FaultConfig::default(),
            )
        };
        let ra = run(&plan_a);
        let rb = run(&plan_b);
        assert_eq!(ra.responses.len(), rb.responses.len());
        for (x, y) in ra.responses.iter().zip(&rb.responses) {
            assert_eq!(x.1.to_bits(), y.1.to_bits());
        }
        assert_eq!(ra.crashes, rb.crashes);
        assert_eq!(ra.availability, rb.availability);
    }

    #[test]
    fn crash_without_spare_replica_triggers_repair() {
        let (cat, cls, stream) = workload();
        let cluster = ClusterSpec::homogeneous(3);
        // Backend 0 is the sole replica of table A: crashing it strands
        // the weighted read/update classes on A until repair.
        let frags: Vec<qcpa_core::fragment::FragmentId> =
            cat.fragments().iter().map(|f| f.id).collect();
        let (a, b) = (frags[0], frags[1]);
        let mut alloc = Allocation::empty(cls.len(), 3);
        alloc.fragments[0].insert(a);
        alloc.fragments[1].insert(b);
        alloc.fragments[2].insert(b);
        alloc.assign[0][0] = 0.45;
        alloc.assign[1][1] = 0.20;
        alloc.assign[1][2] = 0.15;
        alloc.assign[2][0] = 0.20;
        alloc.validate(&cls, &cluster).unwrap();
        assert_eq!(ksafety::class_safety(&alloc, &cls), 0);
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let reqs = stream.sample_poisson(60.0, 30.0, 0.0, &mut rng);
        let plan = FaultPlan::new(
            vec![
                FaultEvent::Crash {
                    backend: 0,
                    at: 10.0,
                },
                FaultEvent::Recover {
                    backend: 0,
                    at: 14.0,
                    catchup_cost: 0.5,
                },
            ],
            3,
        )
        .unwrap();
        let rep = run_open_faults(
            &alloc,
            &cls,
            &cluster,
            &cat,
            &reqs,
            0.0,
            &SimConfig::default(),
            &plan,
            &FaultConfig::default(),
        );
        assert_eq!(rep.lost, 0, "repair keeps every request completable");
        assert_eq!(rep.repairs, 1, "the sole-replica crash must repair");
        assert!(rep.repair_moved_bytes > 0);
        assert!(rep.repair_pause_secs > 0.0);
        assert_eq!(rep.crashes, 1);
        assert_eq!(rep.recoveries, 1);
        assert_eq!(rep.min_alive(), 2);
    }

    #[test]
    fn plan_validation_rejects_bad_schedules() {
        use InvalidFaultPlan as E;
        let crash = |backend, at| FaultEvent::Crash { backend, at };
        let recover = |backend, at| FaultEvent::Recover {
            backend,
            at,
            catchup_cost: 0.0,
        };
        assert!(matches!(
            FaultPlan::new(vec![crash(5, 1.0)], 3),
            Err(E::UnknownBackend { backend: 5, .. })
        ));
        assert!(matches!(
            FaultPlan::new(vec![crash(0, 2.0), crash(1, 1.0)], 3),
            Err(E::Unsorted { index: 1 })
        ));
        assert!(matches!(
            FaultPlan::new(vec![crash(0, f64::NAN)], 3),
            Err(E::NonFinite { index: 0 })
        ));
        assert!(matches!(
            FaultPlan::new(vec![crash(0, 1.0), crash(0, 2.0)], 3),
            Err(E::DoubleCrash { backend: 0, .. })
        ));
        assert!(matches!(
            FaultPlan::new(vec![recover(0, 1.0)], 3),
            Err(E::RecoverAlive { backend: 0, .. })
        ));
        assert!(matches!(
            FaultPlan::new(vec![crash(0, 1.0)], 1),
            Err(E::AllBackendsDown { index: 0 })
        ));
        // A correct crash/recover cycle validates.
        assert!(FaultPlan::new(vec![crash(0, 1.0), recover(0, 2.0), crash(0, 3.0)], 2).is_ok());
    }

    #[test]
    fn from_seed_respects_min_alive() {
        for seed in 0..20 {
            let plan = FaultPlan::from_seed(
                seed,
                4,
                100.0,
                &FaultInjectionConfig {
                    crashes: 8,
                    recover: false,
                    min_alive: 2,
                    ..Default::default()
                },
            );
            let mut n_alive = 4i64;
            for e in plan.events() {
                match e {
                    FaultEvent::Crash { .. } => n_alive -= 1,
                    FaultEvent::Recover { .. } => n_alive += 1,
                }
                assert!(n_alive >= 2, "seed {seed}");
            }
        }
    }
}
