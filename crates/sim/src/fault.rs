//! Deterministic in-simulation fault injection.
//!
//! A [`FaultPlan`] is a validated, time-ordered schedule of backend
//! crashes and recoveries that [`run_open_faults`] interleaves with the
//! open-loop arrival stream — the FoundationDB-style discipline of
//! making fault timelines a first-class, seed-reproducible simulator
//! input rather than an ambient source of nondeterminism. Everything
//! downstream of the plan is deterministic: the same `(workload seed,
//! fault seed)` pair replays the exact run, bit for bit, at any
//! `QCPA_THREADS` setting.
//!
//! Semantics of a crash at time `T` on backend `d`:
//!
//! * legs (per-backend work units of a request) already finished on `d`
//!   (`end ≤ T`) stand; legs still running or queued are **voided** and
//!   their unperformed work is refunded from `d`'s busy time;
//! * a request whose *primary* leg was voided (reads have one leg, which
//!   is primary; updates use their first ROWA target, matching the
//!   response rule of [`crate::engine::run_open`]) — or whose legs were
//!   all voided — is **re-queued at `T`** through the post-crash router,
//!   so no request is ever lost while any capable backend survives;
//! * routing switches to the surviving allocation via
//!   [`qcpa_core::ksafety::fail_backends`]; if a positively weighted
//!   class lost its last capable replica, an online
//!   [`qcpa_core::ksafety::repair`] re-replicates it from the master
//!   copy and the implied data movement is priced with the Eq. 27 ETL
//!   model from `qcpa-matching` and charged to every survivor's clock
//!   (the availability gap the paper's k-safety construction avoids).
//!
//! A recovery at time `T` brings the backend back with its fragments
//! intact after a catch-up pause: it accepts new work from
//! `T + catchup_cost` on.
//!
//! On top of clean crashes the plan carries a **layered adversary**
//! ([`FaultPlan::from_seed_layered`]):
//!
//! * **gray failures** ([`FaultEvent::Degrade`]/[`FaultEvent::Restore`])
//!   — a backend keeps serving but legs dispatched inside the window
//!   take `factor ≥ 1` times as long; nothing is voided and routing is
//!   unchanged, modelling the slow-not-dead node real clusters degrade
//!   through;
//! * **network partitions** ([`FaultEvent::Partition`]/
//!   [`FaultEvent::Heal`]) — a registered backend *side* becomes
//!   unreachable: in-flight legs still complete and no work is voided,
//!   but new routing excludes the side until it heals (triggering the
//!   same online repair as a crash if a weighted class lost its last
//!   reachable replica);
//! * **correlated zone failures** — one seed draw crashes every backend
//!   of a zone (`zone(b) = b % zones`) at the same instant.
//!
//! All layers draw a fixed amount of RNG per attempted event, so plans
//! stay bit-reproducible and stable under config tweaks that do not
//! change the draw counts.

use qcpa_core::allocation::Allocation;
use qcpa_core::classify::Classification;
use qcpa_core::cluster::ClusterSpec;
use qcpa_core::fragment::Catalog;
use qcpa_core::journal::QueryKind;
use qcpa_core::{ksafety, BackendId, ClassId};
use qcpa_matching::physical::{move_cost, EtlCostModel};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::arena::{LegArena, LegList, LegRef};
use crate::engine::{nearest_rank, SimConfig, UpdatePropagation};
use crate::request::Request;
use crate::scheduler::Scheduler;
use crate::service::ServiceProfile;

/// One entry of a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// Backend `backend` fails at time `at`: its in-flight work is
    /// voided and routing excludes it until it recovers.
    Crash {
        /// The failing backend (full-cluster index).
        backend: usize,
        /// Failure time in seconds.
        at: f64,
    },
    /// Backend `backend` rejoins at time `at` with its fragments
    /// restored; it accepts work from `at + catchup_cost` on (the replay
    /// of updates it missed while down).
    Recover {
        /// The recovering backend (full-cluster index).
        backend: usize,
        /// Recovery time in seconds.
        at: f64,
        /// Catch-up pause in seconds before it serves again.
        catchup_cost: f64,
    },
    /// Backend `backend` enters a **gray failure** window at `at`: it
    /// stays alive and routable, but every leg dispatched to it until
    /// the matching [`FaultEvent::Restore`] takes `factor` (≥ 1) times
    /// as long. Legs already dispatched keep their original service
    /// time — degradation is observed at dispatch, like a slow disk.
    Degrade {
        /// The degrading backend (full-cluster index).
        backend: usize,
        /// Window start in seconds.
        at: f64,
        /// Service-time multiplier for legs dispatched in the window.
        factor: f64,
    },
    /// Backend `backend` leaves its gray-failure window at `at` and
    /// serves at full rate again.
    Restore {
        /// The restored backend (full-cluster index).
        backend: usize,
        /// Window end in seconds.
        at: f64,
    },
    /// Network partition `id` activates at `at`: every backend in
    /// [`FaultPlan::partition_side`]`(id)` becomes **unreachable** —
    /// alive, in-flight legs still complete, but excluded from new
    /// routing until the matching [`FaultEvent::Heal`]. Unlike a crash
    /// nothing is voided and nothing is refunded: the replicas are cut
    /// off, not dead.
    Partition {
        /// Index into the plan's partition-side table.
        id: u32,
        /// Cut time in seconds.
        at: f64,
    },
    /// Partition `id` heals at `at`: its side rejoins routing with all
    /// state intact (no catch-up — links were cut, data never diverged
    /// because cut backends received no new work).
    Heal {
        /// Index into the plan's partition-side table.
        id: u32,
        /// Heal time in seconds.
        at: f64,
    },
}

impl FaultEvent {
    /// The event's scheduled time.
    pub fn at(&self) -> f64 {
        match *self {
            FaultEvent::Crash { at, .. }
            | FaultEvent::Recover { at, .. }
            | FaultEvent::Degrade { at, .. }
            | FaultEvent::Restore { at, .. }
            | FaultEvent::Partition { at, .. }
            | FaultEvent::Heal { at, .. } => at,
        }
    }

    /// The backend the event concerns, if it is a single-backend event
    /// (partitions concern a backend *set*, keyed by id instead).
    pub fn backend(&self) -> Option<usize> {
        match *self {
            FaultEvent::Crash { backend, .. }
            | FaultEvent::Recover { backend, .. }
            | FaultEvent::Degrade { backend, .. }
            | FaultEvent::Restore { backend, .. } => Some(backend),
            FaultEvent::Partition { .. } | FaultEvent::Heal { .. } => None,
        }
    }

    /// Total order for equal-time events: capacity-restoring variants
    /// first (recover, restore, heal), then capacity-removing ones
    /// (crash, degrade, partition), tie-broken by backend / partition
    /// id. Keeps `Recover < Crash` exactly as the pre-layered sort did.
    fn sort_key(&self) -> (u64, u8, usize) {
        let (rank, tie) = match *self {
            FaultEvent::Recover { backend, .. } => (0u8, backend),
            FaultEvent::Restore { backend, .. } => (1, backend),
            FaultEvent::Heal { id, .. } => (2, id as usize),
            FaultEvent::Crash { backend, .. } => (3, backend),
            FaultEvent::Degrade { backend, .. } => (4, backend),
            FaultEvent::Partition { id, .. } => (5, id as usize),
        };
        (self.at().to_bits(), rank, tie)
    }
}

/// Why a [`FaultPlan`] was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum InvalidFaultPlan {
    /// An event names a backend outside the cluster.
    UnknownBackend {
        /// Offending event index.
        index: usize,
        /// The named backend.
        backend: usize,
        /// The cluster size the plan was validated against.
        n_backends: usize,
    },
    /// Event times are not non-decreasing.
    Unsorted {
        /// Index of the event earlier than its predecessor.
        index: usize,
    },
    /// A time or catch-up cost is negative, NaN or infinite.
    NonFinite {
        /// Offending event index.
        index: usize,
    },
    /// A backend crashes while already down.
    DoubleCrash {
        /// Offending event index.
        index: usize,
        /// The backend crashed twice.
        backend: usize,
    },
    /// A backend recovers while up.
    RecoverAlive {
        /// Offending event index.
        index: usize,
        /// The backend recovered while alive.
        backend: usize,
    },
    /// The plan takes every backend down simultaneously — the simulated
    /// system would have nowhere to queue work, so such plans are
    /// rejected up front. Raised by the crash (or partition) that would
    /// leave zero backends both alive *and* reachable.
    AllBackendsDown {
        /// Index of the crash that kills the last backend.
        index: usize,
    },
    /// A gray-failure factor is NaN, infinite or below 1.
    BadDegradeFactor {
        /// Offending event index.
        index: usize,
    },
    /// A backend degrades while already inside a gray window.
    DoubleDegrade {
        /// Offending event index.
        index: usize,
        /// The backend degraded twice.
        backend: usize,
    },
    /// A backend is restored without an open gray window.
    RestoreHealthy {
        /// Offending event index.
        index: usize,
        /// The backend restored while healthy.
        backend: usize,
    },
    /// A partition event names an id with no registered side.
    UnknownPartition {
        /// Offending event index.
        index: usize,
        /// The unregistered partition id.
        id: u32,
    },
    /// A partition side is empty, unsorted, out of range, or covers the
    /// whole cluster (cutting everything is [`Self::AllBackendsDown`] in
    /// disguise and is rejected structurally).
    BadPartitionSide {
        /// The malformed side's id.
        id: u32,
    },
    /// A partition activates while already active.
    DoublePartition {
        /// Offending event index.
        index: usize,
        /// The partition activated twice.
        id: u32,
    },
    /// A partition would cut a backend another active partition has
    /// already cut — overlapping concurrent cuts are ambiguous to heal.
    OverlappingPartitions {
        /// Offending event index.
        index: usize,
        /// The doubly-cut backend.
        backend: usize,
    },
    /// A heal names a partition that is not active.
    HealUnpartitioned {
        /// Offending event index.
        index: usize,
        /// The inactive partition id.
        id: u32,
    },
}

impl std::fmt::Display for InvalidFaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvalidFaultPlan::UnknownBackend {
                index,
                backend,
                n_backends,
            } => write!(
                f,
                "event {index}: backend {backend} outside cluster of {n_backends}"
            ),
            InvalidFaultPlan::Unsorted { index } => {
                write!(f, "event {index} is earlier than its predecessor")
            }
            InvalidFaultPlan::NonFinite { index } => {
                write!(f, "event {index} has a negative or non-finite time/cost")
            }
            InvalidFaultPlan::DoubleCrash { index, backend } => {
                write!(f, "event {index}: backend {backend} crashes while down")
            }
            InvalidFaultPlan::RecoverAlive { index, backend } => {
                write!(f, "event {index}: backend {backend} recovers while up")
            }
            InvalidFaultPlan::AllBackendsDown { index } => {
                write!(f, "event {index} would take the last live backend down")
            }
            InvalidFaultPlan::BadDegradeFactor { index } => {
                write!(f, "event {index} has a non-finite or sub-1 degrade factor")
            }
            InvalidFaultPlan::DoubleDegrade { index, backend } => {
                write!(
                    f,
                    "event {index}: backend {backend} degrades while degraded"
                )
            }
            InvalidFaultPlan::RestoreHealthy { index, backend } => {
                write!(f, "event {index}: backend {backend} restored while healthy")
            }
            InvalidFaultPlan::UnknownPartition { index, id } => {
                write!(f, "event {index}: partition {id} has no registered side")
            }
            InvalidFaultPlan::BadPartitionSide { id } => {
                write!(
                    f,
                    "partition {id}: side must be non-empty, strictly sorted, \
                     in range and smaller than the cluster"
                )
            }
            InvalidFaultPlan::DoublePartition { index, id } => {
                write!(f, "event {index}: partition {id} activates while active")
            }
            InvalidFaultPlan::OverlappingPartitions { index, backend } => {
                write!(
                    f,
                    "event {index}: backend {backend} is already cut by another partition"
                )
            }
            InvalidFaultPlan::HealUnpartitioned { index, id } => {
                write!(f, "event {index}: partition {id} healed while inactive")
            }
        }
    }
}

impl std::error::Error for InvalidFaultPlan {}

/// Knobs for [`FaultPlan::from_seed`].
#[derive(Debug, Clone, Copy)]
pub struct FaultInjectionConfig {
    /// Crash events to attempt (invalid candidates — already-dead
    /// backend, would violate `min_alive` — are dropped, so the realized
    /// plan may contain fewer).
    pub crashes: usize,
    /// Whether each crash schedules a matching recovery.
    pub recover: bool,
    /// Mean time to recovery in seconds (each realized delay is jittered
    /// in `[0.5, 1.5) × mttr`).
    pub mttr: f64,
    /// Never take the cluster below this many live backends (clamped to
    /// at least 1).
    pub min_alive: usize,
    /// Catch-up pause attached to every recovery, in seconds.
    pub catchup_cost: f64,
}

impl Default for FaultInjectionConfig {
    fn default() -> Self {
        Self {
            crashes: 1,
            recover: true,
            mttr: 5.0,
            min_alive: 1,
            catchup_cost: 1.0,
        }
    }
}

/// Knobs for [`FaultPlan::from_seed_layered`]: the crash layer reuses
/// [`FaultInjectionConfig`] verbatim, then gray windows, partitions and
/// correlated zone failures stack on top. With every non-crash layer at
/// zero the generated plan equals [`FaultPlan::from_seed`]'s exactly.
#[derive(Debug, Clone, Copy)]
pub struct LayeredFaultConfig {
    /// The independent crash/recover layer (drawn first, so crash-only
    /// layered plans are bit-identical to `from_seed`).
    pub crashes: FaultInjectionConfig,
    /// Gray-failure windows to attempt.
    pub gray: usize,
    /// Half-open `[lo, hi)` range the degrade factor is drawn from
    /// (clamped to at least 1).
    pub gray_factor: (f64, f64),
    /// Mean gray-window length in seconds (each realized length is
    /// jittered in `[0.5, 1.5) × gray_duration`).
    pub gray_duration: f64,
    /// Partition episodes to attempt; each cuts a uniformly drawn
    /// proper subset of backends and heals after a jittered duration.
    pub partitions: usize,
    /// Mean partition length in seconds (jittered like gray windows).
    pub partition_duration: f64,
    /// Zones backends are striped over (`zone(b) = b % zones`); `< 2`
    /// disables the zone layer.
    pub zones: usize,
    /// Correlated zone failures to attempt: one draw crashes every
    /// backend of the drawn zone at the same instant.
    pub zone_failures: usize,
    /// Mean time to zone recovery in seconds (jittered like `mttr`).
    pub zone_mttr: f64,
}

impl Default for LayeredFaultConfig {
    fn default() -> Self {
        Self {
            crashes: FaultInjectionConfig::default(),
            gray: 1,
            gray_factor: (1.5, 4.0),
            gray_duration: 5.0,
            partitions: 1,
            partition_duration: 5.0,
            zones: 0,
            zone_failures: 0,
            zone_mttr: 5.0,
        }
    }
}

impl LayeredFaultConfig {
    /// Applies the chaos env knobs: `QCPA_FAULT_GRAY` overrides the
    /// gray-window count and `QCPA_FAULT_PARTITION` the partition
    /// count. Unset or unparsable values leave the field untouched.
    #[must_use]
    pub fn env_overrides(mut self) -> Self {
        let parse = |v: Result<String, std::env::VarError>| v.ok().and_then(|s| s.parse().ok());
        if let Some(v) = parse(std::env::var("QCPA_FAULT_GRAY")) {
            self.gray = v;
        }
        if let Some(v) = parse(std::env::var("QCPA_FAULT_PARTITION")) {
            self.partitions = v;
        }
        self
    }
}

/// A validated, time-ordered fault schedule for a cluster of
/// `n_backends`, plus the backend sides of its network partitions.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    n_backends: usize,
    partition_sides: Vec<Vec<usize>>,
}

impl FaultPlan {
    /// Validates an explicit event list with no partition events: times
    /// non-decreasing and finite, backends in range, crash/recover and
    /// degrade/restore alternating per backend, and at least one backend
    /// alive at every instant.
    pub fn new(events: Vec<FaultEvent>, n_backends: usize) -> Result<FaultPlan, InvalidFaultPlan> {
        FaultPlan::with_partitions(events, n_backends, Vec::new())
    }

    /// Validates an explicit event list against a partition-side table:
    /// `Partition { id }` cuts `partition_sides[id]`. On top of
    /// [`FaultPlan::new`]'s invariants: sides are non-empty, strictly
    /// sorted, in-range, proper subsets of the cluster; partitions
    /// activate/heal alternately, never overlap on a backend, and never
    /// leave the cluster with zero backends both alive and reachable.
    pub fn with_partitions(
        events: Vec<FaultEvent>,
        n_backends: usize,
        partition_sides: Vec<Vec<usize>>,
    ) -> Result<FaultPlan, InvalidFaultPlan> {
        for (id, side) in partition_sides.iter().enumerate() {
            let sorted = side.windows(2).all(|w| w[0] < w[1]);
            let in_range = side.iter().all(|&b| b < n_backends);
            if side.is_empty() || side.len() >= n_backends || !sorted || !in_range {
                return Err(InvalidFaultPlan::BadPartitionSide { id: id as u32 });
            }
        }
        let mut alive = vec![true; n_backends];
        let mut cut = vec![false; n_backends];
        let mut degraded = vec![false; n_backends];
        let mut active = vec![false; partition_sides.len()];
        // Backends both alive and reachable — the set routing can use.
        let mut routable = n_backends;
        let mut last_t = 0.0f64;
        for (index, e) in events.iter().enumerate() {
            if let Some(b) = e.backend() {
                if b >= n_backends {
                    return Err(InvalidFaultPlan::UnknownBackend {
                        index,
                        backend: b,
                        n_backends,
                    });
                }
            }
            let finite = match *e {
                FaultEvent::Recover {
                    at, catchup_cost, ..
                } => at.is_finite() && at >= 0.0 && catchup_cost.is_finite() && catchup_cost >= 0.0,
                _ => e.at().is_finite() && e.at() >= 0.0,
            };
            if !finite {
                return Err(InvalidFaultPlan::NonFinite { index });
            }
            if e.at() < last_t {
                return Err(InvalidFaultPlan::Unsorted { index });
            }
            last_t = e.at();
            match *e {
                FaultEvent::Crash { backend, .. } => {
                    if !alive[backend] {
                        return Err(InvalidFaultPlan::DoubleCrash { index, backend });
                    }
                    if !cut[backend] {
                        if routable == 1 {
                            return Err(InvalidFaultPlan::AllBackendsDown { index });
                        }
                        routable -= 1;
                    }
                    alive[backend] = false;
                }
                FaultEvent::Recover { backend, .. } => {
                    if alive[backend] {
                        return Err(InvalidFaultPlan::RecoverAlive { index, backend });
                    }
                    alive[backend] = true;
                    if !cut[backend] {
                        routable += 1;
                    }
                }
                FaultEvent::Degrade {
                    backend, factor, ..
                } => {
                    if !factor.is_finite() || factor < 1.0 {
                        return Err(InvalidFaultPlan::BadDegradeFactor { index });
                    }
                    if degraded[backend] {
                        return Err(InvalidFaultPlan::DoubleDegrade { index, backend });
                    }
                    degraded[backend] = true;
                }
                FaultEvent::Restore { backend, .. } => {
                    if !degraded[backend] {
                        return Err(InvalidFaultPlan::RestoreHealthy { index, backend });
                    }
                    degraded[backend] = false;
                }
                FaultEvent::Partition { id, .. } => {
                    let Some(side) = partition_sides.get(id as usize) else {
                        return Err(InvalidFaultPlan::UnknownPartition { index, id });
                    };
                    if active[id as usize] {
                        return Err(InvalidFaultPlan::DoublePartition { index, id });
                    }
                    if let Some(&backend) = side.iter().find(|&&m| cut[m]) {
                        return Err(InvalidFaultPlan::OverlappingPartitions { index, backend });
                    }
                    let losing = side.iter().filter(|&&m| alive[m]).count();
                    if routable == losing {
                        return Err(InvalidFaultPlan::AllBackendsDown { index });
                    }
                    routable -= losing;
                    for &m in side {
                        cut[m] = true;
                    }
                    active[id as usize] = true;
                }
                FaultEvent::Heal { id, .. } => {
                    let Some(side) = partition_sides.get(id as usize) else {
                        return Err(InvalidFaultPlan::UnknownPartition { index, id });
                    };
                    if !active[id as usize] {
                        return Err(InvalidFaultPlan::HealUnpartitioned { index, id });
                    }
                    routable += side.iter().filter(|&&m| alive[m]).count();
                    for &m in side {
                        cut[m] = false;
                    }
                    active[id as usize] = false;
                }
            }
        }
        Ok(FaultPlan {
            events,
            n_backends,
            partition_sides,
        })
    }

    /// Sorts candidates by `(time, variant rank, backend/id)` and runs
    /// them through the liveness state machine, dropping candidates that
    /// would not validate (already-dead backend, would breach
    /// `min_alive` routable backends, overlapping windows/partitions).
    /// Dropped starts naturally drop their matching ends. Shared by both
    /// seeded generators so the crash layer filters identically.
    fn finish_seeded(
        mut cand: Vec<FaultEvent>,
        n_backends: usize,
        partition_sides: Vec<Vec<usize>>,
        min_alive: usize,
    ) -> FaultPlan {
        cand.sort_by_key(FaultEvent::sort_key);
        let min_alive = min_alive.max(1);
        let mut alive = vec![true; n_backends];
        let mut cut = vec![false; n_backends];
        let mut degraded = vec![false; n_backends];
        let mut active = vec![false; partition_sides.len()];
        let mut routable = n_backends;
        let mut events = Vec::with_capacity(cand.len());
        for e in cand {
            match e {
                FaultEvent::Crash { backend, .. } => {
                    if alive[backend] && (cut[backend] || routable > min_alive) {
                        alive[backend] = false;
                        if !cut[backend] {
                            routable -= 1;
                        }
                        events.push(e);
                    }
                }
                FaultEvent::Recover { backend, .. } => {
                    if !alive[backend] {
                        alive[backend] = true;
                        if !cut[backend] {
                            routable += 1;
                        }
                        events.push(e);
                    }
                }
                FaultEvent::Degrade { backend, .. } => {
                    if !degraded[backend] {
                        degraded[backend] = true;
                        events.push(e);
                    }
                }
                FaultEvent::Restore { backend, .. } => {
                    if degraded[backend] {
                        degraded[backend] = false;
                        events.push(e);
                    }
                }
                FaultEvent::Partition { id, .. } => {
                    let side = &partition_sides[id as usize];
                    let losing = side.iter().filter(|&&m| alive[m] && !cut[m]).count();
                    if !active[id as usize]
                        && side.iter().all(|&m| !cut[m])
                        && routable - losing >= min_alive
                    {
                        routable -= losing;
                        for &m in side {
                            cut[m] = true;
                        }
                        active[id as usize] = true;
                        events.push(e);
                    }
                }
                FaultEvent::Heal { id, .. } => {
                    if active[id as usize] {
                        let side = &partition_sides[id as usize];
                        routable += side.iter().filter(|&&m| alive[m]).count();
                        for &m in side {
                            cut[m] = false;
                        }
                        active[id as usize] = false;
                        events.push(e);
                    }
                }
            }
        }
        FaultPlan::with_partitions(events, n_backends, partition_sides)
            .expect("state-machine-filtered plan is valid")
    }

    /// Derives a valid plan from a seed: `cfg.crashes` candidate crash
    /// times uniform in `[0.1, 0.9) × duration` on uniformly drawn
    /// backends, each optionally paired with a jittered recovery, then
    /// filtered through the crash/recover state machine so the result
    /// always validates. The RNG consumption is independent of which
    /// candidates survive, so plans are stable under config tweaks that
    /// do not change the draw count.
    pub fn from_seed(
        seed: u64,
        n_backends: usize,
        duration: f64,
        cfg: &FaultInjectionConfig,
    ) -> FaultPlan {
        assert!(n_backends > 0, "need at least one backend");
        assert!(duration > 0.0 && duration.is_finite());
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let cand = draw_crashes(&mut rng, n_backends, duration, cfg);
        FaultPlan::finish_seeded(cand, n_backends, Vec::new(), cfg.min_alive)
    }

    /// Derives a **layered** adversary from a seed: the crash layer is
    /// drawn first with exactly [`FaultPlan::from_seed`]'s draws (so a
    /// crash-only `LayeredFaultConfig` reproduces that plan bit for
    /// bit), then gray windows, partition episodes and correlated zone
    /// failures. Every layer draws a fixed number of RNG values per
    /// attempted event — partition membership spends `n_backends` key
    /// draws regardless of the realized side size — so plans are stable
    /// under config tweaks that do not change the draw counts.
    pub fn from_seed_layered(
        seed: u64,
        n_backends: usize,
        duration: f64,
        cfg: &LayeredFaultConfig,
    ) -> FaultPlan {
        assert!(n_backends > 0, "need at least one backend");
        assert!(duration > 0.0 && duration.is_finite());
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut cand = draw_crashes(&mut rng, n_backends, duration, &cfg.crashes);

        for _ in 0..cfg.gray {
            let at = duration * rng.gen_range(0.1..0.9);
            let backend = rng.gen_range(0..n_backends);
            let (lo, hi) = (cfg.gray_factor.0.max(1.0), cfg.gray_factor.1.max(1.0));
            let factor = if hi > lo { rng.gen_range(lo..hi) } else { lo };
            let len = cfg.gray_duration.max(0.0) * rng.gen_range(0.5..1.5);
            cand.push(FaultEvent::Degrade {
                backend,
                at,
                factor,
            });
            cand.push(FaultEvent::Restore {
                backend,
                at: at + len,
            });
        }

        let mut sides: Vec<Vec<usize>> = Vec::with_capacity(cfg.partitions);
        if n_backends > 1 {
            for _ in 0..cfg.partitions {
                let at = duration * rng.gen_range(0.1..0.9);
                let len = cfg.partition_duration.max(0.0) * rng.gen_range(0.5..1.5);
                let size = rng.gen_range(1..n_backends);
                // Fixed draw count: rank every backend, cut the `size`
                // lowest keys — the side size never changes how much RNG
                // the episode consumes.
                let mut keys: Vec<(u64, usize)> = (0..n_backends)
                    .map(|b| (rng.gen_range(0..=u64::MAX), b))
                    .collect();
                keys.sort_unstable();
                let mut side: Vec<usize> = keys[..size].iter().map(|&(_, b)| b).collect();
                side.sort_unstable();
                let id = sides.len() as u32;
                sides.push(side);
                cand.push(FaultEvent::Partition { id, at });
                cand.push(FaultEvent::Heal { id, at: at + len });
            }
        }

        if cfg.zones >= 2 {
            for _ in 0..cfg.zone_failures {
                let at = duration * rng.gen_range(0.1..0.9);
                let zone = rng.gen_range(0..cfg.zones);
                let delay = cfg.zone_mttr.max(0.0) * rng.gen_range(0.5..1.5);
                for backend in (0..n_backends).filter(|b| b % cfg.zones == zone) {
                    cand.push(FaultEvent::Crash { backend, at });
                    cand.push(FaultEvent::Recover {
                        backend,
                        at: at + delay,
                        catchup_cost: cfg.crashes.catchup_cost.max(0.0),
                    });
                }
            }
        }

        FaultPlan::finish_seeded(cand, n_backends, sides, cfg.crashes.min_alive)
    }

    /// The validated events in time order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The cluster size the plan was validated against.
    pub fn n_backends(&self) -> usize {
        self.n_backends
    }

    /// The registered partition sides, indexed by partition id.
    pub fn partition_sides(&self) -> &[Vec<usize>] {
        &self.partition_sides
    }

    /// The backends partition `id` cuts off.
    pub fn partition_side(&self, id: u32) -> &[usize] {
        &self.partition_sides[id as usize]
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the plan schedules nothing (the driver then reduces to
    /// plain open-loop behaviour).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// The crash layer's candidate draws — shared verbatim by
/// [`FaultPlan::from_seed`] and [`FaultPlan::from_seed_layered`] so
/// both consume the RNG identically.
fn draw_crashes(
    rng: &mut ChaCha8Rng,
    n_backends: usize,
    duration: f64,
    cfg: &FaultInjectionConfig,
) -> Vec<FaultEvent> {
    let mut cand: Vec<FaultEvent> = Vec::with_capacity(cfg.crashes * 2);
    for _ in 0..cfg.crashes {
        let at = duration * rng.gen_range(0.1..0.9);
        let backend = rng.gen_range(0..n_backends);
        cand.push(FaultEvent::Crash { backend, at });
        if cfg.recover {
            let delay = cfg.mttr.max(0.0) * rng.gen_range(0.5..1.5);
            cand.push(FaultEvent::Recover {
                backend,
                at: at + delay,
                catchup_cost: cfg.catchup_cost.max(0.0),
            });
        }
    }
    cand
}

/// Driver knobs for [`run_open_faults`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultConfig {
    /// ETL throughput model pricing the online repair's data movement
    /// (Eq. 27 bytes through the Figure 4(d) phases).
    pub etl: EtlCostModel,
    /// Safety level an online repair restores: every class becomes
    /// processable by `min(repair_k + 1, survivors)` backends.
    pub repair_k: usize,
}

/// Why [`reroute`] could not produce a routing table. Callers keep the
/// previous scheduler (a deterministic degraded mode) and the failure
/// is tallied in [`RepairTally::failures`] — the chaos harness asserts
/// it never actually happens under generated plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RerouteError {
    /// No backend is both alive and reachable — nothing to repair onto.
    NoRoutableBackend,
    /// The online repair ran but some weighted class still has no
    /// capable routable backend.
    RepairIncomplete,
}

impl std::fmt::Display for RerouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RerouteError::NoRoutableBackend => {
                write!(f, "no backend is both alive and reachable")
            }
            RerouteError::RepairIncomplete => {
                write!(f, "online repair left a weighted class unroutable")
            }
        }
    }
}

impl std::error::Error for RerouteError {}

/// Running account of [`reroute`]'s online repairs across a fault run.
#[derive(Debug, Clone)]
pub(crate) struct RepairTally {
    /// Online repairs triggered by unroutable classes.
    pub repairs: usize,
    /// Total seconds the survivors were paused for repair ETL.
    pub pause_secs: f64,
    /// Total bytes the repairs re-replicated (Eq. 27).
    pub moved_bytes: u64,
    /// Reroutes that returned [`RerouteError`].
    pub failures: usize,
    /// False once any post-repair allocation missed the
    /// `min(repair_k, survivors − 1)` safety level.
    pub safety_ok: bool,
    /// Emit obs counters/events (sharded component replays pass false
    /// so the merged run publishes once).
    pub publish: bool,
}

impl RepairTally {
    pub(crate) fn new(publish: bool) -> Self {
        RepairTally {
            repairs: 0,
            pause_secs: 0.0,
            moved_bytes: 0,
            failures: 0,
            safety_ok: true,
            publish,
        }
    }
}

/// Rebuilds routing for the current reachability (`routable[b]` = alive
/// and not partitioned away), repairing the allocation online when a
/// weighted class lost its last routable replica. Shared between
/// [`run_open_faults`] and [`crate::resilience::run_open_resilient`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn reroute(
    at: f64,
    current: &mut Allocation,
    cls: &Classification,
    cluster: &ClusterSpec,
    catalog: &Catalog,
    routable: &[bool],
    fcfg: &FaultConfig,
    free_at: &mut [f64],
    tally: &mut RepairTally,
) -> Result<Scheduler, RerouteError> {
    let failed: Vec<usize> = (0..routable.len()).filter(|&b| !routable[b]).collect();
    if failed.is_empty() {
        return Ok(Scheduler::new(current, cls));
    }
    if let Some(s) = Scheduler::for_survivors(current, cls, cluster, &failed) {
        return Ok(s);
    }
    // Some weighted class has no capable survivor: repair the
    // surviving sub-allocation and graft the grown fragment sets
    // back into the full-width allocation.
    tally.repairs += 1;
    let survivors: Vec<usize> = (0..routable.len()).filter(|&b| routable[b]).collect();
    let failed_ids: Vec<BackendId> = failed.iter().map(|&b| BackendId(b as u32)).collect();
    let Some(surv_cluster) = ksafety::surviving_cluster(cluster, &failed_ids) else {
        tally.failures += 1;
        return Err(RerouteError::NoRoutableBackend);
    };
    let mut restricted = current.restrict(&survivors);
    let report = ksafety::repair_report(&mut restricted, cls, &surv_cluster, fcfg.repair_k);
    let want = fcfg.repair_k.min(surv_cluster.len().saturating_sub(1));
    if ksafety::class_safety(&restricted, cls) < want {
        tally.safety_ok = false;
    }
    let before = current.clone();
    for (nb, &b) in survivors.iter().enumerate() {
        current.fragments[b] = restricted.fragments[nb].clone();
    }
    // Price the movement with Eq. 27 against the pre-repair state
    // and the Figure 4(d) ETL phase model: serial preparation plus
    // the slowest node's transfer + load.
    let per_node: Vec<u64> = survivors
        .iter()
        .map(|&b| move_cost(current, b, &before, b, catalog))
        .collect();
    let moved: u64 = per_node.iter().sum();
    let pause = if moved == 0 {
        0.0
    } else {
        let slowest = per_node
            .iter()
            .map(|&bytes| {
                bytes as f64 / fcfg.etl.transfer_bytes_per_sec
                    + bytes as f64 / fcfg.etl.load_bytes_per_sec
            })
            .fold(0.0, f64::max);
        fcfg.etl.fixed_overhead_secs + moved as f64 / fcfg.etl.prep_bytes_per_sec + slowest
    };
    for &b in &survivors {
        free_at[b] = free_at[b].max(at) + pause;
    }
    tally.pause_secs += pause;
    tally.moved_bytes += moved;
    if tally.publish {
        qcpa_obs::global().counter("sim.fault.repairs").inc();
        qcpa_obs::event!(qcpa_obs::Level::Info, "sim.fault", "repair", {
            "at" => at,
            "moved_bytes" => moved,
            "pause_secs" => pause,
            "grants" => report.grants,
        });
    }
    match Scheduler::for_survivors(current, cls, cluster, &failed) {
        Some(s) => Ok(s),
        None => {
            tally.failures += 1;
            Err(RerouteError::RepairIncomplete)
        }
    }
}

/// One per-backend work unit of a request (the backend it runs on is
/// keyed by the per-backend in-flight lists).
#[derive(Debug, Clone, Copy)]
struct Leg {
    backend: usize,
    end: f64,
    svc: f64,
    voided: bool,
    primary: bool,
}

/// A request's lifetime across dispatches and re-dispatches. Legs live
/// in the run's shared [`LegArena`]; the request holds only the chain
/// head.
#[derive(Debug, Clone, Copy)]
struct OpenReq {
    arrival: f64,
    class: ClassId,
    kind: QueryKind,
    service: f64,
    legs: LegList,
    redispatches: u32,
}

/// Result of an open-loop run under a fault plan.
#[derive(Debug, Clone)]
pub struct FaultReport {
    /// `(arrival, response)` per completed request, in arrival order.
    /// Responses of re-queued requests span their full lifetime — from
    /// the original arrival to the final completion after the crash.
    pub responses: Vec<(f64, f64)>,
    /// Mean response time in seconds.
    pub mean_response: f64,
    /// 95th percentile response time (nearest-rank, as in
    /// [`crate::engine::run_open`]).
    pub p95_response: f64,
    /// Per-backend busy seconds — only work actually performed: the
    /// unexecuted remainder of voided legs is refunded.
    pub busy: Vec<f64>,
    /// Per-backend utilization over the observation window.
    pub utilization: Vec<f64>,
    /// Requests that completed (every request, unless a zero-weight
    /// class lost all replicas and nothing repaired it).
    pub completed: usize,
    /// Requests that never completed.
    pub lost: usize,
    /// Requests re-queued by crashes (counted once per re-dispatch).
    pub redispatched: usize,
    /// Crash events applied.
    pub crashes: usize,
    /// Recovery events applied.
    pub recoveries: usize,
    /// Online repairs triggered by unroutable classes.
    pub repairs: usize,
    /// Total seconds the survivors were paused for repair ETL.
    pub repair_pause_secs: f64,
    /// Total bytes the repairs re-replicated (Eq. 27).
    pub repair_moved_bytes: u64,
    /// Gray-failure windows opened ([`FaultEvent::Degrade`] applied).
    pub gray_windows: usize,
    /// Network partitions activated.
    pub partitions: usize,
    /// Network partitions healed.
    pub heals: usize,
    /// Reroutes that failed even after online repair (the run keeps the
    /// previous routing table; zero under every generated plan).
    pub reroute_failures: usize,
    /// False if any online repair left a weighted class below the
    /// `min(repair_k, survivors − 1)` safety level.
    pub post_repair_safety_ok: bool,
    /// `(time, routable backends)` after each applied fault event,
    /// starting with `(0, n)` — the nodes-available timeline of the
    /// availability figure. A backend counts while it is both alive and
    /// not cut off by a partition, so for crash-only plans this is the
    /// live-backend timeline it always was.
    pub availability: Vec<(f64, usize)>,
}

impl FaultReport {
    /// The lowest number of simultaneously live backends.
    pub fn min_alive(&self) -> usize {
        self.availability.iter().map(|&(_, n)| n).min().unwrap_or(0)
    }

    /// The worst response time (the availability gap a crash opens).
    pub fn max_response(&self) -> f64 {
        self.responses.iter().map(|&(_, r)| r).fold(0.0, f64::max)
    }
}

/// Event-level statistics of a fault-driven run — everything the event
/// arms accumulate, shared by the fault and resilience engines. Under a
/// sharded run every component applies the full event schedule, so
/// these are identical across components (except `redispatched`, which
/// is request-driven and sums).
#[derive(Debug, Clone)]
pub(crate) struct FaultStats {
    pub crashes: usize,
    pub recoveries: usize,
    pub gray_windows: usize,
    pub partitions: usize,
    pub heals: usize,
    pub redispatched: usize,
    pub tally: RepairTally,
    pub availability: Vec<(f64, usize)>,
}

impl FaultStats {
    pub(crate) fn new(n: usize, publish: bool) -> Self {
        FaultStats {
            crashes: 0,
            recoveries: 0,
            gray_windows: 0,
            partitions: 0,
            heals: 0,
            redispatched: 0,
            tally: RepairTally::new(publish),
            availability: vec![(0.0, n)],
        }
    }
}

/// Raw outcome of [`fault_core`]: per-request completions in arrival
/// order plus per-backend busy time and the event statistics — exactly
/// what the sharded merge needs to rebuild the unsharded report.
pub(crate) struct FaultCore {
    /// `(arrival, completion time)` per request, in arrival order;
    /// `None` marks a lost request.
    pub completions: Vec<(f64, Option<f64>)>,
    pub busy: Vec<f64>,
    pub stats: FaultStats,
}

/// Records a sampled request's lifetime from the fault-run arena: a
/// `request` root spanning arrival → completion (arrival only, if
/// lost), one `leg` child per dispatch on that leg's backend track,
/// with voided legs and the re-dispatch count annotated.
fn trace_fault_request(
    tr: &mut qcpa_obs::Tracer,
    req: u64,
    r: &OpenReq,
    leg_arena: &LegArena<Leg>,
    completion: Option<f64>,
    fault_track: u32,
) {
    let name = match r.kind {
        QueryKind::Read => "read",
        QueryKind::Update => "update",
    };
    let track = leg_arena
        .iter(r.legs)
        .next()
        .map_or(fault_track, |l| l.backend as u32);
    let root = tr
        .tree
        .begin(tr.span_id(req, 0), None, "request", name, track, r.arrival);
    tr.tree.arg(root, "request", req);
    tr.tree.arg(root, "class", r.class.0);
    tr.tree.arg(root, "redispatches", r.redispatches);
    if completion.is_none() {
        tr.tree.arg(root, "lost", "true");
    }
    for (i, leg) in leg_arena.iter(r.legs).enumerate() {
        let s = tr.tree.begin(
            tr.span_id(req, 1 + i as u64),
            Some(root),
            "service",
            "leg",
            leg.backend as u32,
            leg.end - leg.svc,
        );
        tr.tree.arg(s, "backend", leg.backend);
        if leg.voided {
            tr.tree.arg(s, "voided", "true");
        }
        tr.tree.end(s, leg.end);
    }
    tr.tree.end(root, completion.unwrap_or(r.arrival));
}

/// Runs timed arrivals through the scheduler while applying `plan`'s
/// crashes and recoveries. Requests must be sorted by arrival time;
/// fault events scheduled at or before an arrival are applied first, and
/// events past the last arrival are drained at the end (they can still
/// void queued work). With an empty plan the responses equal
/// [`crate::engine::run_open`]'s exactly.
#[allow(clippy::too_many_arguments)]
pub fn run_open_faults(
    alloc: &Allocation,
    cls: &Classification,
    cluster: &ClusterSpec,
    catalog: &Catalog,
    requests: &[Request],
    warmup_backlog: f64,
    cfg: &SimConfig,
    plan: &FaultPlan,
    fcfg: &FaultConfig,
) -> FaultReport {
    run_open_faults_traced(
        alloc,
        cls,
        cluster,
        catalog,
        requests,
        warmup_backlog,
        cfg,
        plan,
        fcfg,
        None,
    )
}

/// [`run_open_faults`] with causal tracing. Sampled requests (by
/// arrival index) record a `request` root with one `leg` span per
/// dispatch (voided legs and re-dispatches annotated); crash/recover
/// events and re-dispatches become instant marks on a dedicated
/// `faults` track (`tid` = cluster size).
#[allow(clippy::too_many_arguments)]
pub fn run_open_faults_traced(
    alloc: &Allocation,
    cls: &Classification,
    cluster: &ClusterSpec,
    catalog: &Catalog,
    requests: &[Request],
    warmup_backlog: f64,
    cfg: &SimConfig,
    plan: &FaultPlan,
    fcfg: &FaultConfig,
    tracer: Option<&mut qcpa_obs::Tracer>,
) -> FaultReport {
    let core = fault_core(
        alloc,
        cls,
        cluster,
        catalog,
        requests,
        warmup_backlog,
        cfg,
        plan,
        fcfg,
        tracer,
        true,
    );
    assemble_fault_report(requests, core)
}

/// The fault engine proper: replays arrivals against the layered event
/// schedule and returns raw per-request completions plus event
/// statistics. `publish = false` suppresses obs event emission — the
/// sharded driver runs one core per backend component and publishes
/// once from the merged result.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fault_core(
    alloc: &Allocation,
    cls: &Classification,
    cluster: &ClusterSpec,
    catalog: &Catalog,
    requests: &[Request],
    warmup_backlog: f64,
    cfg: &SimConfig,
    plan: &FaultPlan,
    fcfg: &FaultConfig,
    mut tracer: Option<&mut qcpa_obs::Tracer>,
    publish: bool,
) -> FaultCore {
    let _span = qcpa_obs::span("sim", "run_open_faults");
    let n = cluster.len();
    let fault_track = n as u32;
    if let Some(tr) = tracer.as_deref_mut() {
        if tr.enabled() {
            for b in 0..n {
                tr.tree.name_track(b as u32, format!("backend {b}"));
            }
            tr.tree.name_track(fault_track, "faults");
        }
    }
    assert_eq!(
        plan.n_backends(),
        n,
        "fault plan validated for a different cluster size"
    );

    let mut current = alloc.clone();
    let mut alive = vec![true; n];
    // Gray-failure service multiplier per backend; 1.0 when healthy.
    // Applied at dispatch, so `x * 1.0` keeps healthy runs bit-exact.
    let mut slow = vec![1.0f64; n];
    // Backends cut off by an active partition: alive, but unroutable.
    let mut cut = vec![false; n];
    let mut free_at = vec![warmup_backlog.max(0.0); n];
    let mut busy = vec![0.0f64; n];
    let mut arena: Vec<OpenReq> = Vec::with_capacity(requests.len());
    let mut leg_arena: LegArena<Leg> = LegArena::with_capacity(requests.len() * 2);
    let mut inflight: Vec<Vec<(usize, LegRef)>> = vec![Vec::new(); n];
    let mut scheduler = Scheduler::new(&current, cls);
    let mut profile = ServiceProfile::new(&current, cluster, catalog, cfg.locality);

    let mut stats = FaultStats::new(n, publish);

    fn routable_of(alive: &[bool], cut: &[bool]) -> Vec<bool> {
        alive
            .iter()
            .zip(cut.iter())
            .map(|(&a, &c)| a && !c)
            .collect()
    }

    // Dispatches request `idx` at time `t`, appending its legs. Returns
    // false if no backend could serve it.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_one(
        idx: usize,
        t: f64,
        scheduler: &Scheduler,
        profile: &ServiceProfile,
        cfg: &SimConfig,
        arena: &mut [OpenReq],
        leg_arena: &mut LegArena<Leg>,
        inflight: &mut [Vec<(usize, LegRef)>],
        free_at: &mut [f64],
        busy: &mut [f64],
        slow: &[f64],
    ) -> bool {
        let (class, kind, service) = {
            let r = &arena[idx];
            (r.class, r.kind, r.service)
        };
        match kind {
            QueryKind::Read => {
                let routed = scheduler.route_read_with(class, |b| (free_at[b] - t).max(0.0));
                let Some(b) = routed else { return false };
                let svc = profile.effective(b, service) * slow[b];
                let end = free_at[b].max(t) + svc;
                free_at[b] = end;
                busy[b] += svc;
                let lref = leg_arena.push(
                    &mut arena[idx].legs,
                    Leg {
                        backend: b,
                        end,
                        svc,
                        voided: false,
                        primary: true,
                    },
                );
                inflight[b].push((idx, lref));
                true
            }
            QueryKind::Update => {
                let targets = scheduler.route_update(class).to_vec();
                if targets.is_empty() {
                    return false;
                }
                let sync = match cfg.propagation {
                    UpdatePropagation::Rowa => {
                        1.0 + cfg.rowa_overhead * (targets.len() as f64 - 1.0)
                    }
                    _ => 1.0,
                };
                for (i, &b) in targets.iter().enumerate() {
                    let mult = match cfg.propagation {
                        UpdatePropagation::Lazy { batching_discount } if i > 0 => batching_discount,
                        _ => sync,
                    };
                    let svc = profile.effective(b, service) * mult * slow[b];
                    let end = free_at[b].max(t) + svc;
                    free_at[b] = end;
                    busy[b] += svc;
                    let lref = leg_arena.push(
                        &mut arena[idx].legs,
                        Leg {
                            backend: b,
                            end,
                            svc,
                            voided: false,
                            primary: i == 0,
                        },
                    );
                    inflight[b].push((idx, lref));
                }
                true
            }
        }
    }

    let events = plan.events();
    let mut ev_i = 0usize;
    let mut apply_event = |e: &FaultEvent,
                           arena: &mut Vec<OpenReq>,
                           leg_arena: &mut LegArena<Leg>,
                           inflight: &mut Vec<Vec<(usize, LegRef)>>,
                           free_at: &mut Vec<f64>,
                           busy: &mut Vec<f64>,
                           alive: &mut Vec<bool>,
                           slow: &mut Vec<f64>,
                           current: &mut Allocation,
                           scheduler: &mut Scheduler,
                           profile: &mut ServiceProfile,
                           tracer: &mut Option<&mut qcpa_obs::Tracer>| {
        match *e {
            FaultEvent::Crash { backend, at } => {
                alive[backend] = false;
                stats.crashes += 1;
                // Void the legs still running or queued on the casualty
                // and refund their unperformed work.
                let entries = std::mem::take(&mut inflight[backend]);
                let mut candidates: Vec<usize> = Vec::new();
                let mut voided = 0usize;
                for (ri, lref) in entries {
                    let leg = *leg_arena.get(lref);
                    if leg.end > at {
                        leg_arena.get_mut(lref).voided = true;
                        busy[backend] -= (leg.end - at).min(leg.svc);
                        candidates.push(ri);
                        voided += 1;
                    }
                }
                candidates.sort_unstable();
                candidates.dedup();
                if publish {
                    qcpa_obs::event!(qcpa_obs::Level::Info, "sim.fault", "crash", {
                        "backend" => backend,
                        "at" => at,
                        "voided_legs" => voided,
                    });
                }
                if let Some(tr) = tracer.as_deref_mut() {
                    if tr.enabled() {
                        let id = tr.span_id(u64::MAX - backend as u64, at.to_bits());
                        tr.tree.mark(
                            id,
                            None,
                            "fault",
                            "crash",
                            fault_track,
                            at,
                            vec![("backend", backend.into()), ("voided_legs", voided.into())],
                        );
                    }
                }
                if let Ok(s) = reroute(
                    at,
                    current,
                    cls,
                    cluster,
                    catalog,
                    &routable_of(alive, &cut),
                    fcfg,
                    free_at,
                    &mut stats.tally,
                ) {
                    *scheduler = s;
                }
                *profile = ServiceProfile::new(current, cluster, catalog, cfg.locality);
                // Re-queue the requests the crash voided, in arrival
                // order, through the post-crash router.
                for ri in candidates {
                    let needs = {
                        let r = &arena[ri];
                        match (r.kind, cfg.propagation) {
                            (QueryKind::Read, _) | (QueryKind::Update, UpdatePropagation::Rowa) => {
                                leg_arena.iter(r.legs).all(|l| l.voided)
                            }
                            (QueryKind::Update, _) => leg_arena
                                .iter(r.legs)
                                .filter(|l| l.primary)
                                .last()
                                .is_none_or(|l| l.voided),
                        }
                    };
                    if !needs {
                        continue;
                    }
                    arena[ri].redispatches += 1;
                    stats.redispatched += 1;
                    if let Some(tr) = tracer.as_deref_mut() {
                        if tr.admit(ri as u64) {
                            let id =
                                tr.span_id(ri as u64, 1000 + u64::from(arena[ri].redispatches));
                            tr.tree.mark(
                                id,
                                None,
                                "fault",
                                "redispatch",
                                fault_track,
                                at,
                                vec![
                                    ("request", ri.into()),
                                    ("attempt", arena[ri].redispatches.into()),
                                ],
                            );
                        }
                    }
                    dispatch_one(
                        ri, at, scheduler, profile, cfg, arena, leg_arena, inflight, free_at, busy,
                        slow,
                    );
                }
            }
            FaultEvent::Recover {
                backend,
                at,
                catchup_cost,
            } => {
                alive[backend] = true;
                stats.recoveries += 1;
                free_at[backend] = at + catchup_cost;
                inflight[backend].clear();
                if publish {
                    qcpa_obs::event!(qcpa_obs::Level::Info, "sim.fault", "recover", {
                        "backend" => backend,
                        "at" => at,
                        "catchup_secs" => catchup_cost,
                    });
                }
                if let Some(tr) = tracer.as_deref_mut() {
                    if tr.enabled() {
                        let id = tr.span_id(u64::MAX - backend as u64, at.to_bits() ^ 1);
                        tr.tree.mark(
                            id,
                            None,
                            "fault",
                            "recover",
                            fault_track,
                            at,
                            vec![
                                ("backend", backend.into()),
                                ("catchup_secs", catchup_cost.into()),
                            ],
                        );
                    }
                }
                if let Ok(s) = reroute(
                    at,
                    current,
                    cls,
                    cluster,
                    catalog,
                    &routable_of(alive, &cut),
                    fcfg,
                    free_at,
                    &mut stats.tally,
                ) {
                    *scheduler = s;
                }
                *profile = ServiceProfile::new(current, cluster, catalog, cfg.locality);
            }
            FaultEvent::Degrade {
                backend,
                at,
                factor,
            } => {
                // Gray failure: the backend keeps serving, but every leg
                // dispatched from now on takes `factor` times as long.
                // In-flight legs keep their committed service time.
                slow[backend] = factor;
                stats.gray_windows += 1;
                if publish {
                    qcpa_obs::event!(qcpa_obs::Level::Info, "sim.fault", "degrade", {
                        "backend" => backend,
                        "at" => at,
                        "factor" => factor,
                    });
                }
                if let Some(tr) = tracer.as_deref_mut() {
                    if tr.enabled() {
                        let id = tr.span_id(u64::MAX - backend as u64, at.to_bits() ^ 2);
                        tr.tree.mark(
                            id,
                            None,
                            "fault",
                            "degrade",
                            fault_track,
                            at,
                            vec![("backend", backend.into()), ("factor", factor.into())],
                        );
                    }
                }
            }
            FaultEvent::Restore { backend, at } => {
                slow[backend] = 1.0;
                if publish {
                    qcpa_obs::event!(qcpa_obs::Level::Info, "sim.fault", "restore", {
                        "backend" => backend,
                        "at" => at,
                    });
                }
                if let Some(tr) = tracer.as_deref_mut() {
                    if tr.enabled() {
                        let id = tr.span_id(u64::MAX - backend as u64, at.to_bits() ^ 3);
                        tr.tree.mark(
                            id,
                            None,
                            "fault",
                            "restore",
                            fault_track,
                            at,
                            vec![("backend", backend.into())],
                        );
                    }
                }
            }
            FaultEvent::Partition { id, at } => {
                // Link cut, not death: nothing is voided or refunded —
                // in-flight legs on the cut side still complete, the
                // side is just excluded from new routing until healed.
                for &m in plan.partition_side(id) {
                    cut[m] = true;
                }
                stats.partitions += 1;
                if publish {
                    qcpa_obs::event!(qcpa_obs::Level::Info, "sim.fault", "partition", {
                        "partition" => id,
                        "at" => at,
                        "cut" => plan.partition_side(id).len(),
                    });
                }
                if let Some(tr) = tracer.as_deref_mut() {
                    if tr.enabled() {
                        let id_span = tr.span_id(u64::MAX / 2 - u64::from(id), at.to_bits());
                        tr.tree.mark(
                            id_span,
                            None,
                            "fault",
                            "partition",
                            fault_track,
                            at,
                            vec![
                                ("partition", id.into()),
                                ("cut", plan.partition_side(id).len().into()),
                            ],
                        );
                    }
                }
                if let Ok(s) = reroute(
                    at,
                    current,
                    cls,
                    cluster,
                    catalog,
                    &routable_of(alive, &cut),
                    fcfg,
                    free_at,
                    &mut stats.tally,
                ) {
                    *scheduler = s;
                }
                *profile = ServiceProfile::new(current, cluster, catalog, cfg.locality);
            }
            FaultEvent::Heal { id, at } => {
                for &m in plan.partition_side(id) {
                    cut[m] = false;
                }
                stats.heals += 1;
                if publish {
                    qcpa_obs::event!(qcpa_obs::Level::Info, "sim.fault", "heal", {
                        "partition" => id,
                        "at" => at,
                    });
                }
                if let Some(tr) = tracer.as_deref_mut() {
                    if tr.enabled() {
                        let id_span = tr.span_id(u64::MAX / 2 - u64::from(id), at.to_bits() ^ 1);
                        tr.tree.mark(
                            id_span,
                            None,
                            "fault",
                            "heal",
                            fault_track,
                            at,
                            vec![("partition", id.into())],
                        );
                    }
                }
                if let Ok(s) = reroute(
                    at,
                    current,
                    cls,
                    cluster,
                    catalog,
                    &routable_of(alive, &cut),
                    fcfg,
                    free_at,
                    &mut stats.tally,
                ) {
                    *scheduler = s;
                }
                *profile = ServiceProfile::new(current, cluster, catalog, cfg.locality);
            }
        }
        let routable = alive
            .iter()
            .zip(cut.iter())
            .filter(|&(&a, &c)| a && !c)
            .count();
        stats.availability.push((e.at(), routable));
    };

    let mut last_t = 0.0f64;
    for r in requests {
        debug_assert!(r.arrival >= last_t, "arrivals must be sorted");
        last_t = r.arrival;
        while ev_i < events.len() && events[ev_i].at() <= r.arrival {
            apply_event(
                &events[ev_i],
                &mut arena,
                &mut leg_arena,
                &mut inflight,
                &mut free_at,
                &mut busy,
                &mut alive,
                &mut slow,
                &mut current,
                &mut scheduler,
                &mut profile,
                &mut tracer,
            );
            ev_i += 1;
        }
        let idx = arena.len();
        arena.push(OpenReq {
            arrival: r.arrival,
            class: r.class,
            kind: r.kind,
            service: r.service,
            legs: LegList::new(),
            redispatches: 0,
        });
        dispatch_one(
            idx,
            r.arrival,
            &scheduler,
            &profile,
            cfg,
            &mut arena,
            &mut leg_arena,
            &mut inflight,
            &mut free_at,
            &mut busy,
            &slow,
        );
    }
    // Crashes scheduled past the last arrival still void queued work.
    while ev_i < events.len() {
        apply_event(
            &events[ev_i],
            &mut arena,
            &mut leg_arena,
            &mut inflight,
            &mut free_at,
            &mut busy,
            &mut alive,
            &mut slow,
            &mut current,
            &mut scheduler,
            &mut profile,
            &mut tracer,
        );
        ev_i += 1;
    }

    // Finalize: every non-voided leg ran to completion.
    let mut completions = Vec::with_capacity(arena.len());
    for (idx, r) in arena.iter().enumerate() {
        let completion = completion_of(r, &leg_arena, cfg);
        if let Some(tr) = tracer.as_deref_mut() {
            if tr.admit(idx as u64) {
                trace_fault_request(tr, idx as u64, r, &leg_arena, completion, fault_track);
            }
        }
        completions.push((r.arrival, completion));
    }

    FaultCore {
        completions,
        busy,
        stats,
    }
}

/// A request's completion time under the response rule of
/// [`crate::engine::run_open`]: reads complete on their (last
/// non-voided) leg; ROWA updates when every surviving replica leg ends;
/// other propagation modes on the primary leg.
fn completion_of(r: &OpenReq, leg_arena: &LegArena<Leg>, cfg: &SimConfig) -> Option<f64> {
    match (r.kind, cfg.propagation) {
        (QueryKind::Read, _) => leg_arena
            .iter(r.legs)
            .filter(|l| !l.voided)
            .last()
            .map(|l| l.end),
        (QueryKind::Update, UpdatePropagation::Rowa) => leg_arena
            .iter(r.legs)
            .filter(|l| !l.voided)
            .map(|l| l.end)
            .fold(None, |acc: Option<f64>, e| {
                Some(acc.map_or(e, |a| a.max(e)))
            }),
        (QueryKind::Update, _) => leg_arena
            .iter(r.legs)
            .filter(|l| l.primary && !l.voided)
            .last()
            .map(|l| l.end),
    }
}

/// Rebuilds the public [`FaultReport`] from a core's raw completions —
/// the histogram, mean and p95 replay in global arrival order, so a
/// merge of per-component cores assembles to the unsharded report bit
/// for bit. Publishes the run's obs counters.
pub(crate) fn assemble_fault_report(requests: &[Request], core: FaultCore) -> FaultReport {
    let FaultCore {
        completions,
        busy,
        stats,
    } = core;
    let mut responses = Vec::with_capacity(completions.len());
    let mut resp_hist = qcpa_obs::Histogram::new();
    let mut lost = 0usize;
    for &(arrival, completion) in &completions {
        match completion {
            Some(end) => {
                resp_hist.record(end - arrival);
                responses.push((arrival, end - arrival));
            }
            None => lost += 1,
        }
    }

    let mut resp: Vec<f64> = responses.iter().map(|&(_, r)| r).collect();
    let mean_response = if resp.is_empty() {
        0.0
    } else {
        resp.iter().sum::<f64>() / resp.len() as f64
    };
    let p95_response = nearest_rank(&mut resp, 0.95);
    let window = requests.last().map(|r| r.arrival).unwrap_or(0.0).max(1e-9);
    let utilization: Vec<f64> = busy.iter().map(|b| b / window).collect();

    let reg = qcpa_obs::global();
    reg.counter("sim.fault.requests").add(requests.len() as u64);
    reg.counter("sim.fault.lost").add(lost as u64);
    reg.counter("sim.fault.redispatched")
        .add(stats.redispatched as u64);
    reg.counter("sim.fault.crashes").add(stats.crashes as u64);
    reg.counter("sim.fault.recoveries")
        .add(stats.recoveries as u64);
    reg.counter("sim.fault.gray_windows")
        .add(stats.gray_windows as u64);
    reg.counter("sim.fault.partitions")
        .add(stats.partitions as u64);
    reg.merge_histogram("sim.fault.response_secs", &resp_hist);

    FaultReport {
        completed: responses.len(),
        responses,
        mean_response,
        p95_response,
        busy,
        utilization,
        lost,
        redispatched: stats.redispatched,
        crashes: stats.crashes,
        recoveries: stats.recoveries,
        repairs: stats.tally.repairs,
        repair_pause_secs: stats.tally.pause_secs,
        repair_moved_bytes: stats.tally.moved_bytes,
        gray_windows: stats.gray_windows,
        partitions: stats.partitions,
        heals: stats.heals,
        reroute_failures: stats.tally.failures,
        post_repair_safety_ok: stats.tally.safety_ok,
        availability: stats.availability,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_open;
    use crate::request::RequestStream;
    use qcpa_core::classify::QueryClass;
    use qcpa_core::greedy;

    fn workload() -> (Catalog, Classification, RequestStream) {
        let mut cat = Catalog::new();
        let a = cat.add_table("A", 4_000);
        let b = cat.add_table("B", 4_000);
        let cls = Classification::from_classes(vec![
            QueryClass::read(0, [a], 0.45),
            QueryClass::read(1, [b], 0.35),
            QueryClass::update(2, [a], 0.20),
        ])
        .unwrap();
        let stream = RequestStream::new(
            vec![45.0, 35.0, 20.0],
            vec![QueryKind::Read, QueryKind::Read, QueryKind::Update],
            vec![0.01; 3],
        );
        (cat, cls, stream)
    }

    #[test]
    fn empty_plan_matches_run_open_exactly() {
        let (cat, cls, stream) = workload();
        let cluster = ClusterSpec::homogeneous(3);
        let alloc = greedy::allocate(&cls, &cat, &cluster);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let reqs = stream.sample_poisson(80.0, 30.0, 0.0, &mut rng);
        let cfg = SimConfig::default();
        let base = run_open(&alloc, &cls, &cluster, &cat, &reqs, 0.0, &cfg);
        let plan = FaultPlan::new(Vec::new(), 3).unwrap();
        let rep = run_open_faults(
            &alloc,
            &cls,
            &cluster,
            &cat,
            &reqs,
            0.0,
            &cfg,
            &plan,
            &FaultConfig::default(),
        );
        assert_eq!(rep.lost, 0);
        assert_eq!(rep.responses.len(), base.responses.len());
        for (f, o) in rep.responses.iter().zip(&base.responses) {
            assert_eq!(f.0.to_bits(), o.0.to_bits());
            assert_eq!(f.1.to_bits(), o.1.to_bits(), "at arrival {}", f.0);
        }
        for (f, o) in rep.busy.iter().zip(&base.busy) {
            assert!((f - o).abs() < 1e-9);
        }
    }

    #[test]
    fn seeded_plan_is_bit_identical_across_reruns() {
        let (cat, cls, stream) = workload();
        let cluster = ClusterSpec::homogeneous(4);
        let alloc = Allocation::full_replication(&cls, &cluster);
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let reqs = stream.sample_poisson(120.0, 40.0, 0.0, &mut rng);
        let cfg = SimConfig::default();
        let fic = FaultInjectionConfig {
            crashes: 3,
            ..Default::default()
        };
        let plan_a = FaultPlan::from_seed(99, 4, 40.0, &fic);
        let plan_b = FaultPlan::from_seed(99, 4, 40.0, &fic);
        assert_eq!(plan_a, plan_b);
        assert!(!plan_a.is_empty());
        let run = |plan: &FaultPlan| {
            run_open_faults(
                &alloc,
                &cls,
                &cluster,
                &cat,
                &reqs,
                0.0,
                &cfg,
                plan,
                &FaultConfig::default(),
            )
        };
        let ra = run(&plan_a);
        let rb = run(&plan_b);
        assert_eq!(ra.responses.len(), rb.responses.len());
        for (x, y) in ra.responses.iter().zip(&rb.responses) {
            assert_eq!(x.1.to_bits(), y.1.to_bits());
        }
        assert_eq!(ra.crashes, rb.crashes);
        assert_eq!(ra.availability, rb.availability);
    }

    #[test]
    fn crash_without_spare_replica_triggers_repair() {
        let (cat, cls, stream) = workload();
        let cluster = ClusterSpec::homogeneous(3);
        // Backend 0 is the sole replica of table A: crashing it strands
        // the weighted read/update classes on A until repair.
        let frags: Vec<qcpa_core::fragment::FragmentId> =
            cat.fragments().iter().map(|f| f.id).collect();
        let (a, b) = (frags[0], frags[1]);
        let mut alloc = Allocation::empty(cls.len(), 3);
        alloc.fragments[0].insert(a);
        alloc.fragments[1].insert(b);
        alloc.fragments[2].insert(b);
        alloc.assign[0][0] = 0.45;
        alloc.assign[1][1] = 0.20;
        alloc.assign[1][2] = 0.15;
        alloc.assign[2][0] = 0.20;
        alloc.validate(&cls, &cluster).unwrap();
        assert_eq!(ksafety::class_safety(&alloc, &cls), 0);
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let reqs = stream.sample_poisson(60.0, 30.0, 0.0, &mut rng);
        let plan = FaultPlan::new(
            vec![
                FaultEvent::Crash {
                    backend: 0,
                    at: 10.0,
                },
                FaultEvent::Recover {
                    backend: 0,
                    at: 14.0,
                    catchup_cost: 0.5,
                },
            ],
            3,
        )
        .unwrap();
        let rep = run_open_faults(
            &alloc,
            &cls,
            &cluster,
            &cat,
            &reqs,
            0.0,
            &SimConfig::default(),
            &plan,
            &FaultConfig::default(),
        );
        assert_eq!(rep.lost, 0, "repair keeps every request completable");
        assert_eq!(rep.repairs, 1, "the sole-replica crash must repair");
        assert!(rep.repair_moved_bytes > 0);
        assert!(rep.repair_pause_secs > 0.0);
        assert_eq!(rep.crashes, 1);
        assert_eq!(rep.recoveries, 1);
        assert_eq!(rep.min_alive(), 2);
    }

    #[test]
    fn plan_validation_rejects_bad_schedules() {
        use InvalidFaultPlan as E;
        let crash = |backend, at| FaultEvent::Crash { backend, at };
        let recover = |backend, at| FaultEvent::Recover {
            backend,
            at,
            catchup_cost: 0.0,
        };
        assert!(matches!(
            FaultPlan::new(vec![crash(5, 1.0)], 3),
            Err(E::UnknownBackend { backend: 5, .. })
        ));
        assert!(matches!(
            FaultPlan::new(vec![crash(0, 2.0), crash(1, 1.0)], 3),
            Err(E::Unsorted { index: 1 })
        ));
        assert!(matches!(
            FaultPlan::new(vec![crash(0, f64::NAN)], 3),
            Err(E::NonFinite { index: 0 })
        ));
        assert!(matches!(
            FaultPlan::new(vec![crash(0, 1.0), crash(0, 2.0)], 3),
            Err(E::DoubleCrash { backend: 0, .. })
        ));
        assert!(matches!(
            FaultPlan::new(vec![recover(0, 1.0)], 3),
            Err(E::RecoverAlive { backend: 0, .. })
        ));
        assert!(matches!(
            FaultPlan::new(vec![crash(0, 1.0)], 1),
            Err(E::AllBackendsDown { index: 0 })
        ));
        // A correct crash/recover cycle validates.
        assert!(FaultPlan::new(vec![crash(0, 1.0), recover(0, 2.0), crash(0, 3.0)], 2).is_ok());
    }

    #[test]
    fn from_seed_respects_min_alive() {
        for seed in 0..20 {
            let plan = FaultPlan::from_seed(
                seed,
                4,
                100.0,
                &FaultInjectionConfig {
                    crashes: 8,
                    recover: false,
                    min_alive: 2,
                    ..Default::default()
                },
            );
            let mut n_alive = 4i64;
            for e in plan.events() {
                match e {
                    FaultEvent::Crash { .. } => n_alive -= 1,
                    FaultEvent::Recover { .. } => n_alive += 1,
                    _ => {}
                }
                assert!(n_alive >= 2, "seed {seed}");
            }
        }
    }

    #[test]
    fn crash_only_layered_plan_equals_from_seed() {
        let fic = FaultInjectionConfig {
            crashes: 3,
            ..Default::default()
        };
        let layered = LayeredFaultConfig {
            crashes: fic,
            gray: 0,
            partitions: 0,
            zones: 0,
            zone_failures: 0,
            ..Default::default()
        };
        for seed in 0..20 {
            let a = FaultPlan::from_seed(seed, 4, 60.0, &fic);
            let b = FaultPlan::from_seed_layered(seed, 4, 60.0, &layered);
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn layered_plan_is_deterministic_and_layered() {
        let cfg = LayeredFaultConfig {
            gray: 2,
            partitions: 1,
            zones: 2,
            zone_failures: 1,
            ..Default::default()
        };
        let a = FaultPlan::from_seed_layered(7, 5, 60.0, &cfg);
        let b = FaultPlan::from_seed_layered(7, 5, 60.0, &cfg);
        assert_eq!(a, b);
        let has = |p: &FaultPlan, f: fn(&FaultEvent) -> bool| p.events().iter().any(f);
        assert!(has(&a, |e| matches!(e, FaultEvent::Degrade { .. })));
        assert!(has(&a, |e| matches!(e, FaultEvent::Partition { .. })));
        assert!(has(&a, |e| matches!(e, FaultEvent::Crash { .. })));
        assert_eq!(a.partition_sides().len(), 1);
        // Every Degrade/Partition has its matching Restore/Heal kept.
        let count = |f: fn(&FaultEvent) -> bool| a.events().iter().filter(|e| f(e)).count();
        assert_eq!(
            count(|e| matches!(e, FaultEvent::Degrade { .. })),
            count(|e| matches!(e, FaultEvent::Restore { .. }))
        );
        assert_eq!(
            count(|e| matches!(e, FaultEvent::Partition { .. })),
            count(|e| matches!(e, FaultEvent::Heal { .. }))
        );
    }

    #[test]
    fn layered_validation_rejects_bad_schedules() {
        use InvalidFaultPlan as E;
        let degrade = |backend, at, factor| FaultEvent::Degrade {
            backend,
            at,
            factor,
        };
        let restore = |backend, at| FaultEvent::Restore { backend, at };
        assert!(matches!(
            FaultPlan::new(vec![degrade(0, 1.0, 0.5)], 3),
            Err(E::BadDegradeFactor { index: 0 })
        ));
        assert!(matches!(
            FaultPlan::new(vec![degrade(0, 1.0, 2.0), degrade(0, 2.0, 3.0)], 3),
            Err(E::DoubleDegrade { backend: 0, .. })
        ));
        assert!(matches!(
            FaultPlan::new(vec![restore(1, 1.0)], 3),
            Err(E::RestoreHealthy { backend: 1, .. })
        ));
        assert!(matches!(
            FaultPlan::new(vec![FaultEvent::Partition { id: 0, at: 1.0 }], 3),
            Err(E::UnknownPartition { id: 0, .. })
        ));
        assert!(matches!(
            FaultPlan::with_partitions(Vec::new(), 3, vec![vec![0, 1, 2]]),
            Err(E::BadPartitionSide { id: 0 })
        ));
        assert!(matches!(
            FaultPlan::with_partitions(Vec::new(), 3, vec![vec![1, 0]]),
            Err(E::BadPartitionSide { id: 0 })
        ));
        let part = |id, at| FaultEvent::Partition { id, at };
        let heal = |id, at| FaultEvent::Heal { id, at };
        assert!(matches!(
            FaultPlan::with_partitions(vec![part(0, 1.0), part(0, 2.0)], 3, vec![vec![0]]),
            Err(E::DoublePartition { id: 0, .. })
        ));
        assert!(matches!(
            FaultPlan::with_partitions(
                vec![part(0, 1.0), part(1, 2.0)],
                3,
                vec![vec![0], vec![0, 1]]
            ),
            Err(E::OverlappingPartitions { backend: 0, .. })
        ));
        assert!(matches!(
            FaultPlan::with_partitions(vec![heal(0, 1.0)], 3, vec![vec![0]]),
            Err(E::HealUnpartitioned { id: 0, .. })
        ));
        // Partitioning one side then crashing the rest strands routing.
        assert!(matches!(
            FaultPlan::with_partitions(
                vec![
                    part(0, 1.0),
                    FaultEvent::Crash {
                        backend: 2,
                        at: 2.0
                    }
                ],
                3,
                vec![vec![0, 1]]
            ),
            Err(E::AllBackendsDown { index: 1 })
        ));
        // A full gray window + partition episode validates.
        assert!(FaultPlan::with_partitions(
            vec![
                degrade(0, 1.0, 2.0),
                part(0, 2.0),
                heal(0, 3.0),
                restore(0, 4.0)
            ],
            3,
            vec![vec![1, 2]]
        )
        .is_ok());
    }

    #[test]
    fn gray_window_slows_only_window_dispatches() {
        let (cat, cls, stream) = workload();
        let cluster = ClusterSpec::homogeneous(2);
        let alloc = Allocation::full_replication(&cls, &cluster);
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let reqs = stream.sample_poisson(60.0, 30.0, 0.0, &mut rng);
        let cfg = SimConfig::default();
        let run = |events: Vec<FaultEvent>| {
            let plan = FaultPlan::new(events, 2).unwrap();
            run_open_faults(
                &alloc,
                &cls,
                &cluster,
                &cat,
                &reqs,
                0.0,
                &cfg,
                &plan,
                &FaultConfig::default(),
            )
        };
        let healthy = run(Vec::new());
        let grayed = run(vec![
            FaultEvent::Degrade {
                backend: 0,
                at: 5.0,
                factor: 4.0,
            },
            FaultEvent::Restore {
                backend: 0,
                at: 20.0,
            },
        ]);
        assert_eq!(grayed.gray_windows, 1);
        assert_eq!(grayed.lost, 0);
        assert_eq!(grayed.responses.len(), healthy.responses.len());
        assert!(
            grayed.mean_response > healthy.mean_response,
            "a 4x gray window must slow the run: {} vs {}",
            grayed.mean_response,
            healthy.mean_response
        );
        assert!(grayed.busy[0] > healthy.busy[0]);
    }

    #[test]
    fn partition_cuts_routing_without_voiding() {
        let (cat, cls, stream) = workload();
        let cluster = ClusterSpec::homogeneous(3);
        let alloc = Allocation::full_replication(&cls, &cluster);
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let reqs = stream.sample_poisson(60.0, 30.0, 0.0, &mut rng);
        let cfg = SimConfig::default();
        let plan = FaultPlan::with_partitions(
            vec![
                FaultEvent::Partition { id: 0, at: 4.0 },
                FaultEvent::Heal { id: 0, at: 18.0 },
            ],
            3,
            vec![vec![2]],
        )
        .unwrap();
        let rep = run_open_faults(
            &alloc,
            &cls,
            &cluster,
            &cat,
            &reqs,
            0.0,
            &cfg,
            &plan,
            &FaultConfig::default(),
        );
        assert_eq!(rep.partitions, 1);
        assert_eq!(rep.heals, 1);
        assert_eq!(rep.lost, 0, "cut replicas lose no requests");
        assert_eq!(rep.redispatched, 0, "a cut voids nothing");
        assert_eq!(rep.crashes, 0);
        assert_eq!(rep.min_alive(), 2, "availability tracks routable");
        assert!(rep.post_repair_safety_ok);
        assert_eq!(rep.reroute_failures, 0);
    }

    #[test]
    fn partition_before_first_arrival_heals_back_to_healthy_run() {
        let (cat, cls, stream) = workload();
        let cluster = ClusterSpec::homogeneous(3);
        let alloc = Allocation::full_replication(&cls, &cluster);
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let mut reqs = stream.sample_poisson(60.0, 20.0, 0.0, &mut rng);
        // Shift all arrivals past the heal: the episode is over before
        // any request is routed, so the run equals the empty-plan run.
        for r in &mut reqs {
            r.arrival += 3.0;
        }
        let cfg = SimConfig::default();
        let empty = FaultPlan::new(Vec::new(), 3).unwrap();
        let base = run_open_faults(
            &alloc,
            &cls,
            &cluster,
            &cat,
            &reqs,
            0.0,
            &cfg,
            &empty,
            &FaultConfig::default(),
        );
        let plan = FaultPlan::with_partitions(
            vec![
                FaultEvent::Partition { id: 0, at: 1.0 },
                FaultEvent::Heal { id: 0, at: 2.0 },
            ],
            3,
            vec![vec![0, 1]],
        )
        .unwrap();
        let healed = run_open_faults(
            &alloc,
            &cls,
            &cluster,
            &cat,
            &reqs,
            0.0,
            &cfg,
            &plan,
            &FaultConfig::default(),
        );
        assert_eq!(healed.responses.len(), base.responses.len());
        for (x, y) in healed.responses.iter().zip(&base.responses) {
            assert_eq!(x.1.to_bits(), y.1.to_bits(), "heal must restore routing");
        }
        for (x, y) in healed.busy.iter().zip(&base.busy) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn zone_failure_crashes_all_members_at_one_instant() {
        let cfg = LayeredFaultConfig {
            crashes: FaultInjectionConfig {
                crashes: 0,
                ..Default::default()
            },
            gray: 0,
            partitions: 0,
            zones: 2,
            zone_failures: 1,
            ..Default::default()
        };
        // 6 backends, 2 zones: one draw fails 3 backends together (the
        // min_alive=1 filter keeps all three: 6 - 3 = 3 ≥ 1).
        let plan = FaultPlan::from_seed_layered(3, 6, 60.0, &cfg);
        let crash_ats: Vec<u64> = plan
            .events()
            .iter()
            .filter_map(|e| match e {
                FaultEvent::Crash { at, .. } => Some(at.to_bits()),
                _ => None,
            })
            .collect();
        assert_eq!(crash_ats.len(), 3, "{:?}", plan.events());
        assert!(crash_ats.windows(2).all(|w| w[0] == w[1]));
        let zones: Vec<usize> = plan
            .events()
            .iter()
            .filter_map(|e| match e {
                FaultEvent::Crash { backend, .. } => Some(backend % 2),
                _ => None,
            })
            .collect();
        assert!(zones.windows(2).all(|w| w[0] == w[1]), "one zone only");
    }
}
