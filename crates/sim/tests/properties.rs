//! Property-based tests of the simulator: work conservation, scheduler
//! sanity, and agreement with the analytical model on random workloads.

use proptest::prelude::*;
use qcpa_core::allocation::Allocation;
use qcpa_core::classify::{Classification, QueryClass};
use qcpa_core::cluster::ClusterSpec;
use qcpa_core::fragment::Catalog;
use qcpa_core::greedy;
use qcpa_core::journal::QueryKind;
use qcpa_sim::engine::{run_batch, run_open, SimConfig};
use qcpa_sim::request::RequestStream;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A random read/update workload over `nf` fragments.
fn build(weights: &[(f64, bool)]) -> Option<(Catalog, Classification, RequestStream)> {
    let mut cat = Catalog::new();
    let frags: Vec<_> = (0..weights.len())
        .map(|i| cat.add_table(format!("T{i}"), 100))
        .collect();
    let total: f64 = weights.iter().map(|(w, _)| w).sum();
    let classes: Vec<QueryClass> = weights
        .iter()
        .enumerate()
        .map(|(i, &(w, upd))| {
            if upd {
                QueryClass::update(i as u32, [frags[i]], w / total)
            } else {
                QueryClass::read(i as u32, [frags[i]], w / total)
            }
        })
        .collect();
    let cls = Classification::from_classes(classes).ok()?;
    let stream = RequestStream::new(
        weights.iter().map(|&(w, _)| w).collect(),
        weights
            .iter()
            .map(|&(_, u)| {
                if u {
                    QueryKind::Update
                } else {
                    QueryKind::Read
                }
            })
            .collect(),
        vec![0.01; weights.len()],
    );
    Some((cat, cls, stream))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Work conservation on full replication: total busy time equals
    /// read service + update service × replicas, exactly.
    #[test]
    fn batch_conserves_work(
        weights in proptest::collection::vec((0.05f64..1.0, proptest::bool::weighted(0.3)), 2..6),
        n in 1usize..6,
    ) {
        let Some((cat, cls, stream)) = build(&weights) else { return Ok(()); };
        let cluster = ClusterSpec::homogeneous(n);
        let full = Allocation::full_replication(&cls, &cluster);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let reqs = stream.sample_batch(2_000, 0.0, &mut rng);
        let rep = run_batch(&full, &cls, &cluster, &cat, &reqs, &SimConfig::default());
        prop_assert_eq!(rep.unroutable, 0);
        let expected: f64 = reqs
            .iter()
            .map(|r| match r.kind {
                QueryKind::Read => r.service,
                QueryKind::Update => r.service * n as f64,
            })
            .sum();
        let total: f64 = rep.busy.iter().sum();
        prop_assert!((total - expected).abs() < 1e-6, "{total} vs {expected}");
    }

    /// The makespan is bounded below by perfect balance and above by a
    /// single serial backend.
    #[test]
    fn makespan_bounds(
        weights in proptest::collection::vec((0.05f64..1.0, proptest::bool::weighted(0.3)), 2..6),
        n in 1usize..6,
    ) {
        let Some((cat, cls, stream)) = build(&weights) else { return Ok(()); };
        let cluster = ClusterSpec::homogeneous(n);
        let alloc = greedy::allocate(&cls, &cat, &cluster);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let reqs = stream.sample_batch(2_000, 0.0, &mut rng);
        let rep = run_batch(&alloc, &cls, &cluster, &cat, &reqs, &SimConfig::default());
        let total: f64 = rep.busy.iter().sum();
        prop_assert!(rep.makespan >= total / n as f64 - 1e-9);
        prop_assert!(rep.makespan <= total + 1e-9);
    }

    /// Open-loop responses are at least the service time and the per-
    /// backend busy time never exceeds the observation span plus the
    /// final backlog.
    #[test]
    fn open_loop_sanity(
        weights in proptest::collection::vec((0.05f64..1.0, proptest::bool::weighted(0.3)), 2..5),
        rate in 10.0f64..200.0,
    ) {
        let Some((cat, cls, stream)) = build(&weights) else { return Ok(()); };
        let cluster = ClusterSpec::homogeneous(3);
        let alloc = greedy::allocate(&cls, &cat, &cluster);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let reqs = stream.sample_poisson(rate, 20.0, 0.0, &mut rng);
        if reqs.is_empty() { return Ok(()); }
        let rep = run_open(&alloc, &cls, &cluster, &cat, &reqs, 0.0, &SimConfig::default());
        for &(_, resp) in &rep.responses {
            prop_assert!(resp >= 0.01 - 1e-9, "response {resp} below service time");
        }
        prop_assert_eq!(rep.responses.len(), reqs.len());
    }

    /// Measured batch speedup of the greedy allocation never exceeds
    /// the cluster size and tracks the model within a factor.
    #[test]
    fn speedup_sane(
        weights in proptest::collection::vec((0.05f64..1.0, proptest::bool::weighted(0.25)), 2..6),
        n in 2usize..6,
    ) {
        let Some((cat, cls, stream)) = build(&weights) else { return Ok(()); };
        let c1 = ClusterSpec::homogeneous(1);
        let a1 = Allocation::full_replication(&cls, &c1);
        let cn = ClusterSpec::homogeneous(n);
        let an = greedy::allocate(&cls, &cat, &cn);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let reqs = stream.sample_batch(5_000, 0.0, &mut rng);
        let cfg = SimConfig::default();
        let base = run_batch(&a1, &cls, &c1, &cat, &reqs, &cfg);
        let rep = run_batch(&an, &cls, &cn, &cat, &reqs, &cfg);
        let speedup = base.makespan / rep.makespan;
        prop_assert!(speedup <= n as f64 * 1.02, "speedup {speedup} > n={n}");
        prop_assert!(speedup >= 0.9, "speedup {speedup} collapsed");
    }
}
