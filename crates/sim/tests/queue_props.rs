//! Property tests of the [`CalendarQueue`] against the binary-heap
//! reference: any interleaving of pushes and pops over any timestamp
//! distribution must observe the identical `(time_bits, seq)` pop
//! sequence, FIFO at equal timestamps, through rollovers and resizes.

use proptest::prelude::*;
use qcpa_sim::{BinaryHeapQueue, CalendarQueue, EventQueue};

fn drain(q: &mut impl EventQueue) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    while let Some(e) = q.pop() {
        out.push(e);
    }
    out
}

/// Timestamps drawn from deliberately adversarial regimes: dense
/// sub-width clusters (many events per bucket window), uniform spreads,
/// far-future spikes (fruitless cursor laps → global-min jump), and
/// exact duplicates (FIFO ties).
fn adversarial_time() -> impl Strategy<Value = f64> {
    (0u8..6, 0.0f64..1.0).prop_map(|(regime, u)| match regime {
        0 => u * 1e-6,
        1 => u,
        2 => u * 1_000.0,
        3 => 1e6 + u * (1e12 - 1e6),
        4 => 42.0,
        _ => 0.0,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any push/pop interleaving pops exactly what the heap oracle
    /// pops, step for step, and drains to the identical tail.
    #[test]
    fn interleaved_ops_match_heap_oracle(
        ops in proptest::collection::vec(
            (adversarial_time(), proptest::bool::weighted(0.35)),
            1..400,
        ),
    ) {
        let mut cal = CalendarQueue::new();
        let mut heap = BinaryHeapQueue::default();
        let mut seq = 0u64;
        for (step, &(t, is_pop)) in ops.iter().enumerate() {
            if is_pop {
                prop_assert_eq!(cal.peek(), heap.peek(), "peek at step {}", step);
                prop_assert_eq!(cal.pop(), heap.pop(), "pop at step {}", step);
            } else {
                cal.push(t.to_bits(), seq);
                heap.push(t.to_bits(), seq);
                seq += 1;
            }
            prop_assert_eq!(cal.len(), heap.len());
            prop_assert_eq!(cal.is_empty(), heap.is_empty());
        }
        prop_assert_eq!(drain(&mut cal), drain(&mut heap));
    }

    /// A batch of pushes followed by a full drain is a sort by
    /// `(time_bits, seq)` — push order never leaks into pop order
    /// except through the seq tie-break.
    #[test]
    fn full_drain_is_a_stable_sort(
        times in proptest::collection::vec(adversarial_time(), 0..300),
    ) {
        let mut cal = CalendarQueue::new();
        let mut expect: Vec<(u64, u64)> = Vec::with_capacity(times.len());
        for (i, &t) in times.iter().enumerate() {
            cal.push(t.to_bits(), i as u64);
            expect.push((t.to_bits(), i as u64));
        }
        expect.sort_unstable();
        prop_assert_eq!(drain(&mut cal), expect);
    }

    /// Events at one shared timestamp pop strictly in push (seq) order:
    /// the FIFO tie-break, regardless of how many resizes the burst
    /// forces.
    #[test]
    fn equal_timestamps_pop_fifo(t in adversarial_time(), n in 1usize..200) {
        let mut cal = CalendarQueue::new();
        for i in 0..n as u64 {
            cal.push(t.to_bits(), i);
        }
        let seqs: Vec<u64> = drain(&mut cal).into_iter().map(|(_, s)| s).collect();
        prop_assert_eq!(seqs, (0..n as u64).collect::<Vec<_>>());
    }

    /// Alternating near/far timestamp regimes: each drain-and-refill
    /// cycle forces the cursor across empty windows (global-min jump)
    /// and drives occupancy through the grow/shrink thresholds, and the
    /// heap-oracle equivalence must survive every cycle.
    #[test]
    fn rollover_and_resize_under_regime_shifts(
        regimes in proptest::collection::vec(
            (0.0f64..1e9, 1usize..60, 1usize..60),
            1..12,
        ),
    ) {
        let mut cal = CalendarQueue::new();
        let mut heap = BinaryHeapQueue::default();
        let mut seq = 0u64;
        for &(base, pushes, pops) in &regimes {
            for i in 0..pushes {
                // Cluster tightly around the regime base so each shift
                // lands far outside the previous geometry's windows.
                let t = base + i as f64 * 1e-7;
                cal.push(t.to_bits(), seq);
                heap.push(t.to_bits(), seq);
                seq += 1;
            }
            for _ in 0..pops {
                prop_assert_eq!(cal.pop(), heap.pop());
            }
            prop_assert_eq!(cal.len(), heap.len());
        }
        prop_assert_eq!(drain(&mut cal), drain(&mut heap));
    }
}
