//! Scan predicates.

use crate::types::Value;

/// Comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

/// A predicate over a row, referencing columns by name.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `column <op> literal`.
    Cmp {
        /// Column name.
        column: String,
        /// Operator.
        op: CmpOp,
        /// Literal to compare against.
        value: Value,
    },
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `column <op> value`.
    pub fn cmp(column: impl Into<String>, op: CmpOp, value: Value) -> Self {
        Predicate::Cmp {
            column: column.into(),
            op,
            value,
        }
    }

    /// `self AND other`.
    pub fn and(self, other: Predicate) -> Self {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Predicate) -> Self {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Predicate::Not(Box::new(self))
    }

    /// Column names the predicate references (with duplicates).
    pub fn columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Predicate::Cmp { column, .. } => out.push(column),
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Predicate::Not(p) => p.collect_columns(out),
        }
    }

    /// Evaluates against a row given a name→value lookup.
    pub fn eval(&self, lookup: &dyn Fn(&str) -> Option<Value>) -> bool {
        match self {
            Predicate::Cmp { column, op, value } => match lookup(column) {
                Some(v) => {
                    let ord = v.total_cmp(value);
                    match op {
                        CmpOp::Eq => ord.is_eq(),
                        CmpOp::Ne => !ord.is_eq(),
                        CmpOp::Lt => ord.is_lt(),
                        CmpOp::Le => ord.is_le(),
                        CmpOp::Gt => ord.is_gt(),
                        CmpOp::Ge => ord.is_ge(),
                    }
                }
                None => false,
            },
            Predicate::And(a, b) => a.eval(lookup) && b.eval(lookup),
            Predicate::Or(a, b) => a.eval(lookup) || b.eval(lookup),
            Predicate::Not(p) => !p.eval(lookup),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(k: &str) -> Option<Value> {
        match k {
            "qty" => Some(Value::I64(24)),
            "price" => Some(Value::F64(9.5)),
            "flag" => Some(Value::Str("R".into())),
            _ => None,
        }
    }

    #[test]
    fn comparisons() {
        assert!(Predicate::cmp("qty", CmpOp::Lt, Value::I64(25)).eval(&row));
        assert!(!Predicate::cmp("qty", CmpOp::Gt, Value::I64(25)).eval(&row));
        assert!(Predicate::cmp("flag", CmpOp::Eq, Value::Str("R".into())).eval(&row));
        assert!(Predicate::cmp("price", CmpOp::Ge, Value::F64(9.5)).eval(&row));
    }

    #[test]
    fn boolean_combinators() {
        let p = Predicate::cmp("qty", CmpOp::Lt, Value::I64(25)).and(Predicate::cmp(
            "price",
            CmpOp::Gt,
            Value::F64(5.0),
        ));
        assert!(p.eval(&row));
        let q = Predicate::cmp("qty", CmpOp::Gt, Value::I64(100)).or(Predicate::cmp(
            "flag",
            CmpOp::Eq,
            Value::Str("R".into()),
        ));
        assert!(q.eval(&row));
        assert!(!q.clone().not().eval(&row));
    }

    #[test]
    fn missing_column_is_false() {
        assert!(!Predicate::cmp("nope", CmpOp::Eq, Value::I64(1)).eval(&row));
    }

    #[test]
    fn referenced_columns() {
        let p = Predicate::cmp("a", CmpOp::Eq, Value::I64(1))
            .and(Predicate::cmp("b", CmpOp::Eq, Value::I64(2)).not());
        assert_eq!(p.columns(), vec!["a", "b"]);
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert!(Predicate::cmp("qty", CmpOp::Gt, Value::F64(23.5)).eval(&row));
    }
}
