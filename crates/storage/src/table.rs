//! Columnar tables.
//!
//! Data lives in typed column vectors; rows are appended and scanned
//! through the column stores. This mirrors how vertical fragmentation
//! pays off in the paper: a column fragment is a contiguous typed
//! vector, so extracting it is a copy, not a shredding pass.

use crate::predicate::Predicate;
use crate::schema::TableDef;
use crate::types::{DataType, Value};

/// Typed column storage.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// 64-bit integers.
    I64(Vec<i64>),
    /// 64-bit floats.
    F64(Vec<f64>),
    /// Strings.
    Str(Vec<String>),
    /// Dates (days since epoch).
    Date(Vec<i32>),
}

impl ColumnData {
    fn new(ty: DataType) -> Self {
        match ty {
            DataType::I64 => ColumnData::I64(Vec::new()),
            DataType::F64 => ColumnData::F64(Vec::new()),
            DataType::Str => ColumnData::Str(Vec::new()),
            DataType::Date => ColumnData::Date(Vec::new()),
        }
    }

    fn push(&mut self, v: Value) {
        match (self, v) {
            (ColumnData::I64(c), Value::I64(v)) => c.push(v),
            (ColumnData::F64(c), Value::F64(v)) => c.push(v),
            (ColumnData::Str(c), Value::Str(v)) => c.push(v),
            (ColumnData::Date(c), Value::Date(v)) => c.push(v),
            (col, v) => panic!("type mismatch: column {col:?} <- value {v:?}"),
        }
    }

    /// The value at row `i`.
    pub fn get(&self, i: usize) -> Value {
        match self {
            ColumnData::I64(c) => Value::I64(c[i]),
            ColumnData::F64(c) => Value::F64(c[i]),
            ColumnData::Str(c) => Value::Str(c[i].clone()),
            ColumnData::Date(c) => Value::Date(c[i]),
        }
    }

    fn set(&mut self, i: usize, v: Value) {
        match (self, v) {
            (ColumnData::I64(c), Value::I64(v)) => c[i] = v,
            (ColumnData::F64(c), Value::F64(v)) => c[i] = v,
            (ColumnData::Str(c), Value::Str(v)) => c[i] = v,
            (ColumnData::Date(c), Value::Date(v)) => c[i] = v,
            (col, v) => panic!("type mismatch: column {col:?} <- value {v:?}"),
        }
    }

    fn len(&self) -> usize {
        match self {
            ColumnData::I64(c) => c.len(),
            ColumnData::F64(c) => c.len(),
            ColumnData::Str(c) => c.len(),
            ColumnData::Date(c) => c.len(),
        }
    }
}

/// A columnar table instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Definition (possibly a vertical fragment of the logical table).
    pub def: TableDef,
    cols: Vec<ColumnData>,
    n_rows: usize,
}

impl Table {
    /// Creates an empty table for the definition.
    pub fn new(def: TableDef) -> Self {
        let cols = def.columns.iter().map(|c| ColumnData::new(c.ty)).collect();
        Self {
            def,
            cols,
            n_rows: 0,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.n_rows
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Stored bytes according to the schema's byte widths.
    pub fn byte_size(&self) -> u64 {
        self.def.row_width() * self.n_rows as u64
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics on arity or type mismatch.
    pub fn append(&mut self, row: Vec<Value>) {
        assert_eq!(
            row.len(),
            self.cols.len(),
            "row arity mismatch for {}",
            self.def.name
        );
        for (col, v) in self.cols.iter_mut().zip(row) {
            col.push(v);
        }
        self.n_rows += 1;
    }

    /// Appends many rows.
    pub fn append_rows(&mut self, rows: impl IntoIterator<Item = Vec<Value>>) {
        for r in rows {
            self.append(r);
        }
    }

    /// The column store with the given name.
    pub fn column(&self, name: &str) -> Option<&ColumnData> {
        self.def.column_index(name).map(|i| &self.cols[i])
    }

    /// Value at `(row, column-name)`.
    pub fn value(&self, row: usize, column: &str) -> Option<Value> {
        self.def.column_index(column).map(|i| self.cols[i].get(row))
    }

    /// Row indices matching the predicate (all rows if `None`).
    pub fn select(&self, predicate: Option<&Predicate>) -> Vec<usize> {
        match predicate {
            None => (0..self.n_rows).collect(),
            Some(p) => (0..self.n_rows)
                .filter(|&i| p.eval(&|name| self.value(i, name)))
                .collect(),
        }
    }

    /// In-place update: sets `column` to `value` on all rows matching
    /// the predicate; returns the number of rows changed.
    ///
    /// # Panics
    /// Panics if the column does not exist.
    pub fn update(&mut self, predicate: Option<&Predicate>, column: &str, value: Value) -> usize {
        let idx = self
            .def
            .column_index(column)
            .unwrap_or_else(|| panic!("unknown column {column:?}"));
        let rows = self.select(predicate);
        for &r in &rows {
            self.cols[idx].set(r, value.clone());
        }
        rows.len()
    }

    /// Materializes the given rows and columns.
    pub fn project(&self, rows: &[usize], columns: &[usize]) -> Vec<Vec<Value>> {
        rows.iter()
            .map(|&r| columns.iter().map(|&c| self.cols[c].get(r)).collect())
            .collect()
    }

    /// Consistency check: all column stores have `n_rows` entries.
    pub fn check(&self) -> bool {
        self.cols.iter().all(|c| c.len() == self.n_rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;
    use crate::schema::ColumnDef;

    fn items() -> Table {
        let def = TableDef::new(
            "item",
            vec![
                ColumnDef::new("i_id", DataType::I64, 8),
                ColumnDef::new("i_price", DataType::F64, 8),
                ColumnDef::new("i_name", DataType::Str, 24),
            ],
        );
        let mut t = Table::new(def);
        for i in 0..10 {
            t.append(vec![
                Value::I64(i),
                Value::F64(i as f64 * 1.5),
                Value::Str(format!("item-{i}")),
            ]);
        }
        t
    }

    #[test]
    fn append_and_size() {
        let t = items();
        assert_eq!(t.len(), 10);
        assert_eq!(t.byte_size(), 10 * 40);
        assert!(t.check());
    }

    #[test]
    fn select_with_predicate() {
        let t = items();
        let rows = t.select(Some(&Predicate::cmp("i_price", CmpOp::Gt, Value::F64(6.0))));
        assert_eq!(rows, vec![5, 6, 7, 8, 9]);
        assert_eq!(t.select(None).len(), 10);
    }

    #[test]
    fn projection() {
        let t = items();
        let rows = t.select(Some(&Predicate::cmp("i_id", CmpOp::Eq, Value::I64(3))));
        let out = t.project(&rows, &[0, 2]);
        assert_eq!(out, vec![vec![Value::I64(3), Value::Str("item-3".into())]]);
    }

    #[test]
    fn update_rows() {
        let mut t = items();
        let changed = t.update(
            Some(&Predicate::cmp("i_id", CmpOp::Lt, Value::I64(3))),
            "i_price",
            Value::F64(0.0),
        );
        assert_eq!(changed, 3);
        assert_eq!(t.value(0, "i_price"), Some(Value::F64(0.0)));
        assert_eq!(t.value(3, "i_price"), Some(Value::F64(4.5)));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = items();
        t.append(vec![Value::I64(99)]);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn types_checked() {
        let mut t = items();
        t.append(vec![
            Value::Str("oops".into()),
            Value::F64(0.0),
            Value::Str("x".into()),
        ]);
    }
}
