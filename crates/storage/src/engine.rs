//! The per-backend store and query execution.
//!
//! A [`BackendStore`] plays one backend DBMS of the CDBS: it holds the
//! tables/fragments the allocation assigned to it, bulk-loads fragment
//! data, and executes scan queries (selection, projection, aggregation)
//! and updates. The controller-side code in `qcpa-sim` routes requests
//! to stores per the allocation.

use std::collections::BTreeMap;

use crate::fragmentation::FragmentData;
use crate::predicate::Predicate;
use crate::table::Table;
use crate::types::Value;

/// Errors from query execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The referenced table is not stored on this backend.
    NoSuchTable(String),
    /// The referenced column does not exist in the stored fragment.
    NoSuchColumn {
        /// Table name.
        table: String,
        /// Missing column.
        column: String,
    },
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::NoSuchTable(t) => write!(f, "table {t:?} is not on this backend"),
            StorageError::NoSuchColumn { table, column } => {
                write!(f, "column {column:?} not stored for table {table:?}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Row count.
    Count,
    /// Sum of the column's numeric view.
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Average.
    Avg,
}

/// A scan query: selection + projection or aggregation over one table.
#[derive(Debug, Clone)]
pub struct ScanQuery {
    /// Table (or fragment) name.
    pub table: String,
    /// Columns to return; empty means all stored columns.
    pub projection: Vec<String>,
    /// Optional row filter.
    pub predicate: Option<Predicate>,
    /// Optional aggregate `(function, column)`; replaces the row output.
    pub aggregate: Option<(AggFunc, String)>,
}

impl ScanQuery {
    /// Full scan of a table.
    pub fn all(table: impl Into<String>) -> Self {
        Self {
            table: table.into(),
            projection: Vec::new(),
            predicate: None,
            aggregate: None,
        }
    }

    /// Adds a filter.
    pub fn filter(mut self, p: Predicate) -> Self {
        self.predicate = Some(p);
        self
    }

    /// Restricts the output columns.
    pub fn select(mut self, columns: &[&str]) -> Self {
        self.projection = columns.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Aggregates instead of returning rows.
    pub fn agg(mut self, f: AggFunc, column: impl Into<String>) -> Self {
        self.aggregate = Some((f, column.into()));
        self
    }
}

/// A query result.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// Projected rows.
    Rows(Vec<Vec<Value>>),
    /// Aggregate value (`None` over an empty input for Min/Max/Avg).
    Scalar(Option<f64>),
}

impl QueryResult {
    /// The number of rows, or 1 for a scalar.
    pub fn cardinality(&self) -> usize {
        match self {
            QueryResult::Rows(r) => r.len(),
            QueryResult::Scalar(_) => 1,
        }
    }
}

/// One backend's storage: the fragments assigned to it by name.
#[derive(Debug, Clone, Default)]
pub struct BackendStore {
    tables: BTreeMap<String, Table>,
}

impl BackendStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bulk-loads fragment data, replacing any same-named fragment.
    /// Returns the loaded byte count (the quantity the ETL cost model
    /// prices).
    pub fn bulk_load(&mut self, fragment: FragmentData) -> u64 {
        let mut table = Table::new(fragment.def);
        table.append_rows(fragment.rows);
        let bytes = table.byte_size();
        self.tables.insert(table.def.name.clone(), table);
        bytes
    }

    /// Drops a fragment; returns whether it existed.
    pub fn drop_fragment(&mut self, name: &str) -> bool {
        self.tables.remove(name).is_some()
    }

    /// Names of the stored fragments.
    pub fn fragment_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(|s| s.as_str())
    }

    /// The stored fragment with the given name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Total stored bytes.
    pub fn byte_size(&self) -> u64 {
        self.tables.values().map(|t| t.byte_size()).sum()
    }

    /// Executes a scan query.
    pub fn execute(&self, q: &ScanQuery) -> Result<QueryResult, StorageError> {
        let table = self
            .tables
            .get(&q.table)
            .ok_or_else(|| StorageError::NoSuchTable(q.table.clone()))?;
        // Validate referenced columns up front.
        let mut referenced: Vec<&str> = q.projection.iter().map(|s| s.as_str()).collect();
        if let Some(p) = &q.predicate {
            referenced.extend(p.columns());
        }
        if let Some((_, c)) = &q.aggregate {
            referenced.push(c);
        }
        for c in referenced {
            if table.def.column_index(c).is_none() {
                return Err(StorageError::NoSuchColumn {
                    table: q.table.clone(),
                    column: c.to_string(),
                });
            }
        }

        let rows = table.select(q.predicate.as_ref());
        if let Some((f, column)) = &q.aggregate {
            let idx = table.def.column_index(column).expect("validated above");
            let vals = rows.iter().map(|&r| {
                table
                    .column(column)
                    .expect("validated above")
                    .get(r)
                    .as_f64()
            });
            let _ = idx;
            let scalar = match f {
                AggFunc::Count => Some(rows.len() as f64),
                AggFunc::Sum => Some(vals.sum()),
                AggFunc::Min => vals.fold(None, |acc: Option<f64>, v| {
                    Some(acc.map_or(v, |a| a.min(v)))
                }),
                AggFunc::Max => vals.fold(None, |acc: Option<f64>, v| {
                    Some(acc.map_or(v, |a| a.max(v)))
                }),
                AggFunc::Avg => {
                    if rows.is_empty() {
                        None
                    } else {
                        Some(vals.sum::<f64>() / rows.len() as f64)
                    }
                }
            };
            return Ok(QueryResult::Scalar(scalar));
        }

        let col_idx: Vec<usize> = if q.projection.is_empty() {
            (0..table.def.columns.len()).collect()
        } else {
            q.projection
                .iter()
                .map(|c| table.def.column_index(c).expect("validated above"))
                .collect()
        };
        Ok(QueryResult::Rows(table.project(&rows, &col_idx)))
    }

    /// Inserts a row into a stored fragment.
    pub fn insert(&mut self, table: &str, row: Vec<Value>) -> Result<(), StorageError> {
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| StorageError::NoSuchTable(table.to_string()))?;
        t.append(row);
        Ok(())
    }

    /// Updates rows in a stored fragment; returns the rows changed.
    pub fn update(
        &mut self,
        table: &str,
        predicate: Option<&Predicate>,
        column: &str,
        value: Value,
    ) -> Result<usize, StorageError> {
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| StorageError::NoSuchTable(table.to_string()))?;
        if t.def.column_index(column).is_none() {
            return Err(StorageError::NoSuchColumn {
                table: table.to_string(),
                column: column.to_string(),
            });
        }
        Ok(t.update(predicate, column, value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragmentation::extract_full;
    use crate::predicate::CmpOp;
    use crate::schema::{ColumnDef, TableDef};
    use crate::types::DataType;

    fn store_with_items() -> BackendStore {
        let def = TableDef::new(
            "item",
            vec![
                ColumnDef::new("i_id", DataType::I64, 8),
                ColumnDef::new("i_price", DataType::F64, 8),
            ],
        );
        let mut t = Table::new(def);
        for i in 0..20 {
            t.append(vec![Value::I64(i), Value::F64(i as f64)]);
        }
        let mut s = BackendStore::new();
        s.bulk_load(extract_full(&t));
        s
    }

    #[test]
    fn bulk_load_and_sizes() {
        let s = store_with_items();
        assert_eq!(s.byte_size(), 20 * 16);
        assert_eq!(s.fragment_names().collect::<Vec<_>>(), vec!["item"]);
    }

    #[test]
    fn scan_filter_project() {
        let s = store_with_items();
        let q = ScanQuery::all("item")
            .filter(Predicate::cmp("i_price", CmpOp::Ge, Value::F64(18.0)))
            .select(&["i_id"]);
        match s.execute(&q).unwrap() {
            QueryResult::Rows(rows) => {
                assert_eq!(rows, vec![vec![Value::I64(18)], vec![Value::I64(19)]]);
            }
            other => panic!("expected rows, got {other:?}"),
        }
    }

    #[test]
    fn aggregates() {
        let s = store_with_items();
        let sum = s
            .execute(&ScanQuery::all("item").agg(AggFunc::Sum, "i_price"))
            .unwrap();
        assert_eq!(sum, QueryResult::Scalar(Some(190.0)));
        let avg = s
            .execute(&ScanQuery::all("item").agg(AggFunc::Avg, "i_price"))
            .unwrap();
        assert_eq!(avg, QueryResult::Scalar(Some(9.5)));
        let min_empty = s
            .execute(
                &ScanQuery::all("item")
                    .filter(Predicate::cmp("i_id", CmpOp::Gt, Value::I64(100)))
                    .agg(AggFunc::Min, "i_price"),
            )
            .unwrap();
        assert_eq!(min_empty, QueryResult::Scalar(None));
    }

    #[test]
    fn missing_table_and_column_errors() {
        let s = store_with_items();
        assert!(matches!(
            s.execute(&ScanQuery::all("nope")),
            Err(StorageError::NoSuchTable(_))
        ));
        assert!(matches!(
            s.execute(&ScanQuery::all("item").select(&["ghost"])),
            Err(StorageError::NoSuchColumn { .. })
        ));
    }

    #[test]
    fn insert_and_update() {
        let mut s = store_with_items();
        s.insert("item", vec![Value::I64(99), Value::F64(99.0)])
            .unwrap();
        let changed = s
            .update(
                "item",
                Some(&Predicate::cmp("i_id", CmpOp::Eq, Value::I64(99))),
                "i_price",
                Value::F64(0.5),
            )
            .unwrap();
        assert_eq!(changed, 1);
        let q = ScanQuery::all("item").agg(AggFunc::Count, "i_id");
        assert_eq!(s.execute(&q).unwrap(), QueryResult::Scalar(Some(21.0)));
    }

    #[test]
    fn drop_fragment_frees_space() {
        let mut s = store_with_items();
        assert!(s.drop_fragment("item"));
        assert!(!s.drop_fragment("item"));
        assert_eq!(s.byte_size(), 0);
    }
}
