//! Schemas: column and table definitions with byte widths.
//!
//! Byte widths drive everything size-related in the allocation model —
//! fragment sizes, degree of replication (Eq. 28), ETL costs (Eq. 27) —
//! so they are explicit per column (average width for variable-length
//! strings, as catalog statistics would report).

use crate::types::DataType;

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name (unique within its table).
    pub name: String,
    /// Data type.
    pub ty: DataType,
    /// Average stored width in bytes (drives fragment sizing).
    pub byte_width: u32,
}

impl ColumnDef {
    /// Creates a column definition.
    pub fn new(name: impl Into<String>, ty: DataType, byte_width: u32) -> Self {
        Self {
            name: name.into(),
            ty,
            byte_width,
        }
    }
}

/// A table definition: named columns, the first of which is the primary
/// key by convention (vertical fragments always carry it so rows remain
/// reconstructible, as Section 3.1 requires).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDef {
    /// Table name (unique within the schema).
    pub name: String,
    /// Columns; index 0 is the primary key.
    pub columns: Vec<ColumnDef>,
}

impl TableDef {
    /// Creates a table definition.
    ///
    /// # Panics
    /// Panics if there are no columns or column names collide.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnDef>) -> Self {
        assert!(!columns.is_empty(), "table needs at least one column");
        for (i, c) in columns.iter().enumerate() {
            assert!(
                !columns[..i].iter().any(|o| o.name == c.name),
                "duplicate column name {:?}",
                c.name
            );
        }
        Self {
            name: name.into(),
            columns,
        }
    }

    /// Bytes per row: the sum of column widths.
    pub fn row_width(&self) -> u64 {
        self.columns.iter().map(|c| c.byte_width as u64).sum()
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// The primary-key column.
    pub fn primary_key(&self) -> &ColumnDef {
        &self.columns[0]
    }
}

/// A database schema.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    /// Tables of the database.
    pub tables: Vec<TableDef>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a table.
    ///
    /// # Panics
    /// Panics on duplicate table names.
    pub fn add_table(&mut self, table: TableDef) {
        assert!(
            self.table(&table.name).is_none(),
            "duplicate table name {:?}",
            table.name
        );
        self.tables.push(table);
    }

    /// Looks up a table by name.
    pub fn table(&self, name: &str) -> Option<&TableDef> {
        self.tables.iter().find(|t| t.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn orders() -> TableDef {
        TableDef::new(
            "orders",
            vec![
                ColumnDef::new("o_id", DataType::I64, 8),
                ColumnDef::new("o_total", DataType::F64, 8),
                ColumnDef::new("o_comment", DataType::Str, 48),
            ],
        )
    }

    #[test]
    fn row_width_sums_columns() {
        assert_eq!(orders().row_width(), 64);
    }

    #[test]
    fn column_lookup() {
        let t = orders();
        assert_eq!(t.column_index("o_total"), Some(1));
        assert_eq!(t.column_index("nope"), None);
        assert_eq!(t.primary_key().name, "o_id");
    }

    #[test]
    fn schema_lookup() {
        let mut s = Schema::new();
        s.add_table(orders());
        assert!(s.table("orders").is_some());
        assert!(s.table("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn duplicate_columns_rejected() {
        TableDef::new(
            "t",
            vec![
                ColumnDef::new("x", DataType::I64, 8),
                ColumnDef::new("x", DataType::I64, 8),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "duplicate table name")]
    fn duplicate_tables_rejected() {
        let mut s = Schema::new();
        s.add_table(orders());
        s.add_table(orders());
    }
}
