//! # qcpa-storage
//!
//! An in-memory relational storage engine: the substrate playing the
//! role of the paper's PostgreSQL/MySQL backends.
//!
//! Each CDBS backend hosts a [`engine::BackendStore`] holding the
//! *fragments* the allocation assigned to it — whole tables, vertical
//! (column) fragments, or horizontal (predicate) fragments — and can
//! bulk-load fragment data, execute scans with predicates, projections
//! and aggregates, and apply row updates.
//!
//! The engine is deliberately small but real: data actually lives in
//! typed columnar vectors, fragment extraction actually copies bytes,
//! and fragment sizes are byte-accurate — which is what the allocation
//! model (degree of replication, ETL matching costs, allocation
//! duration) depends on.
//!
//! * [`types`] — values and data types;
//! * [`schema`] — column/table definitions with byte widths;
//! * [`table`] — columnar tables with append/scan;
//! * [`predicate`] — scan predicates;
//! * [`fragmentation`] — vertical/horizontal fragment extraction;
//! * [`engine`] — the per-backend store and query execution;
//! * [`catalog`] — bridging a schema to the allocation model's
//!   fragment [`qcpa_core::fragment::Catalog`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod engine;
pub mod fragmentation;
pub mod predicate;
pub mod schema;
pub mod table;
pub mod types;

pub use catalog::build_catalog;
pub use engine::{AggFunc, BackendStore, QueryResult, ScanQuery, StorageError};
pub use fragmentation::{extract_horizontal, extract_vertical, FragmentData};
pub use predicate::{CmpOp, Predicate};
pub use schema::{ColumnDef, Schema, TableDef};
pub use table::Table;
pub use types::{DataType, Value};
