//! Fragment extraction: turning a logical table into the vertical or
//! horizontal fragments the allocation assigns to backends.
//!
//! Vertical fragments always carry the primary key so the full rows can
//! be losslessly reconstructed, exactly as Section 3.1 requires of
//! column-based classification.

use crate::predicate::Predicate;
use crate::schema::TableDef;
use crate::table::Table;
use crate::types::Value;

/// Extracted fragment data ready to bulk-load into a backend.
#[derive(Debug, Clone)]
pub struct FragmentData {
    /// The fragment's own table definition (a projection and/or
    /// selection of the source).
    pub def: TableDef,
    /// Materialized rows.
    pub rows: Vec<Vec<Value>>,
}

impl FragmentData {
    /// Bytes of the materialized fragment per the schema widths.
    pub fn byte_size(&self) -> u64 {
        self.def.row_width() * self.rows.len() as u64
    }
}

/// Extracts a vertical fragment: the named columns plus the primary key
/// (prepended if not listed). The fragment is named
/// `"<table>.<col1+col2+...>"`.
///
/// # Panics
/// Panics if a column does not exist.
pub fn extract_vertical(table: &Table, columns: &[&str]) -> FragmentData {
    let pk = table.def.primary_key().name.clone();
    let mut names: Vec<&str> = Vec::with_capacity(columns.len() + 1);
    if !columns.contains(&pk.as_str()) {
        names.push(&pk);
    }
    names.extend_from_slice(columns);

    let idx: Vec<usize> = names
        .iter()
        .map(|n| {
            table
                .def
                .column_index(n)
                .unwrap_or_else(|| panic!("unknown column {n:?} in {}", table.def.name))
        })
        .collect();
    let defs = idx
        .iter()
        .map(|&i| table.def.columns[i].clone())
        .collect::<Vec<_>>();
    let frag_name = format!("{}.{}", table.def.name, names.join("+"));
    let all: Vec<usize> = (0..table.len()).collect();
    FragmentData {
        def: TableDef::new(frag_name, defs),
        rows: table.project(&all, &idx),
    }
}

/// Extracts a horizontal fragment: all columns, rows matching the
/// predicate. The fragment is named `"<table>#<part>"`.
pub fn extract_horizontal(table: &Table, predicate: &Predicate, part: u32) -> FragmentData {
    let rows = table.select(Some(predicate));
    let idx: Vec<usize> = (0..table.def.columns.len()).collect();
    FragmentData {
        def: TableDef::new(
            format!("{}#{part}", table.def.name),
            table.def.columns.clone(),
        ),
        rows: table.project(&rows, &idx),
    }
}

/// Extracts the whole table as a fragment (no partitioning).
pub fn extract_full(table: &Table) -> FragmentData {
    let idx: Vec<usize> = (0..table.def.columns.len()).collect();
    let all: Vec<usize> = (0..table.len()).collect();
    FragmentData {
        def: table.def.clone(),
        rows: table.project(&all, &idx),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;
    use crate::schema::ColumnDef;
    use crate::types::DataType;

    fn lineitem() -> Table {
        let def = TableDef::new(
            "lineitem",
            vec![
                ColumnDef::new("l_id", DataType::I64, 8),
                ColumnDef::new("l_qty", DataType::I64, 8),
                ColumnDef::new("l_price", DataType::F64, 8),
                ColumnDef::new("l_comment", DataType::Str, 27),
            ],
        );
        let mut t = Table::new(def);
        for i in 0..100 {
            t.append(vec![
                Value::I64(i),
                Value::I64(i % 50),
                Value::F64(i as f64),
                Value::Str("c".repeat(27)),
            ]);
        }
        t
    }

    #[test]
    fn vertical_fragment_carries_pk() {
        let t = lineitem();
        let f = extract_vertical(&t, &["l_price"]);
        assert_eq!(f.def.columns.len(), 2);
        assert_eq!(f.def.columns[0].name, "l_id");
        assert_eq!(f.rows.len(), 100);
        assert_eq!(f.byte_size(), 100 * 16);
    }

    #[test]
    fn vertical_fragment_with_pk_listed_once() {
        let t = lineitem();
        let f = extract_vertical(&t, &["l_id", "l_qty"]);
        assert_eq!(f.def.columns.len(), 2);
    }

    #[test]
    fn horizontal_fragment_filters_rows() {
        let t = lineitem();
        let f = extract_horizontal(&t, &Predicate::cmp("l_qty", CmpOp::Lt, Value::I64(10)), 0);
        assert_eq!(f.rows.len(), 20); // 2 cycles of 0..9
        assert_eq!(f.def.name, "lineitem#0");
        assert_eq!(f.def.columns.len(), 4);
    }

    #[test]
    fn full_extract_roundtrips_size() {
        let t = lineitem();
        let f = extract_full(&t);
        assert_eq!(f.byte_size(), t.byte_size());
        assert_eq!(f.rows.len(), t.len());
    }

    #[test]
    fn vertical_sizes_sum_close_to_table() {
        // Columns partitioned into two fragments share the pk overhead.
        let t = lineitem();
        let f1 = extract_vertical(&t, &["l_qty"]);
        let f2 = extract_vertical(&t, &["l_price", "l_comment"]);
        let pk_overhead = 100 * 8;
        assert_eq!(f1.byte_size() + f2.byte_size(), t.byte_size() + pk_overhead);
    }
}
