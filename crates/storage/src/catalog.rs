//! Bridging a storage [`Schema`] to the allocation model's fragment
//! [`Catalog`].
//!
//! The allocation algorithms only see fragment identities and byte
//! sizes; this module derives them from a schema plus per-table row
//! counts: one table fragment per table and one column fragment per
//! column (sized as the column plus its share of the primary key, since
//! vertical fragments always carry the key).

use qcpa_core::fragment::{Catalog, FragmentId};

use crate::schema::Schema;

/// Builds a catalog with table- and column-level fragments for the
/// schema, sized by `row_counts` (same order as `schema.tables`).
///
/// Column fragments are named `"<table>.<column>"`. The primary-key
/// column is registered like any other; non-key column fragments are
/// sized as `(width + pk_width) × rows` to account for the key copy a
/// vertical fragment must carry.
///
/// # Panics
/// Panics if `row_counts` does not match the table count.
pub fn build_catalog(schema: &Schema, row_counts: &[u64]) -> Catalog {
    assert_eq!(
        schema.tables.len(),
        row_counts.len(),
        "one row count per table"
    );
    let mut catalog = Catalog::new();
    for (table, &rows) in schema.tables.iter().zip(row_counts) {
        let table_size = table.row_width() * rows;
        let tid = catalog.add_table(table.name.clone(), table_size);
        let pk_width = table.primary_key().byte_width as u64;
        for (i, col) in table.columns.iter().enumerate() {
            let width = col.byte_width as u64;
            let size = if i == 0 {
                width * rows
            } else {
                (width + pk_width) * rows
            };
            catalog.add_column(tid, format!("{}.{}", table.name, col.name), size);
        }
    }
    catalog
}

/// Looks up the column fragment for `table.column`.
pub fn column_fragment(catalog: &Catalog, table: &str, column: &str) -> Option<FragmentId> {
    catalog.by_name(&format!("{table}.{column}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, TableDef};
    use crate::types::DataType;

    #[test]
    fn sizes_follow_schema() {
        let mut schema = Schema::new();
        schema.add_table(TableDef::new(
            "orders",
            vec![
                ColumnDef::new("o_id", DataType::I64, 8),
                ColumnDef::new("o_total", DataType::F64, 8),
                ColumnDef::new("o_comment", DataType::Str, 48),
            ],
        ));
        let catalog = build_catalog(&schema, &[1000]);
        let t = catalog.by_name("orders").unwrap();
        assert_eq!(catalog.size(t), 64 * 1000);
        let pk = column_fragment(&catalog, "orders", "o_id").unwrap();
        assert_eq!(catalog.size(pk), 8 * 1000);
        let comment = column_fragment(&catalog, "orders", "o_comment").unwrap();
        assert_eq!(catalog.size(comment), (48 + 8) * 1000);
        assert_eq!(catalog.table_of(comment), t);
    }

    #[test]
    fn one_fragment_per_table_and_column() {
        let mut schema = Schema::new();
        schema.add_table(TableDef::new(
            "a",
            vec![ColumnDef::new("a_id", DataType::I64, 8)],
        ));
        schema.add_table(TableDef::new(
            "b",
            vec![
                ColumnDef::new("b_id", DataType::I64, 8),
                ColumnDef::new("b_x", DataType::I64, 8),
            ],
        ));
        let catalog = build_catalog(&schema, &[10, 20]);
        assert_eq!(catalog.len(), 2 + 1 + 2);
        assert_eq!(catalog.tables().count(), 2);
    }
}
