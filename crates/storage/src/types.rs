//! Values and data types.

/// The engine's data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    I64,
    /// 64-bit float (also used for decimals).
    F64,
    /// Variable-length UTF-8 string.
    Str,
    /// Date as days since the epoch.
    Date,
}

/// A single value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit signed integer.
    I64(i64),
    /// 64-bit float.
    F64(f64),
    /// UTF-8 string.
    Str(String),
    /// Date as days since the epoch.
    Date(i32),
}

impl Value {
    /// The value's type.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::I64(_) => DataType::I64,
            Value::F64(_) => DataType::F64,
            Value::Str(_) => DataType::Str,
            Value::Date(_) => DataType::Date,
        }
    }

    /// Numeric view for aggregation; strings aggregate as their length.
    pub fn as_f64(&self) -> f64 {
        match self {
            Value::I64(v) => *v as f64,
            Value::F64(v) => *v,
            Value::Str(s) => s.len() as f64,
            Value::Date(d) => *d as f64,
        }
    }

    /// Total order used by predicates and MIN/MAX; values of different
    /// types compare by type tag first (never expected in valid scans).
    pub fn total_cmp(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        use Value::*;
        match (self, other) {
            (I64(a), I64(b)) => a.cmp(b),
            (F64(a), F64(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (I64(a), F64(b)) => (*a as f64).total_cmp(b),
            (F64(a), I64(b)) => a.total_cmp(&(*b as f64)),
            _ => {
                let tag = |v: &Value| match v {
                    I64(_) => 0u8,
                    F64(_) => 1,
                    Str(_) => 2,
                    Date(_) => 3,
                };
                match tag(self).cmp(&tag(other)) {
                    Ordering::Equal => Ordering::Equal,
                    o => o,
                }
            }
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "d{d}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_tags() {
        assert_eq!(Value::I64(1).data_type(), DataType::I64);
        assert_eq!(Value::Str("x".into()).data_type(), DataType::Str);
    }

    #[test]
    fn numeric_view() {
        assert_eq!(Value::I64(3).as_f64(), 3.0);
        assert_eq!(Value::Date(10).as_f64(), 10.0);
        assert_eq!(Value::Str("abc".into()).as_f64(), 3.0);
    }

    #[test]
    fn ordering_within_and_across_numeric_types() {
        use std::cmp::Ordering::*;
        assert_eq!(Value::I64(1).total_cmp(&Value::I64(2)), Less);
        assert_eq!(Value::I64(2).total_cmp(&Value::F64(1.5)), Greater);
        assert_eq!(
            Value::Str("a".into()).total_cmp(&Value::Str("b".into())),
            Less
        );
    }
}
