//! Property-based tests of the storage engine: fragment extraction is
//! lossless, predicates obey boolean algebra, updates hit exactly the
//! selected rows.

use proptest::prelude::*;
use qcpa_storage::engine::{AggFunc, BackendStore, QueryResult, ScanQuery};
use qcpa_storage::fragmentation::{extract_full, extract_horizontal, extract_vertical};
use qcpa_storage::predicate::{CmpOp, Predicate};
use qcpa_storage::schema::{ColumnDef, TableDef};
use qcpa_storage::table::Table;
use qcpa_storage::types::{DataType, Value};

/// A random two-column table of i64 data plus the pk.
fn random_table(rows: &[(i64, i64)]) -> Table {
    let def = TableDef::new(
        "t",
        vec![
            ColumnDef::new("id", DataType::I64, 8),
            ColumnDef::new("x", DataType::I64, 8),
            ColumnDef::new("y", DataType::I64, 8),
        ],
    );
    let mut t = Table::new(def);
    for (i, &(x, y)) in rows.iter().enumerate() {
        t.append(vec![Value::I64(i as i64), Value::I64(x), Value::I64(y)]);
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Vertical fragments carry every row and reassemble losslessly by
    /// primary key.
    #[test]
    fn vertical_fragments_are_lossless(rows in proptest::collection::vec((any::<i64>(), any::<i64>()), 1..80)) {
        let t = random_table(&rows);
        let fx = extract_vertical(&t, &["x"]);
        let fy = extract_vertical(&t, &["y"]);
        prop_assert_eq!(fx.rows.len(), rows.len());
        prop_assert_eq!(fy.rows.len(), rows.len());
        for (i, &(x, y)) in rows.iter().enumerate() {
            // Column 0 is the pk, column 1 the payload.
            prop_assert_eq!(&fx.rows[i][0], &Value::I64(i as i64));
            prop_assert_eq!(&fx.rows[i][1], &Value::I64(x));
            prop_assert_eq!(&fy.rows[i][1], &Value::I64(y));
        }
        // Byte accounting: both fragments together cost one extra pk.
        let pk_bytes = 8 * rows.len() as u64;
        prop_assert_eq!(fx.byte_size() + fy.byte_size(), t.byte_size() + pk_bytes);
    }

    /// A horizontal split by any threshold partitions the rows exactly.
    #[test]
    fn horizontal_split_partitions_rows(
        rows in proptest::collection::vec((any::<i64>(), any::<i64>()), 1..80),
        threshold in any::<i64>(),
    ) {
        let t = random_table(&rows);
        let below = extract_horizontal(&t, &Predicate::cmp("x", CmpOp::Lt, Value::I64(threshold)), 0);
        let above = extract_horizontal(
            &t,
            &Predicate::cmp("x", CmpOp::Lt, Value::I64(threshold)).not(),
            1,
        );
        prop_assert_eq!(below.rows.len() + above.rows.len(), rows.len());
        for r in &below.rows {
            match &r[1] { Value::I64(x) => prop_assert!(*x < threshold), v => panic!("{v:?}") }
        }
        for r in &above.rows {
            match &r[1] { Value::I64(x) => prop_assert!(*x >= threshold), v => panic!("{v:?}") }
        }
    }

    /// De Morgan: NOT (a AND b) selects the same rows as
    /// (NOT a) OR (NOT b).
    #[test]
    fn de_morgan_on_scans(
        rows in proptest::collection::vec((any::<i64>(), any::<i64>()), 0..60),
        ta in any::<i64>(),
        tb in any::<i64>(),
    ) {
        let t = random_table(&rows);
        let a = || Predicate::cmp("x", CmpOp::Gt, Value::I64(ta));
        let b = || Predicate::cmp("y", CmpOp::Le, Value::I64(tb));
        let lhs = t.select(Some(&a().and(b()).not()));
        let rhs = t.select(Some(&a().not().or(b().not())));
        prop_assert_eq!(lhs, rhs);
    }

    /// Updates change exactly the selected rows and nothing else.
    #[test]
    fn update_touches_exactly_the_selection(
        rows in proptest::collection::vec((0i64..100, any::<i64>()), 1..60),
        threshold in 0i64..100,
    ) {
        let t = random_table(&rows);
        let mut store = BackendStore::new();
        store.bulk_load(extract_full(&t));
        let pred = Predicate::cmp("x", CmpOp::Ge, Value::I64(threshold));
        let expected = rows.iter().filter(|&&(x, _)| x >= threshold).count();
        let changed = store.update("t", Some(&pred), "y", Value::I64(-1)).unwrap();
        prop_assert_eq!(changed, expected);
        // Count rows now carrying the sentinel that also match the
        // predicate — at least the changed ones.
        let q = ScanQuery::all("t")
            .filter(Predicate::cmp("y", CmpOp::Eq, Value::I64(-1)).and(pred))
            .agg(AggFunc::Count, "id");
        match store.execute(&q).unwrap() {
            QueryResult::Scalar(Some(n)) => prop_assert_eq!(n as usize, expected),
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }

    /// SUM over a split table equals the sum of SUMs over its horizontal
    /// fragments (aggregation pushdown correctness).
    #[test]
    fn aggregates_distribute_over_horizontal_fragments(
        rows in proptest::collection::vec((-1000i64..1000, -1000i64..1000), 1..60),
        threshold in -1000i64..1000,
    ) {
        let t = random_table(&rows);
        let p = Predicate::cmp("x", CmpOp::Lt, Value::I64(threshold));
        let mut store = BackendStore::new();
        store.bulk_load(extract_horizontal(&t, &p, 0));
        store.bulk_load(extract_horizontal(&t, &p.clone().not(), 1));
        let total: f64 = ["t#0", "t#1"]
            .iter()
            .map(|f| {
                match store.execute(&ScanQuery::all(*f).agg(AggFunc::Sum, "y")).unwrap() {
                    QueryResult::Scalar(Some(s)) => s,
                    QueryResult::Scalar(None) => 0.0,
                    other => panic!("unexpected {other:?}"),
                }
            })
            .sum();
        let expected: f64 = rows.iter().map(|&(_, y)| y as f64).sum();
        prop_assert!((total - expected).abs() < 1e-6);
    }
}
