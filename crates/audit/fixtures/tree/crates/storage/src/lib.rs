// Fixture: unsafe-audit cases. Lexed only, never compiled.
#![forbid(unsafe_code)]

/// Reads a byte through a raw pointer.
pub fn undocumented(p: *const u8) -> u8 {
    unsafe { *p }
}

// SAFETY: caller guarantees `p` is valid for reads; documented unsafe
// blocks are accepted without an annotation.
pub fn documented(p: *const u8) -> u8 {
    unsafe { *p }
}
