// Fixture: one violation per token rule, plus suppression and
// malformed-annotation cases. This file is lexed by the audit tests,
// never compiled. The missing `#![forbid(unsafe_code)]` attribute is
// itself a deliberate unsafe-audit violation.

use std::collections::HashMap;
use std::time::Instant;

pub fn violations() {
    let mut m: HashMap<u32, u32> = HashMap::new();
    m.insert(1, 2);
    let _t = Instant::now();
    let mut _rng = rand::thread_rng();
    std::thread::spawn(|| {});
    let _v: Option<u32> = None;
    let _v = _v.unwrap();
    let _home = std::env::var("HOME");
}

// A hot entry point reaching the unwrap above: the panic-path rule
// must separate it from the test-only unwrap below.
pub fn run_open() {
    violations();
}

// audit:allow(hash-iter): fixture demonstrates a suppressed finding
pub type Suppressed = HashMap<String, u32>;

// audit:allow(no-such-rule): unknown rule names are malformed
// audit:allow(hash-iter) missing colon and justification
pub fn negatives() {
    // A HashMap mentioned in prose must not fire.
    let _s = "Instant::now() inside a string literal";
    let _raw = r#"x.unwrap() inside a raw string"#;
    let _ok = std::env::var("QCPA_THREADS");
}

/// Doc comments may cite the `audit:allow(hash-iter): why` grammar
/// without being parsed as annotations.
pub struct Documented;

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt_from_panic_hygiene() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
