// Fixture: one violation per semantic (cross-function) rule, plus a
// suppressed case. Parsed by the audit tests, never compiled. This
// crate is not in DETERMINISTIC_CRATES, so the lexical hash-iter rule
// stays silent and the semantic findings are isolated.
#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::sync::Mutex;

/// rng-taint: the seed expression derives from a length, not a seed.
pub fn taint(len: u64) -> u64 {
    let mut rng = ChaCha8Rng::seed_from_u64(len);
    rng.next_u64()
}

/// rng-taint, suppressed per site.
pub fn taint_allowed(len: u64) -> u64 {
    // audit:allow(rng-taint): fixture demonstrates a suppressed taint
    let mut rng = ChaCha8Rng::seed_from_u64(len);
    rng.next_u64()
}

/// lock-order: acquires a then b …
pub fn ab(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let ga = a.lock().unwrap();
    let gb = b.lock().unwrap();
    *ga + *gb
}

/// … while the sibling acquires b then a: an inversion cycle.
pub fn ba(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let gb = b.lock().unwrap();
    let ga = a.lock().unwrap();
    *ga + *gb
}

/// ordered-reduction: a merge accumulating floats in hash order.
pub fn merge_scores(m: &HashMap<u64, f64>) -> f64 {
    let mut total = 0.0;
    for v in m.values() {
        total += v;
    }
    total
}

/// env-doc-drift: the key is read here but absent from README.md.
pub fn secret() -> Option<String> {
    std::env::var("QCPA_FIXTURE_SECRET").ok()
}
