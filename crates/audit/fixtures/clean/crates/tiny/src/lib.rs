// Fixture: a clean crate — the audit must produce zero findings.
#![forbid(unsafe_code)]

use std::collections::BTreeMap;

/// Sums the values of an ordered map.
pub fn sum(m: &BTreeMap<String, u64>) -> u64 {
    m.values().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 2u64);
        assert_eq!(sum(&m), 2);
    }
}
