#![forbid(unsafe_code)]
//! `qcpa-audit` — a std-only static-analysis pass that proves the
//! repo's determinism and safety invariants at the *source* level.
//!
//! The workspace's headline guarantee — allocations and fault/resilience
//! replays are bit-identical at any `QCPA_THREADS` — is enforced
//! dynamically by the conformance proptests, which can only catch a
//! nondeterminism leak on a path they happen to exercise. This crate is
//! the static complement: it lexes every workspace source file (comment/
//! string/raw-string/char-literal aware, no `syn`) and rejects the
//! constructs that make reruns diverge — hash-ordered iteration in the
//! deterministic crates, wall-clock reads outside the measurement
//! layers, ambient entropy, stray thread spawns — plus the safety
//! hygiene rules (undocumented `unsafe`, unannotated panics, env reads
//! off the `QCPA_*` surface).
//!
//! Suppression is per-site and auditable: an inline comment of the form
//! `audit:allow(rule-name): justification` on (or directly above) the
//! offending line. Doc comments never count as annotations, so the
//! grammar can be documented without suppressing anything. The
//! panic-hygiene rule is ratcheted instead: `audit.baseline.json` holds
//! the per-crate budget of unannotated `unwrap()`/`expect()` sites,
//! which may only shrink.
//!
//! See DESIGN.md §11 for the rule table and the mapping from each rule
//! to the paper-level invariant it guards.

pub mod ast;
pub mod callgraph;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod semantic;

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use report::{Finding, PanicStats, Report};
use rules::{FileCtx, Region, RuleId};

/// Name of the panic-hygiene ratchet file at the audited root.
pub const BASELINE_FILE: &str = "audit.baseline.json";

/// Walks up from `start` to the first directory whose `Cargo.toml`
/// declares a `[workspace]` — the audited root when `--root` is not
/// given.
pub fn discover_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// The audit driver: scans every source file of the workspace at
/// `root` and returns the assembled [`Report`].
pub fn run(root: &Path) -> io::Result<Report> {
    run_inner(root, false)
}

/// [`run`], additionally stamping per-phase analysis wall time into
/// [`Report::timing_ms`]. Kept out of the default path so the
/// canonical report stays byte-identical across reruns.
pub fn run_with_timing(root: &Path) -> io::Result<Report> {
    run_inner(root, true)
}

fn run_inner(root: &Path, timed: bool) -> io::Result<Report> {
    let baseline = load_baseline(root)?;
    let mut findings: Vec<Finding> = Vec::new();
    let mut files_scanned = 0u32;
    // crate name → (unannotated, annotated, lib lines); indices into
    // `findings` of that crate's unannotated panic sites, for
    // baselining after the counts are known.
    let mut panic_counts: BTreeMap<String, (u32, u32, u32)> = BTreeMap::new();
    let mut panic_sites: BTreeMap<String, Vec<usize>> = BTreeMap::new();

    for unit in workspace_units(root)? {
        for (dir, region) in unit.target_dirs() {
            let abs = root.join(&dir);
            if !abs.is_dir() {
                continue;
            }
            for file in rust_files(&abs)? {
                files_scanned += 1;
                let rel = format!(
                    "{}/{}",
                    dir,
                    file.strip_prefix(&abs)
                        .unwrap_or(&file)
                        .to_string_lossy()
                        .replace('\\', "/")
                );
                let src = fs::read_to_string(&file)?;
                scan_one(
                    &unit.crate_name,
                    &rel,
                    region,
                    &src,
                    &mut findings,
                    &mut panic_counts,
                    &mut panic_sites,
                );
            }
        }
    }

    // ---- semantic pass: AST + call graph, five cross-function rules.
    let clock = std::time::Instant::now();
    let mut timing: BTreeMap<String, f64> = BTreeMap::new();
    let mut last_ms = 0.0f64;
    let mut lap = |timing: &mut BTreeMap<String, f64>, phase: &str| {
        let now = clock.elapsed().as_secs_f64() * 1000.0;
        timing.insert(
            phase.to_string(),
            ((now - last_ms) * 1000.0).round() / 1000.0,
        );
        last_ms = now;
    };

    let mut sem_units: Vec<(String, callgraph::CrateGraph, Vec<semantic::FilePrep>)> = Vec::new();
    for unit in workspace_units(root)? {
        let crate_dir = if unit.dir.is_empty() {
            root.to_path_buf()
        } else {
            root.join(&unit.dir)
        };
        if !crate_dir.join("src").is_dir() {
            continue;
        }
        let graph = callgraph::CrateGraph::load(&unit.crate_name, &crate_dir)?;
        let preps = semantic::prep_files(&graph);
        sem_units.push((unit.dir, graph, preps));
    }
    lap(&mut timing, "parse");

    for (prefix, graph, preps) in &sem_units {
        findings.extend(semantic::rng_taint(prefix, graph, preps));
    }
    lap(&mut timing, "rng-taint");
    for (prefix, graph, preps) in &sem_units {
        findings.extend(semantic::lock_order(prefix, graph, preps));
    }
    lap(&mut timing, "lock-order");
    for (prefix, graph, preps) in &sem_units {
        findings.extend(semantic::ordered_reduction(prefix, graph, preps));
    }
    lap(&mut timing, "ordered-reduction");

    let mut hot_sites: BTreeMap<String, u32> = BTreeMap::new();
    for (prefix, graph, preps) in &sem_units {
        let sites = panic_counts
            .get(&graph.crate_name)
            .map(|(s, _, _)| *s)
            .unwrap_or(0);
        let budget = baseline.get(&graph.crate_name).copied().unwrap_or(0);
        let (fs, hot) = semantic::panic_path(prefix, graph, preps, sites <= budget);
        findings.extend(fs);
        hot_sites.insert(graph.crate_name.clone(), hot);
    }
    lap(&mut timing, "panic-path");

    let readme = fs::read_to_string(root.join("README.md")).ok();
    findings.extend(semantic::env_doc_drift(
        &sem_units,
        "README.md",
        readme.as_deref(),
    ));
    lap(&mut timing, "env-doc-drift");

    // Baseline the panic-hygiene findings: a crate at or under budget
    // has its unannotated sites marked `baselined`; a crate over budget
    // keeps them all unsuppressed.
    let mut stats: BTreeMap<String, PanicStats> = BTreeMap::new();
    for (krate, (sites, annotated, lib_lines)) in &panic_counts {
        let budget = baseline.get(krate).copied().unwrap_or(0);
        if *sites <= budget {
            for &i in panic_sites.get(krate).map(Vec::as_slice).unwrap_or(&[]) {
                findings[i].baselined = true;
            }
        }
        let density = if *lib_lines == 0 {
            0.0
        } else {
            let raw = f64::from(sites + annotated) / f64::from(*lib_lines) * 1000.0;
            (raw * 100.0).round() / 100.0
        };
        stats.insert(
            krate.clone(),
            PanicStats {
                sites: *sites,
                annotated: *annotated,
                baseline: budget,
                lib_lines: *lib_lines,
                density_per_kloc: density,
                hot_sites: hot_sites.get(krate).copied().unwrap_or(0),
            },
        );
    }

    let mut report = Report::assemble(files_scanned, findings, stats);
    if timed {
        report.timing_ms = Some(timing);
    }
    Ok(report)
}

/// Scans one source file, pushing findings and panic accounting.
fn scan_one(
    crate_name: &str,
    rel: &str,
    region: Region,
    src: &str,
    findings: &mut Vec<Finding>,
    panic_counts: &mut BTreeMap<String, (u32, u32, u32)>,
    panic_sites: &mut BTreeMap<String, Vec<usize>>,
) {
    let masked = lexer::mask(src);
    let mut raw_lines: Vec<&str> = src.lines().collect();
    while raw_lines.len() < masked.n_lines() {
        raw_lines.push("");
    }
    let test_lines = rules::mark_test_lines(&masked);
    let (allows, allow_findings) = rules::parse_allows(rel, &masked, &raw_lines);
    findings.extend(allow_findings);
    let ctx = FileCtx {
        rel_path: rel,
        crate_name,
        region,
        masked: &masked,
        raw_lines: &raw_lines,
        test_lines: &test_lines,
        allows: &allows,
    };
    if region == Region::Lib {
        let entry = panic_counts.entry(crate_name.to_string()).or_default();
        entry.2 += masked.n_lines() as u32;
    }
    for f in rules::scan_file(&ctx) {
        if f.rule == RuleId::PanicHygiene.name() {
            let entry = panic_counts.entry(crate_name.to_string()).or_default();
            if f.allowed {
                entry.1 += 1;
            } else {
                entry.0 += 1;
                panic_sites
                    .entry(crate_name.to_string())
                    .or_default()
                    .push(findings.len());
            }
        }
        findings.push(f);
    }
    if region == Region::Lib && rel.ends_with("src/lib.rs") {
        if let Some(f) = rules::check_forbid_unsafe(rel, &masked, &raw_lines, &allows) {
            findings.push(f);
        }
    }
}

/// One crate (or the workspace-root package) to audit.
struct Unit {
    /// Package name (`qcpa-core`, …, or `qcpa` for the root).
    crate_name: String,
    /// Directory relative to root (`crates/core` or `` for the root).
    dir: String,
}

impl Unit {
    /// The cargo target directories of this unit and their regions.
    fn target_dirs(&self) -> Vec<(String, Region)> {
        let join = |sub: &str| {
            if self.dir.is_empty() {
                sub.to_string()
            } else {
                format!("{}/{sub}", self.dir)
            }
        };
        vec![
            (join("src"), Region::Lib),
            (join("tests"), Region::Test),
            (join("benches"), Region::Bench),
            (join("examples"), Region::Example),
        ]
    }
}

/// Enumerates the audited units: every directory under `crates/` (the
/// package name is `qcpa-<dirname>` by workspace convention) plus the
/// root package `qcpa`. `vendor/` stand-ins and `target/` are never
/// walked; fixture corpora live outside target directories.
fn workspace_units(root: &Path) -> io::Result<Vec<Unit>> {
    let mut units = vec![Unit {
        crate_name: "qcpa".to_string(),
        dir: String::new(),
    }];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut names: Vec<String> = Vec::new();
        for entry in fs::read_dir(&crates_dir)? {
            let entry = entry?;
            if entry.file_type()?.is_dir() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        for name in names {
            units.push(Unit {
                crate_name: format!("qcpa-{name}"),
                dir: format!("crates/{name}"),
            });
        }
    }
    Ok(units)
}

/// Recursively lists `.rs` files under `dir`, sorted for a
/// deterministic report.
fn rust_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d)? {
            let entry = entry?;
            let path = entry.path();
            if entry.file_type()?.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Loads the panic-hygiene baseline (`audit.baseline.json` at the
/// root): a JSON object mapping crate names to budgets. A missing file
/// is an empty baseline; a malformed one is an error (a silently
/// ignored ratchet is no ratchet).
fn load_baseline(root: &Path) -> io::Result<BTreeMap<String, u32>> {
    let path = root.join(BASELINE_FILE);
    if !path.is_file() {
        return Ok(BTreeMap::new());
    }
    let text = fs::read_to_string(&path)?;
    serde_json::from_str(&text).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: {e}", path.display()),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discover_root_finds_workspace() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = discover_root(here).expect("workspace root above crates/audit");
        assert!(root.join("crates").is_dir());
        assert!(root.join("Cargo.toml").is_file());
    }

    #[test]
    fn units_include_root_and_crates() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = discover_root(here).expect("workspace root");
        let units = workspace_units(&root).expect("units");
        let names: Vec<&str> = units.iter().map(|u| u.crate_name.as_str()).collect();
        assert!(names.contains(&"qcpa"));
        assert!(names.contains(&"qcpa-core"));
        assert!(names.contains(&"qcpa-audit"));
    }
}
