//! Tokenizer and recursive-descent parser over [`crate::lexer::Masked`]
//! streams, producing the [`crate::ast`] item/expression tree.
//!
//! Design constraints, in order:
//!
//! 1. **Never fail, never hang.** Real workspace sources must always
//!    parse to *something*; constructs outside the grammar degrade to
//!    [`Expr::Unknown`] / [`ItemKind::Other`] and the cursor always
//!    advances. The parser is a total function of the token stream.
//! 2. **Deterministic.** Same input, same AST, bit for bit — the audit
//!    report is pinned byte-for-byte in fixtures.
//! 3. **Span-accounting.** Top-level item token ranges tile the token
//!    stream exactly (`[0, n_tokens)`), so the property tests can prove
//!    no token is dropped or double-consumed.
//!
//! The tokenizer does not re-lex: it walks the masked code lines (all
//! comments and literal bodies already blanked) and re-injects literal
//! tokens from the lexer's recorded [`crate::lexer::LitSpan`]s, so the
//! two passes can never disagree about what is code.

use crate::ast::{Arm, Block, Expr, File, FnItem, Item, ItemKind, Param, Stmt, UseLeaf};
use crate::lexer::{LitKind, Masked};

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword.
    Ident,
    /// A raw identifier (`r#type` — `text` holds `type`).
    RawIdent,
    /// A lifetime or loop label (`'a`, `'outer`).
    Lifetime,
    /// A numeric literal (loosely lexed; never interpreted).
    Number,
    /// A string/raw-string/byte-string literal (`text` is the body).
    Str,
    /// A char/byte-char literal (`text` is the body).
    Char,
    /// Punctuation (multi-character operators are one token).
    Punct,
}

/// One token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind.
    pub kind: TokKind,
    /// Token text (identifier name, literal body, operator).
    pub text: String,
    /// 0-based source line.
    pub line: usize,
    /// 0-based char column of the token start.
    pub col: usize,
}

/// Multi-character operators, longest first so greedy matching wins.
const MULTI_PUNCT: [&str; 22] = [
    "..=", "<<=", ">>=", "...", "::", "->", "=>", "..", "+=", "-=", "*=", "/=", "%=", "^=", "&=",
    "|=", "==", "!=", "<=", ">=", "&&", "||",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes a masked file: idents, numbers, lifetimes, punctuation
/// from the code stream; literals re-injected from the lexer's spans.
pub fn tokenize(masked: &Masked) -> Vec<Token> {
    let mut toks = Vec::new();
    let mut next_lit = 0usize;
    for (line_no, line) in masked.code.iter().enumerate() {
        let chars: Vec<char> = line.chars().collect();
        let mut col = 0usize;
        while col < chars.len() {
            // Literal injection: the masked code holds only blanks
            // here, so the span's start column is where the literal
            // token belongs.
            if let Some(lit) = masked.literals.get(next_lit) {
                if lit.line == line_no && lit.col == col {
                    toks.push(Token {
                        kind: match lit.kind {
                            LitKind::Str => TokKind::Str,
                            LitKind::Char => TokKind::Char,
                        },
                        text: lit.text.clone(),
                        line: line_no,
                        col,
                    });
                    next_lit += 1;
                    col += 1;
                    continue;
                }
            }
            let c = chars[col];
            if c.is_whitespace() {
                col += 1;
                continue;
            }
            // Raw identifier: `r#name` lexes to one RawIdent token.
            if c == 'r'
                && chars.get(col + 1) == Some(&'#')
                && chars
                    .get(col + 2)
                    .is_some_and(|&c| is_ident_start(c) || c.is_ascii_digit())
            {
                let start = col;
                col += 2;
                let mut text = String::new();
                while col < chars.len() && is_ident_char(chars[col]) {
                    text.push(chars[col]);
                    col += 1;
                }
                toks.push(Token {
                    kind: TokKind::RawIdent,
                    text,
                    line: line_no,
                    col: start,
                });
                continue;
            }
            if is_ident_start(c) {
                let start = col;
                let mut text = String::new();
                while col < chars.len() && is_ident_char(chars[col]) {
                    text.push(chars[col]);
                    col += 1;
                }
                toks.push(Token {
                    kind: TokKind::Ident,
                    text,
                    line: line_no,
                    col: start,
                });
                continue;
            }
            if c.is_ascii_digit() {
                let start = col;
                let mut text = String::new();
                while col < chars.len() && is_ident_char(chars[col]) {
                    text.push(chars[col]);
                    col += 1;
                }
                // `1.5` continues the number; `1..3` does not.
                if chars.get(col) == Some(&'.')
                    && chars.get(col + 1).is_some_and(|c| c.is_ascii_digit())
                {
                    text.push('.');
                    col += 1;
                    while col < chars.len() && is_ident_char(chars[col]) {
                        text.push(chars[col]);
                        col += 1;
                    }
                }
                toks.push(Token {
                    kind: TokKind::Number,
                    text,
                    line: line_no,
                    col: start,
                });
                continue;
            }
            if c == '\'' && chars.get(col + 1).is_some_and(|&c| is_ident_start(c)) {
                // Char literals are masked out, so a surviving quote
                // followed by an identifier is a lifetime or label.
                let start = col;
                let mut text = String::from("'");
                col += 1;
                while col < chars.len() && is_ident_char(chars[col]) {
                    text.push(chars[col]);
                    col += 1;
                }
                toks.push(Token {
                    kind: TokKind::Lifetime,
                    text,
                    line: line_no,
                    col: start,
                });
                continue;
            }
            // Punctuation: longest multi-char operator first.
            let rest: String = chars[col..chars.len().min(col + 3)].iter().collect();
            let mut matched = None;
            for op in MULTI_PUNCT {
                if rest.starts_with(op) {
                    matched = Some(op);
                    break;
                }
            }
            let text = match matched {
                Some(op) => op.to_string(),
                None => c.to_string(),
            };
            let len = text.chars().count();
            toks.push(Token {
                kind: TokKind::Punct,
                text,
                line: line_no,
                col,
            });
            col += len;
        }
    }
    toks
}

/// Parses a masked file into the AST. Total: never panics, always
/// consumes every token (top-level item spans tile the stream).
pub fn parse_file(masked: &Masked) -> File {
    let toks = tokenize(masked);
    let mut p = Parser {
        toks: &toks,
        pos: 0,
    };
    let items = p.parse_items(None);
    File {
        items,
        n_tokens: toks.len(),
    }
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.toks.get(self.pos)
    }

    fn peek_at(&self, off: usize) -> Option<&'a Token> {
        self.toks.get(self.pos + off)
    }

    fn peek_text(&self) -> &'a str {
        self.peek().map(|t| t.text.as_str()).unwrap_or("")
    }

    fn peek_is(&self, text: &str) -> bool {
        self.peek().is_some_and(|t| t.text == text)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn line(&self) -> usize {
        self.peek()
            .map(|t| t.line)
            .or_else(|| self.toks.last().map(|t| t.line))
            .unwrap_or(0)
    }

    fn prev_line(&self) -> usize {
        self.toks
            .get(self.pos.saturating_sub(1))
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Consumes the token if its text matches.
    fn eat(&mut self, text: &str) -> bool {
        if self.peek_is(text) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Skips a balanced delimiter group assuming the opener is next;
    /// returns the consumed tokens. No-op when the opener is absent.
    fn skip_group(&mut self, open: &str, close: &str) -> &'a [Token] {
        if !self.peek_is(open) {
            return &[];
        }
        let start = self.pos;
        let mut depth = 0usize;
        while let Some(t) = self.bump() {
            if t.text == open {
                depth += 1;
            } else if t.text == close {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
        }
        &self.toks[start..self.pos]
    }

    /// Skips a generic-argument group `<…>`, treating `<`/`>` as
    /// brackets and bailing out at `;`/`{` (a lone comparison `<`
    /// would otherwise swallow the file). Returns true if a balanced
    /// group was consumed.
    fn skip_angle_group(&mut self) -> bool {
        if !self.peek_is("<") {
            return false;
        }
        let save = self.pos;
        let mut depth = 0isize;
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        self.pos += 1;
                        return true;
                    }
                }
                "<<" => depth += 2,
                ">>" => depth -= 2,
                "->" => {}
                ";" | "{" => break,
                _ => {}
            }
            self.pos += 1;
            if depth <= 0 {
                break;
            }
        }
        self.pos = save;
        false
    }

    /// Collects tokens until one of `stops` at delimiter depth 0
    /// (not consuming the stop token). Angle brackets are depth too,
    /// so `Foo<A, B>` does not stop at the comma.
    fn tokens_until(&mut self, stops: &[&str]) -> &'a [Token] {
        let start = self.pos;
        let mut round = 0usize; // ( )
        let mut square = 0usize; // [ ]
        let mut curly = 0usize; // { }
        let mut angle = 0isize; // < >
        while let Some(t) = self.peek() {
            let tx = t.text.as_str();
            if round == 0 && square == 0 && curly == 0 && angle <= 0 && stops.contains(&tx) {
                break;
            }
            match tx {
                "(" => round += 1,
                ")" => {
                    if round == 0 {
                        break;
                    }
                    round -= 1;
                }
                "[" => square += 1,
                "]" => {
                    if square == 0 {
                        break;
                    }
                    square -= 1;
                }
                "{" => curly += 1,
                "}" => {
                    if curly == 0 {
                        break;
                    }
                    curly -= 1;
                }
                "<" => angle += 1,
                ">" => angle = (angle - 1).max(0),
                _ => {}
            }
            self.pos += 1;
        }
        &self.toks[start..self.pos]
    }

    // ---------------------------------------------------------------
    // Items
    // ---------------------------------------------------------------

    /// Parses items until `closer` (or end of stream). The closer
    /// itself is consumed.
    fn parse_items(&mut self, closer: Option<&str>) -> Vec<Item> {
        let mut items = Vec::new();
        while let Some(t) = self.peek() {
            if let Some(c) = closer {
                if t.text == c {
                    self.pos += 1;
                    break;
                }
            }
            items.push(self.parse_item());
        }
        items
    }

    fn parse_item(&mut self) -> Item {
        let tok_start = self.pos;
        let line = self.line();
        let mut attrs = Vec::new();
        // Attributes: `#[…]` and the crate-level `#![…]`.
        while self.peek_is("#") {
            let save = self.pos;
            self.pos += 1;
            self.eat("!");
            if self.peek_is("[") {
                let group = self.skip_group("[", "]");
                let inner: Vec<&str> = group
                    .iter()
                    .skip(1)
                    .take(group.len().saturating_sub(2))
                    .map(|t| t.text.as_str())
                    .collect();
                attrs.push(inner.join(" "));
            } else {
                // A stray `#`: not an attribute; rewind and let the
                // fallback consume it.
                self.pos = save;
                break;
            }
        }
        // Visibility.
        if self.eat("pub") {
            self.skip_group("(", ")");
        }
        // Qualifiers before `fn`.
        let mut qualified_fn = false;
        loop {
            match self.peek_text() {
                "const" if self.peek_at(1).is_some_and(|t| t.text == "fn") => {
                    self.pos += 1;
                    qualified_fn = true;
                }
                "unsafe" | "async" => {
                    if self.peek_at(1).is_some_and(|t| t.text == "fn") {
                        self.pos += 1;
                        qualified_fn = true;
                    } else {
                        break;
                    }
                }
                "extern" if self.peek_at(1).is_some_and(|t| t.kind == TokKind::Str) => {
                    if self.peek_at(2).is_some_and(|t| t.text == "fn") {
                        self.pos += 2;
                        qualified_fn = true;
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        let _ = qualified_fn;
        let kind = match self.peek_text() {
            "fn" => self.parse_fn(),
            "mod" => self.parse_mod(),
            "use" => self.parse_use(),
            "impl" => self.parse_impl(),
            "trait" => self.parse_trait(),
            "struct" | "enum" | "union" => {
                let kw = self.bump().map(|t| t.text.clone()).unwrap_or_default();
                let name = self.ident();
                self.skip_angle_group();
                // Tuple struct `( … );`, unit `;`, or braced `{ … }`
                // (possibly after a where clause).
                self.tokens_until(&["{", ";", "("]);
                if self.peek_is("(") {
                    self.skip_group("(", ")");
                    self.tokens_until(&[";"]);
                }
                if !self.eat(";") {
                    self.skip_group("{", "}");
                }
                ItemKind::Other { keyword: kw, name }
            }
            "const" | "static" | "type" => {
                let kw = self.bump().map(|t| t.text.clone()).unwrap_or_default();
                let name = self.ident();
                self.tokens_until(&[";"]);
                self.eat(";");
                ItemKind::Other { keyword: kw, name }
            }
            "macro_rules" => {
                self.pos += 1;
                self.eat("!");
                let name = self.ident();
                self.skip_group("{", "}");
                self.skip_group("(", ")");
                self.eat(";");
                ItemKind::Other {
                    keyword: "macro_rules".to_string(),
                    name,
                }
            }
            "extern" => {
                self.pos += 1;
                if self.eat("crate") {
                    let name = self.ident();
                    self.tokens_until(&[";"]);
                    self.eat(";");
                    ItemKind::Other {
                        keyword: "extern crate".to_string(),
                        name,
                    }
                } else {
                    if self.peek().is_some_and(|t| t.kind == TokKind::Str) {
                        self.pos += 1;
                    }
                    self.skip_group("{", "}");
                    ItemKind::Other {
                        keyword: "extern".to_string(),
                        name: None,
                    }
                }
            }
            _ => {
                // Macro invocation at item level, or an unparseable
                // token: consume something and move on.
                if self.peek().is_some_and(|t| t.kind == TokKind::Ident)
                    && self.peek_at(1).is_some_and(|t| t.text == "!")
                {
                    let name = self.ident();
                    self.eat("!");
                    self.skip_group("(", ")");
                    self.skip_group("[", "]");
                    self.skip_group("{", "}");
                    self.eat(";");
                    ItemKind::Other {
                        keyword: "macro".to_string(),
                        name,
                    }
                } else {
                    let kw = self.bump().map(|t| t.text.clone()).unwrap_or_default();
                    ItemKind::Other {
                        keyword: kw,
                        name: None,
                    }
                }
            }
        };
        Item {
            kind,
            line,
            end_line: self.prev_line(),
            tok_start,
            tok_end: self.pos,
            attrs,
        }
    }

    /// The next token's text when it is an identifier.
    fn ident(&mut self) -> Option<String> {
        if self
            .peek()
            .is_some_and(|t| matches!(t.kind, TokKind::Ident | TokKind::RawIdent))
        {
            return self.bump().map(|t| t.text.clone());
        }
        None
    }

    fn parse_fn(&mut self) -> ItemKind {
        self.eat("fn");
        let name = self.ident().unwrap_or_default();
        self.skip_angle_group();
        let mut params = Vec::new();
        if self.peek_is("(") {
            let group = self.skip_group("(", ")");
            if group.len() >= 2 {
                params = parse_params(&group[1..group.len() - 1]);
            }
        }
        // Return type and where clause: skip to the body or `;`.
        self.tokens_until(&["{", ";"]);
        let body = if self.peek_is("{") {
            Some(self.parse_block())
        } else {
            self.eat(";");
            None
        };
        ItemKind::Fn(FnItem { name, params, body })
    }

    fn parse_mod(&mut self) -> ItemKind {
        self.eat("mod");
        let name = self.ident().unwrap_or_default();
        if self.eat(";") {
            ItemKind::Mod { name, items: None }
        } else if self.eat("{") {
            let items = self.parse_items(Some("}"));
            ItemKind::Mod {
                name,
                items: Some(items),
            }
        } else {
            ItemKind::Mod { name, items: None }
        }
    }

    fn parse_use(&mut self) -> ItemKind {
        self.eat("use");
        let tree = self.tokens_until(&[";"]);
        self.eat(";");
        let mut leaves = Vec::new();
        flatten_use(tree, &mut Vec::new(), &mut leaves);
        ItemKind::Use { leaves }
    }

    fn parse_impl(&mut self) -> ItemKind {
        self.eat("impl");
        self.skip_angle_group();
        let first = self.type_path();
        let (trait_name, type_name) = if self.eat("for") {
            (first, self.type_path())
        } else {
            (None, first)
        };
        self.tokens_until(&["{", ";"]);
        if self.eat(";") {
            return ItemKind::Impl {
                type_name: type_name.unwrap_or_default(),
                trait_name,
                items: Vec::new(),
            };
        }
        self.eat("{");
        let items = self.parse_items(Some("}"));
        ItemKind::Impl {
            type_name: type_name.unwrap_or_default(),
            trait_name,
            items,
        }
    }

    fn parse_trait(&mut self) -> ItemKind {
        self.eat("trait");
        let name = self.ident().unwrap_or_default();
        self.skip_angle_group();
        self.tokens_until(&["{", ";"]);
        if self.eat(";") {
            return ItemKind::Trait {
                name,
                items: Vec::new(),
            };
        }
        self.eat("{");
        let items = self.parse_items(Some("}"));
        ItemKind::Trait { name, items }
    }

    /// A type path for impl headers: returns the last meaningful path
    /// segment (`Vec < Foo >` → `Vec`; `a::b::Baz` → `Baz`; `& mut T`
    /// → `T`; `dyn Trait` → `Trait`).
    fn type_path(&mut self) -> Option<String> {
        while matches!(self.peek_text(), "&" | "*" | "mut" | "dyn" | "'") {
            self.pos += 1;
        }
        while self.peek().is_some_and(|t| t.kind == TokKind::Lifetime) {
            self.pos += 1;
        }
        let mut last = None;
        while let Some(seg) = self.ident() {
            last = Some(seg);
            self.skip_angle_group();
            if !self.eat("::") {
                break;
            }
        }
        self.skip_angle_group();
        last
    }

    // ---------------------------------------------------------------
    // Blocks and statements
    // ---------------------------------------------------------------

    fn parse_block(&mut self) -> Block {
        let line = self.line();
        self.eat("{");
        let mut stmts = Vec::new();
        loop {
            if self.at_end() || self.peek_is("}") {
                self.eat("}");
                break;
            }
            if self.eat(";") {
                continue;
            }
            let before = self.pos;
            stmts.push(self.parse_stmt());
            if self.pos == before {
                // Safety valve: a statement that consumed nothing
                // would loop forever.
                self.pos += 1;
            }
        }
        Block {
            stmts,
            line,
            end_line: self.prev_line(),
        }
    }

    fn parse_stmt(&mut self) -> Stmt {
        // Item-in-block (fn, struct, use, …). Attributes ahead of an
        // item keyword also take the item path.
        let t = self.peek_text();
        let is_item_start = matches!(
            t,
            "fn" | "mod" | "use" | "impl" | "trait" | "struct" | "enum" | "union" | "macro_rules"
        ) || (t == "pub")
            || (t == "#" && self.stmt_attr_precedes_item())
            || (matches!(t, "const" | "static" | "type" | "unsafe" | "extern")
                && self.item_disambiguation());
        if is_item_start {
            return Stmt::Item(self.parse_item());
        }
        if self.peek_is("let") {
            return self.parse_let();
        }
        let e = self.parse_expr(false);
        self.eat(";");
        Stmt::Expr(e)
    }

    /// After a `#` in statement position: does an item keyword follow
    /// the attribute group(s)?
    fn stmt_attr_precedes_item(&self) -> bool {
        let mut i = self.pos;
        while self.toks.get(i).is_some_and(|t| t.text == "#") {
            i += 1;
            if self.toks.get(i).is_some_and(|t| t.text == "!") {
                i += 1;
            }
            if self.toks.get(i).is_none_or(|t| t.text != "[") {
                return false;
            }
            let mut depth = 0usize;
            while let Some(t) = self.toks.get(i) {
                if t.text == "[" {
                    depth += 1;
                } else if t.text == "]" {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                i += 1;
            }
        }
        matches!(
            self.toks.get(i).map(|t| t.text.as_str()).unwrap_or(""),
            "fn" | "mod"
                | "use"
                | "impl"
                | "trait"
                | "struct"
                | "enum"
                | "const"
                | "static"
                | "type"
                | "pub"
                | "macro_rules"
        )
    }

    /// `const`/`static`/`type`/`unsafe`/`extern` in statement position:
    /// item (const X: …) or expression (`unsafe { … }`, `const` block)?
    fn item_disambiguation(&self) -> bool {
        match self.peek_text() {
            "unsafe" => self.peek_at(1).is_some_and(|t| t.text == "fn"),
            "const" => self
                .peek_at(1)
                .is_some_and(|t| matches!(t.kind, TokKind::Ident | TokKind::RawIdent)),
            "static" | "type" => true,
            "extern" => true,
            _ => false,
        }
    }

    fn parse_let(&mut self) -> Stmt {
        let line = self.line();
        self.eat("let");
        let pat = self.tokens_until(&[":", "=", ";"]);
        let names = pattern_names(pat);
        let ty = if self.eat(":") {
            let ty_toks = self.tokens_until(&["=", ";"]);
            Some(join_tokens(ty_toks))
        } else {
            None
        };
        let init = if self.eat("=") {
            let e = self.parse_expr(false);
            // let-else: `let Some(x) = e else { … };`
            if self.eat("else") {
                self.parse_block();
            }
            Some(e)
        } else {
            None
        };
        self.eat(";");
        Stmt::Let {
            names,
            ty,
            init,
            line,
        }
    }

    // ---------------------------------------------------------------
    // Expressions
    // ---------------------------------------------------------------

    /// Parses one expression. `no_struct` suppresses struct-literal
    /// parsing (condition/scrutinee/iterator position, where `{` opens
    /// the body instead).
    fn parse_expr(&mut self, no_struct: bool) -> Expr {
        let lhs = self.parse_prefix(no_struct);
        self.parse_binary_tail(lhs, no_struct)
    }

    fn parse_binary_tail(&mut self, mut lhs: Expr, no_struct: bool) -> Expr {
        loop {
            let line = self.line();
            match self.peek_text() {
                "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "&=" | "|=" | "<<=" | ">>=" => {
                    let op = self.bump().map(|t| t.text.clone()).unwrap_or_default();
                    let value = self.parse_expr(no_struct);
                    lhs = Expr::Assign {
                        op,
                        target: Box::new(lhs),
                        value: Box::new(value),
                        line,
                    };
                }
                "+" | "-" | "*" | "/" | "%" | "==" | "!=" | "<" | ">" | "<=" | ">=" | "&&"
                | "||" | "&" | "|" | "^" | ".." | "..=" => {
                    let op = self.bump().map(|t| t.text.clone()).unwrap_or_default();
                    // Open-ended range (`start..`): no right operand.
                    if (op == ".." || op == "..=") && self.range_has_no_rhs() {
                        lhs = Expr::Binary {
                            op,
                            lhs: Box::new(lhs),
                            rhs: Box::new(Expr::Unknown { line }),
                            line,
                        };
                        continue;
                    }
                    let rhs = self.parse_prefix(no_struct);
                    lhs = Expr::Binary {
                        op,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                        line,
                    };
                }
                "as" => {
                    self.pos += 1;
                    self.skip_type();
                }
                "?" => {
                    self.pos += 1;
                }
                _ => break,
            }
        }
        lhs
    }

    fn range_has_no_rhs(&self) -> bool {
        matches!(
            self.peek_text(),
            "" | ")" | "]" | "}" | "," | ";" | "=>" | "{"
        )
    }

    /// Consumes a type after `as`: references, paths, generics,
    /// primitive names. Conservative: stops at any operator that can
    /// continue an expression.
    fn skip_type(&mut self) {
        while matches!(self.peek_text(), "&" | "mut" | "dyn" | "*" | "const") {
            self.pos += 1;
        }
        loop {
            if self
                .peek()
                .is_some_and(|t| matches!(t.kind, TokKind::Ident | TokKind::RawIdent))
            {
                self.pos += 1;
                self.skip_angle_group();
                if self.eat("::") {
                    continue;
                }
            } else if self.peek_is("(") {
                self.skip_group("(", ")");
            }
            break;
        }
    }

    fn parse_prefix(&mut self, no_struct: bool) -> Expr {
        let line = self.line();
        match self.peek_text() {
            "&" | "&&" => {
                // `&&x` is two nested borrows.
                let tok = self.bump().map(|t| t.text.clone()).unwrap_or_default();
                self.eat("mut");
                let inner = self.parse_prefix(no_struct);
                let once = Expr::Unary {
                    op: "&".to_string(),
                    expr: Box::new(inner),
                    line,
                };
                if tok == "&&" {
                    Expr::Unary {
                        op: "&".to_string(),
                        expr: Box::new(once),
                        line,
                    }
                } else {
                    once
                }
            }
            "*" | "!" | "-" => {
                let op = self.bump().map(|t| t.text.clone()).unwrap_or_default();
                let inner = self.parse_prefix(no_struct);
                Expr::Unary {
                    op,
                    expr: Box::new(inner),
                    line,
                }
            }
            "return" | "break" | "continue" => {
                let op = self.bump().map(|t| t.text.clone()).unwrap_or_default();
                // Optional label, optional value.
                if self.peek().is_some_and(|t| t.kind == TokKind::Lifetime) {
                    self.pos += 1;
                }
                let expr = if matches!(self.peek_text(), "" | ";" | "}" | ")" | "," | "]") {
                    Expr::Unknown { line }
                } else {
                    self.parse_expr(no_struct)
                };
                Expr::Unary {
                    op,
                    expr: Box::new(expr),
                    line,
                }
            }
            ".." | "..=" => {
                let op = self.bump().map(|t| t.text.clone()).unwrap_or_default();
                let expr = if self.range_has_no_rhs() {
                    Expr::Unknown { line }
                } else {
                    self.parse_prefix(no_struct)
                };
                Expr::Unary {
                    op,
                    expr: Box::new(expr),
                    line,
                }
            }
            _ => {
                let primary = self.parse_primary(no_struct);
                self.parse_postfix(primary, no_struct)
            }
        }
    }

    fn parse_postfix(&mut self, mut expr: Expr, no_struct: bool) -> Expr {
        loop {
            let line = self.line();
            if self.peek_is(".") {
                self.pos += 1;
                if self.peek().is_some_and(|t| t.kind == TokKind::Number) {
                    let name = self.bump().map(|t| t.text.clone()).unwrap_or_default();
                    expr = Expr::Field {
                        recv: Box::new(expr),
                        name,
                        line,
                    };
                    continue;
                }
                let Some(name) = self.ident() else {
                    // `.await` would be an ident; anything else is
                    // unshapeable — stop the chain.
                    break;
                };
                // Turbofish on a method call.
                if self.peek_is("::") {
                    self.pos += 1;
                    self.skip_angle_group();
                }
                if self.peek_is("(") {
                    let args = self.parse_call_args();
                    expr = Expr::MethodCall {
                        recv: Box::new(expr),
                        name,
                        args,
                        line,
                    };
                } else {
                    expr = Expr::Field {
                        recv: Box::new(expr),
                        name,
                        line,
                    };
                }
            } else if self.peek_is("(") {
                let args = self.parse_call_args();
                expr = Expr::Call {
                    callee: Box::new(expr),
                    args,
                    line,
                };
            } else if self.peek_is("[") {
                self.pos += 1;
                let index = if self.peek_is("]") {
                    Expr::Unknown { line }
                } else {
                    self.parse_expr(false)
                };
                // `[x; n]` in index position cannot occur; `]` closes.
                self.tokens_until(&["]"]);
                self.eat("]");
                expr = Expr::Index {
                    recv: Box::new(expr),
                    index: Box::new(index),
                    line,
                };
            } else if self.peek_is("?") {
                self.pos += 1;
            } else if self.peek_is("{") && !no_struct && struct_lit_candidate(&expr) {
                let path = match &expr {
                    Expr::Path { segs, .. } => segs.clone(),
                    _ => Vec::new(),
                };
                let fields = self.parse_struct_fields();
                expr = Expr::StructLit { path, fields, line };
            } else {
                break;
            }
        }
        expr
    }

    fn parse_call_args(&mut self) -> Vec<Expr> {
        self.eat("(");
        let mut args = Vec::new();
        loop {
            if self.at_end() || self.eat(")") {
                break;
            }
            if self.eat(",") {
                continue;
            }
            let before = self.pos;
            args.push(self.parse_expr(false));
            if self.pos == before {
                self.pos += 1;
            }
        }
        args
    }

    fn parse_struct_fields(&mut self) -> Vec<(String, Expr)> {
        self.eat("{");
        let mut fields = Vec::new();
        loop {
            if self.at_end() || self.eat("}") {
                break;
            }
            if self.eat(",") {
                continue;
            }
            if self.peek_is("..") {
                let line = self.line();
                self.pos += 1;
                let base = if self.peek_is("}") {
                    Expr::Unknown { line }
                } else {
                    self.parse_expr(false)
                };
                fields.push(("..".to_string(), base));
                continue;
            }
            let before = self.pos;
            let name = self.ident().unwrap_or_default();
            if self.eat(":") {
                let value = self.parse_expr(false);
                fields.push((name, value));
            } else {
                // Shorthand `Foo { x }`.
                let line = self.prev_line();
                fields.push((
                    name.clone(),
                    Expr::Path {
                        segs: vec![name],
                        line,
                    },
                ));
            }
            if self.pos == before {
                self.pos += 1;
            }
        }
        fields
    }

    fn parse_primary(&mut self, no_struct: bool) -> Expr {
        let line = self.line();
        let Some(t) = self.peek() else {
            return Expr::Unknown { line };
        };
        match t.kind {
            TokKind::Number | TokKind::Str | TokKind::Char => {
                let text = self.bump().map(|t| t.text.clone()).unwrap_or_default();
                return Expr::Lit { text, line };
            }
            TokKind::Lifetime => {
                // Loop label: `'outer: loop { … }`.
                self.pos += 1;
                self.eat(":");
                return self.parse_primary(no_struct);
            }
            _ => {}
        }
        match t.text.as_str() {
            "true" | "false" => {
                let text = self.bump().map(|t| t.text.clone()).unwrap_or_default();
                Expr::Lit { text, line }
            }
            "if" => self.parse_if(),
            "match" => self.parse_match(),
            "for" => self.parse_for(),
            "while" => self.parse_while(),
            "loop" => {
                self.pos += 1;
                let body = self.parse_block();
                Expr::While {
                    cond: None,
                    body,
                    line,
                }
            }
            "unsafe" => {
                self.pos += 1;
                Expr::Block(self.parse_block())
            }
            "move" => {
                self.pos += 1;
                self.parse_closure(line)
            }
            "|" | "||" => self.parse_closure(line),
            "(" => {
                self.pos += 1;
                let mut elems = Vec::new();
                let mut trailing_comma = false;
                loop {
                    if self.at_end() || self.eat(")") {
                        break;
                    }
                    if self.eat(",") {
                        trailing_comma = true;
                        continue;
                    }
                    let before = self.pos;
                    elems.push(self.parse_expr(false));
                    if self.pos == before {
                        self.pos += 1;
                    }
                }
                if elems.len() == 1 && !trailing_comma {
                    elems.pop().unwrap_or(Expr::Unknown { line })
                } else {
                    Expr::Tuple { elems, line }
                }
            }
            "[" => {
                self.pos += 1;
                let mut elems = Vec::new();
                loop {
                    if self.at_end() || self.eat("]") {
                        break;
                    }
                    if self.eat(",") || self.eat(";") {
                        continue;
                    }
                    let before = self.pos;
                    elems.push(self.parse_expr(false));
                    if self.pos == before {
                        self.pos += 1;
                    }
                }
                Expr::Array { elems, line }
            }
            "{" => Expr::Block(self.parse_block()),
            "<" => {
                // Qualified path `<T as Trait>::method(…)`.
                self.skip_angle_group();
                if self.eat("::") {
                    self.parse_path_expr(no_struct)
                } else {
                    Expr::Unknown { line }
                }
            }
            _ if matches!(t.kind, TokKind::Ident | TokKind::RawIdent) => {
                // Macro call?
                if self.peek_at(1).is_some_and(|t| t.text == "!")
                    && self
                        .peek_at(2)
                        .is_some_and(|t| matches!(t.text.as_str(), "(" | "[" | "{"))
                {
                    let name = self.ident().unwrap_or_default();
                    self.eat("!");
                    let args = self.parse_macro_args();
                    return Expr::MacroCall { name, args, line };
                }
                self.parse_path_expr(no_struct)
            }
            _ => {
                self.pos += 1;
                Expr::Unknown { line }
            }
        }
    }

    /// Parses a path expression: segments joined by `::`, skipping
    /// turbofish generic groups.
    fn parse_path_expr(&mut self, _no_struct: bool) -> Expr {
        let line = self.line();
        let mut segs = Vec::new();
        while let Some(seg) = self.ident() {
            segs.push(seg);
            if self.peek_is("::") {
                self.pos += 1;
                if self.peek_is("<") {
                    self.skip_angle_group();
                    if self.peek_is("::") {
                        self.pos += 1;
                        continue;
                    }
                    break;
                }
                continue;
            }
            break;
        }
        if segs.is_empty() {
            return Expr::Unknown { line };
        }
        Expr::Path { segs, line }
    }

    fn parse_macro_args(&mut self) -> Vec<Expr> {
        let (open, close) = match self.peek_text() {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            "{" => ("{", "}"),
            _ => return Vec::new(),
        };
        self.eat(open);
        let mut args = Vec::new();
        loop {
            if self.at_end() || self.eat(close) {
                break;
            }
            if self.eat(",") || self.eat(";") {
                continue;
            }
            let before = self.pos;
            args.push(self.parse_expr(false));
            if self.pos == before {
                self.pos += 1;
            }
        }
        args
    }

    fn parse_closure(&mut self, line: usize) -> Expr {
        let mut params = Vec::new();
        if self.eat("||") {
            // Empty parameter list.
        } else if self.eat("|") {
            loop {
                if self.at_end() || self.eat("|") {
                    break;
                }
                if self.eat(",") {
                    continue;
                }
                let pat = self.tokens_until(&[",", "|", ":"]);
                params.extend(pattern_names(pat));
                if self.eat(":") {
                    self.tokens_until(&[",", "|"]);
                }
                if pat.is_empty() && !self.peek_is(",") && !self.peek_is("|") {
                    self.pos += 1;
                }
            }
        } else {
            return Expr::Unknown { line };
        }
        // Optional return type.
        if self.eat("->") {
            self.tokens_until(&["{"]);
        }
        let body = self.parse_expr(false);
        Expr::Closure {
            params,
            body: Box::new(body),
            line,
        }
    }

    fn parse_if(&mut self) -> Expr {
        let line = self.line();
        self.eat("if");
        if self.eat("let") {
            // `if let pat = scrutinee { then } else { els }` → Match.
            let pat = self.tokens_until(&["="]);
            let names = pattern_names(pat);
            self.eat("=");
            let scrutinee = self.parse_expr(true);
            let then = self.parse_block();
            let mut arms = vec![Arm {
                names,
                body: Expr::Block(then),
            }];
            if self.eat("else") {
                let els = if self.peek_is("if") {
                    self.parse_if()
                } else {
                    Expr::Block(self.parse_block())
                };
                arms.push(Arm {
                    names: Vec::new(),
                    body: els,
                });
            }
            return Expr::Match {
                scrutinee: Box::new(scrutinee),
                arms,
                line,
            };
        }
        let cond = self.parse_expr(true);
        let then = self.parse_block();
        let els = if self.eat("else") {
            let e = if self.peek_is("if") {
                self.parse_if()
            } else {
                Expr::Block(self.parse_block())
            };
            Some(Box::new(e))
        } else {
            None
        };
        Expr::If {
            cond: Box::new(cond),
            then,
            els,
            line,
        }
    }

    fn parse_match(&mut self) -> Expr {
        let line = self.line();
        self.eat("match");
        let scrutinee = self.parse_expr(true);
        self.eat("{");
        let mut arms = Vec::new();
        loop {
            if self.at_end() || self.eat("}") {
                break;
            }
            if self.eat(",") {
                continue;
            }
            let before = self.pos;
            let pat = self.tokens_until(&["=>"]);
            // Guard identifiers are not bindings: cut the pattern at a
            // top-level `if`.
            let pat_end = pat.iter().position(|t| t.text == "if").unwrap_or(pat.len());
            let names = pattern_names(&pat[..pat_end]);
            self.eat("=>");
            let body = self.parse_expr(false);
            arms.push(Arm { names, body });
            self.eat(",");
            if self.pos == before {
                self.pos += 1;
            }
        }
        Expr::Match {
            scrutinee: Box::new(scrutinee),
            arms,
            line,
        }
    }

    fn parse_while(&mut self) -> Expr {
        let line = self.line();
        self.eat("while");
        if self.eat("let") {
            // `while let pat = scrutinee { body }` → Match with one
            // arm so pattern bindings stay visible to rules.
            let pat = self.tokens_until(&["="]);
            let names = pattern_names(pat);
            self.eat("=");
            let scrutinee = self.parse_expr(true);
            let body = self.parse_block();
            return Expr::Match {
                scrutinee: Box::new(scrutinee),
                arms: vec![Arm {
                    names,
                    body: Expr::Block(body),
                }],
                line,
            };
        }
        let cond = self.parse_expr(true);
        let body = self.parse_block();
        Expr::While {
            cond: Some(Box::new(cond)),
            body,
            line,
        }
    }

    fn parse_for(&mut self) -> Expr {
        let line = self.line();
        self.eat("for");
        let pat = self.tokens_until(&["in"]);
        let names = pattern_names(pat);
        self.eat("in");
        let iter = self.parse_expr(true);
        let body = self.parse_block();
        Expr::For {
            names,
            iter: Box::new(iter),
            body,
            line,
        }
    }
}

/// Parses a fn parameter list token slice (delimiters stripped):
/// split on top-level commas, each element is `pat : ty` or a self
/// receiver (`self`, `&self`, `&mut self`, `mut self`).
fn parse_params(toks: &[Token]) -> Vec<Param> {
    let mut params = Vec::new();
    let mut depth = 0isize;
    let mut start = 0usize;
    let mut slices = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        match t.text.as_str() {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" | ">" => depth -= 1,
            "," if depth == 0 => {
                slices.push(&toks[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < toks.len() {
        slices.push(&toks[start..]);
    }
    for slice in slices {
        if slice.is_empty() {
            continue;
        }
        if slice.iter().any(|t| t.text == "self") {
            params.push(Param {
                name: "self".to_string(),
                ty: "Self".to_string(),
            });
            continue;
        }
        let colon = slice.iter().position(|t| t.text == ":");
        let (pat, ty) = match colon {
            Some(c) => (&slice[..c], join_tokens(&slice[c + 1..])),
            None => (slice, String::new()),
        };
        let name = pattern_names(pat).into_iter().next().unwrap_or_default();
        params.push(Param { name, ty });
    }
    params
}

/// True when `{` after this expression should be read as a struct
/// literal (only plain paths qualify; `foo()` `{…}` never does).
fn struct_lit_candidate(expr: &Expr) -> bool {
    match expr {
        Expr::Path { segs, .. } => segs
            .last()
            .is_some_and(|s| s.chars().next().is_some_and(|c| c.is_uppercase())),
        _ => false,
    }
}

/// Joins token texts with single spaces (type renderings).
fn join_tokens(toks: &[Token]) -> String {
    let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
    texts.join(" ")
}

/// Extracts binding names from a pattern token slice.
///
/// Heuristic, tuned for this workspace's style: a lowercase-or-`_`
/// starting identifier binds unless it is a keyword, is a path segment
/// (`a::b`), names a struct field before `:`, or heads a call/struct
/// pattern (`Some(…)`, `Foo{…}`). Uppercase identifiers are taken as
/// unit variants/consts (`None`, `ClassId`), per Rust convention.
fn pattern_names(toks: &[Token]) -> Vec<String> {
    const KEYWORDS: [&str; 6] = ["ref", "mut", "box", "true", "false", "_"];
    let mut names = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !matches!(t.kind, TokKind::Ident | TokKind::RawIdent) {
            continue;
        }
        let text = t.text.as_str();
        if KEYWORDS.contains(&text) {
            continue;
        }
        if text.chars().next().is_some_and(|c| c.is_uppercase()) {
            continue;
        }
        let prev = i
            .checked_sub(1)
            .map(|j| toks[j].text.as_str())
            .unwrap_or("");
        let next = toks.get(i + 1).map(|t| t.text.as_str()).unwrap_or("");
        if prev == "::" || matches!(next, "::" | "(" | "{" | "!") {
            continue;
        }
        // `field : subpat` — the field name does not bind.
        if next == ":" {
            continue;
        }
        if !names.contains(&t.text) {
            names.push(t.text.clone());
        }
    }
    names
}

/// Flattens a use-tree token slice into its leaves.
fn flatten_use(toks: &[Token], prefix: &mut Vec<String>, leaves: &mut Vec<UseLeaf>) {
    let mut i = 0usize;
    let base_len = prefix.len();
    while i < toks.len() {
        let t = &toks[i];
        match t.text.as_str() {
            "{" => {
                // Group: split top-level commas, recurse per element.
                let mut depth = 0usize;
                let mut j = i;
                let mut start = i + 1;
                while let Some(tj) = toks.get(j) {
                    match tj.text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                if start < j {
                                    flatten_use(&toks[start..j], prefix, leaves);
                                }
                                break;
                            }
                        }
                        "," if depth == 1 => {
                            if start < j {
                                flatten_use(&toks[start..j], prefix, leaves);
                            }
                            start = j + 1;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                prefix.truncate(base_len);
                return;
            }
            "::" => {
                i += 1;
            }
            "as" => {
                // `path as alias`.
                if let Some(alias) = toks.get(i + 1) {
                    if !prefix.is_empty() {
                        leaves.push(UseLeaf {
                            path: prefix.clone(),
                            alias: alias.text.clone(),
                        });
                    }
                }
                prefix.truncate(base_len);
                return;
            }
            "*" => {
                leaves.push(UseLeaf {
                    path: prefix.clone(),
                    alias: "*".to_string(),
                });
                prefix.truncate(base_len);
                return;
            }
            _ if matches!(t.kind, TokKind::Ident | TokKind::RawIdent) => {
                prefix.push(t.text.clone());
                i += 1;
            }
            _ => {
                i += 1;
            }
        }
    }
    if prefix.len() > base_len {
        let alias = prefix.last().cloned().unwrap_or_default();
        leaves.push(UseLeaf {
            path: prefix.clone(),
            alias,
        });
    }
    prefix.truncate(base_len);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::mask;

    fn parse(src: &str) -> File {
        parse_file(&mask(src))
    }

    fn only_fn(file: &File) -> FnItem {
        for item in &file.items {
            if let ItemKind::Fn(f) = &item.kind {
                return f.clone();
            }
        }
        panic!("no fn item parsed");
    }

    #[test]
    fn tokenizes_idents_literals_and_ops() {
        let m = mask("let x = foo(\"body\", 'c', 1.5, 0..3);\n");
        let toks = tokenize(&m);
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec![
                "let", "x", "=", "foo", "(", "body", ",", "c", ",", "1.5", ",", "0", "..", "3",
                ")", ";"
            ]
        );
        assert_eq!(toks[5].kind, TokKind::Str);
        assert_eq!(toks[7].kind, TokKind::Char);
        assert_eq!(toks[9].kind, TokKind::Number);
    }

    #[test]
    fn raw_identifier_is_one_token() {
        let m = mask("let r#type = r#match;\n");
        let toks = tokenize(&m);
        assert_eq!(toks[1].kind, TokKind::RawIdent);
        assert_eq!(toks[1].text, "type");
        assert_eq!(toks[3].text, "match");
    }

    #[test]
    fn lifetimes_and_labels_tokenize() {
        let m = mask("fn f<'a>(x: &'a str) { 'outer: loop { break 'outer; } }\n");
        let toks = tokenize(&m);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'outer"));
    }

    #[test]
    fn parses_fn_with_params_and_body() {
        let file = parse("pub fn add(a: u32, b: u32) -> u32 { a + b }\n");
        let f = only_fn(&file);
        assert_eq!(f.name, "add");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].name, "a");
        assert_eq!(f.params[0].ty, "u32");
        assert!(f.body.is_some());
    }

    #[test]
    fn parses_self_receiver() {
        let file = parse("impl Foo { fn go(&mut self, n: usize) {} }\n");
        let ItemKind::Impl {
            type_name, items, ..
        } = &file.items[0].kind
        else {
            panic!("expected impl");
        };
        assert_eq!(type_name, "Foo");
        let ItemKind::Fn(f) = &items[0].kind else {
            panic!("expected fn in impl");
        };
        assert_eq!(f.params[0].name, "self");
        assert_eq!(f.params[1].name, "n");
    }

    #[test]
    fn trait_impl_records_both_names() {
        let file = parse("impl Drop for Guard<'_, T> { fn drop(&mut self) {} }\n");
        let ItemKind::Impl {
            type_name,
            trait_name,
            ..
        } = &file.items[0].kind
        else {
            panic!("expected impl");
        };
        assert_eq!(type_name, "Guard");
        assert_eq!(trait_name.as_deref(), Some("Drop"));
    }

    #[test]
    fn use_tree_flattens() {
        let file = parse(
            "use std::collections::{BTreeMap, btree_map::Entry as E};\nuse crate::lexer::mask;\n",
        );
        let ItemKind::Use { leaves } = &file.items[0].kind else {
            panic!("expected use");
        };
        assert_eq!(leaves.len(), 2);
        assert_eq!(leaves[0].alias, "BTreeMap");
        assert_eq!(leaves[0].path, vec!["std", "collections", "BTreeMap"]);
        assert_eq!(leaves[1].alias, "E");
        assert_eq!(
            leaves[1].path,
            vec!["std", "collections", "btree_map", "Entry"]
        );
        let ItemKind::Use { leaves } = &file.items[1].kind else {
            panic!("expected use");
        };
        assert_eq!(leaves[0].alias, "mask");
    }

    #[test]
    fn method_chain_parses() {
        let file = parse("fn f() { let x = a.b().c(1, 2).d; }\n");
        let f = only_fn(&file);
        let body = f.body.as_ref().unwrap();
        let Stmt::Let { init: Some(e), .. } = &body.stmts[0] else {
            panic!("expected let");
        };
        let Expr::Field { recv, name, .. } = e else {
            panic!("expected field access, got {e:?}");
        };
        assert_eq!(name, "d");
        let Expr::MethodCall { name, args, .. } = recv.as_ref() else {
            panic!("expected method call");
        };
        assert_eq!(name, "c");
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn closures_and_loops_parse() {
        let src = "fn f() { let g = move |job, lane| job + lane; for x in 0..3 { g(x, 1); } }\n";
        let f = only_fn(&parse(src));
        let body = f.body.as_ref().unwrap();
        let Stmt::Let { init: Some(e), .. } = &body.stmts[0] else {
            panic!("expected let");
        };
        let Expr::Closure { params, .. } = e else {
            panic!("expected closure, got {e:?}");
        };
        assert_eq!(params, &vec!["job".to_string(), "lane".to_string()]);
        let Stmt::Expr(Expr::For { names, .. }) = &body.stmts[1] else {
            panic!("expected for loop");
        };
        assert_eq!(names, &vec!["x".to_string()]);
    }

    #[test]
    fn match_and_if_let_bind_names() {
        let src = "fn f(r: R) { match r.lock() { Ok(guard) => guard.recv(), Err(_) => {} } if let Some(v) = opt { use_it(v); } }\n";
        let f = only_fn(&parse(src));
        let body = f.body.as_ref().unwrap();
        let Stmt::Expr(Expr::Match { arms, .. }) = &body.stmts[0] else {
            panic!("expected match");
        };
        assert_eq!(arms[0].names, vec!["guard".to_string()]);
        assert!(arms[1].names.is_empty());
        let Stmt::Expr(Expr::Match { arms, .. }) = &body.stmts[1] else {
            panic!("expected desugared if-let");
        };
        assert_eq!(arms[0].names, vec!["v".to_string()]);
    }

    #[test]
    fn struct_literals_vs_blocks() {
        let src = "fn f() { let a = Foo { x: 1, y: 2 }; if cond { body(); } }\n";
        let f = only_fn(&parse(src));
        let body = f.body.as_ref().unwrap();
        let Stmt::Let { init: Some(e), .. } = &body.stmts[0] else {
            panic!("expected let");
        };
        let Expr::StructLit { path, fields, .. } = e else {
            panic!("expected struct literal, got {e:?}");
        };
        assert_eq!(path, &vec!["Foo".to_string()]);
        assert_eq!(fields.len(), 2);
        let Stmt::Expr(Expr::If { then, .. }) = &body.stmts[1] else {
            panic!("expected if");
        };
        assert_eq!(then.stmts.len(), 1);
    }

    #[test]
    fn macro_args_are_seen() {
        let f = only_fn(&parse("fn f() { assert_eq!(a.lock(), b); }\n"));
        let body = f.body.as_ref().unwrap();
        let Stmt::Expr(Expr::MacroCall { name, args, .. }) = &body.stmts[0] else {
            panic!("expected macro call");
        };
        assert_eq!(name, "assert_eq");
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn item_spans_tile_the_token_stream() {
        let src =
            "//! docs\nuse a::b;\npub fn f() { g(1); }\nmod m { fn h() {} }\nstruct S { x: u32 }\n";
        let file = parse(src);
        let mut next = 0usize;
        for item in &file.items {
            assert_eq!(item.tok_start, next, "gap before item {:?}", item.kind);
            assert!(item.tok_end > item.tok_start);
            next = item.tok_end;
        }
        assert_eq!(next, file.n_tokens, "trailing tokens unconsumed");
    }

    #[test]
    fn cfg_test_attribute_detected() {
        let src = "#[cfg(test)]\nmod tests { #[test] fn t() {} }\n";
        let file = parse(src);
        assert!(file.items[0].is_test());
        let ItemKind::Mod {
            items: Some(inner), ..
        } = &file.items[0].kind
        else {
            panic!("expected inline mod");
        };
        assert!(inner[0].is_test());
    }

    #[test]
    fn let_type_ascription_captured() {
        let f = only_fn(&parse(
            "fn f() { let m: Mutex<Scratch> = Mutex::new(s); }\n",
        ));
        let body = f.body.as_ref().unwrap();
        let Stmt::Let { ty: Some(ty), .. } = &body.stmts[0] else {
            panic!("expected typed let");
        };
        assert!(ty.contains("Mutex"));
    }

    #[test]
    fn generics_and_turbofish_do_not_derail() {
        let src = "fn f() { let v = Vec::<u64>::with_capacity(n); let c: BTreeMap<String, Vec<u8>> = x.collect::<BTreeMap<_, _>>(); }\n";
        let f = only_fn(&parse(src));
        let body = f.body.as_ref().unwrap();
        assert_eq!(body.stmts.len(), 2);
        let Stmt::Let { init: Some(e), .. } = &body.stmts[0] else {
            panic!("expected let");
        };
        let Expr::Call { callee, .. } = e else {
            panic!("expected call, got {e:?}");
        };
        assert_eq!(
            callee.as_path(),
            Some(&["Vec", "with_capacity"].map(String::from)[..])
        );
    }

    #[test]
    fn degenerate_input_never_panics() {
        for src in [
            "",
            "}}}",
            "fn",
            "fn (",
            "let x = ;",
            "impl { }",
            "match { }",
            "#",
            "fn f() { a..; ..b; .. }",
            "fn f() { x.0.1; }",
        ] {
            let _ = parse(src);
        }
    }
}
