//! The five cross-function semantic rules, run over the parsed AST and
//! per-crate call graph.
//!
//! Where the lexical rules ([`crate::rules`]) reject single tokens, the
//! rules here follow values and control flow:
//!
//! - **rng-taint** — every RNG construction must be fed a seed-derived
//!   expression, and a construction *inside* a `qcpa_par` job closure
//!   must key through `stream_seed(seed, stream, index)` so replays are
//!   schedule-independent.
//! - **lock-order** — builds the static lock graph (acquisitions seen
//!   while other guards are held, plus calls into lock-taking fns) and
//!   flags order inversions and guards held across blocking calls
//!   (`send`/`recv`/`park`/`wait`/argless `join`).
//! - **ordered-reduction** — `+=`/`sum()`/`fold()` reductions reachable
//!   from merge/combine/reduce entry points must not iterate
//!   hash-ordered containers.
//! - **env-doc-drift** — the `QCPA_*` keys read in library code and the
//!   knob rows documented in README.md must be a bijection.
//! - **panic-path** — panic sites inside functions reachable from hot
//!   entry points (`run_open*`, `optimize*`, `execute`), ratcheted with
//!   the same per-crate budget as panic-hygiene.
//!
//! All rules under-approximate: an ambiguous method call resolves to no
//! callee, an unshapeable expression is `Expr::Unknown`, and neither
//! produces findings. False silence is possible; false noise is not,
//! which is what lets `cargo test` gate on a clean workspace run.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{Block, Expr, Stmt};
use crate::callgraph::{CrateGraph, FnNode};
use crate::lexer::LitKind;
use crate::report::Finding;
use crate::rules::{self, Allow, RuleId};

/// Per-file suppression context for the semantic pass.
pub struct FilePrep {
    /// Parsed `audit:allow` annotations.
    pub allows: Vec<Allow>,
    /// Per-line flag: inside a `#[cfg(test)]` block.
    pub test_lines: Vec<bool>,
}

/// Builds the suppression context for every file of a graph. Malformed
/// annotations were already reported by the lexical pass, so the
/// `allow-syntax` findings are dropped here.
pub fn prep_files(graph: &CrateGraph) -> Vec<FilePrep> {
    graph
        .files
        .iter()
        .map(|f| {
            let raw: Vec<&str> = f.lines.iter().map(String::as_str).collect();
            let (allows, _) = rules::parse_allows(&f.rel, &f.masked, &raw);
            FilePrep {
                allows,
                test_lines: rules::mark_test_lines(&f.masked),
            }
        })
        .collect()
}

/// Builds a finding at `(file, line)` of the graph, applying any
/// covering `audit:allow` annotation.
fn mk_finding(
    rule: RuleId,
    prefix: &str,
    graph: &CrateGraph,
    preps: &[FilePrep],
    file: usize,
    line: usize,
) -> Finding {
    let sf = &graph.files[file];
    let path = if prefix.is_empty() {
        sf.rel.clone()
    } else {
        format!("{prefix}/{}", sf.rel)
    };
    let raw = sf.lines.get(line).map(String::as_str).unwrap_or("");
    let mut f = Finding::new(rule, &path, line, raw);
    if let Some(a) = rules::allow_covering(&preps[file].allows, &sf.masked, rule, line) {
        f.allowed = true;
        f.justification = Some(a.justification.clone());
    }
    f
}

/// Structural walk over every block of a body (the `then` of an `if`,
/// a loop body, … are `Block`s without being `Expr::Block` nodes, so
/// `Expr::walk` cannot surface them).
fn walk_blocks<'a>(b: &'a Block, f: &mut impl FnMut(&'a Block)) {
    f(b);
    for stmt in &b.stmts {
        match stmt {
            Stmt::Let { init: Some(e), .. } | Stmt::Expr(e) => walk_blocks_expr(e, f),
            _ => {}
        }
    }
}

fn walk_blocks_expr<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Block)) {
    match e {
        Expr::Block(b) => walk_blocks(b, f),
        Expr::If {
            cond, then, els, ..
        } => {
            walk_blocks_expr(cond, f);
            walk_blocks(then, f);
            if let Some(e) = els {
                walk_blocks_expr(e, f);
            }
        }
        Expr::Match {
            scrutinee, arms, ..
        } => {
            walk_blocks_expr(scrutinee, f);
            for arm in arms {
                walk_blocks_expr(&arm.body, f);
            }
        }
        Expr::For { iter, body, .. } => {
            walk_blocks_expr(iter, f);
            walk_blocks(body, f);
        }
        Expr::While { cond, body, .. } => {
            if let Some(c) = cond {
                walk_blocks_expr(c, f);
            }
            walk_blocks(body, f);
        }
        Expr::Closure { body, .. } => walk_blocks_expr(body, f),
        Expr::Call { callee, args, .. } => {
            walk_blocks_expr(callee, f);
            for a in args {
                walk_blocks_expr(a, f);
            }
        }
        Expr::MethodCall { recv, args, .. } => {
            walk_blocks_expr(recv, f);
            for a in args {
                walk_blocks_expr(a, f);
            }
        }
        Expr::Field { recv, .. } => walk_blocks_expr(recv, f),
        Expr::Index { recv, index, .. } => {
            walk_blocks_expr(recv, f);
            walk_blocks_expr(index, f);
        }
        Expr::Assign { target, value, .. } => {
            walk_blocks_expr(target, f);
            walk_blocks_expr(value, f);
        }
        Expr::Binary { lhs, rhs, .. } => {
            walk_blocks_expr(lhs, f);
            walk_blocks_expr(rhs, f);
        }
        Expr::Unary { expr, .. } => walk_blocks_expr(expr, f),
        Expr::Tuple { elems, .. } | Expr::Array { elems, .. } => {
            for e in elems {
                walk_blocks_expr(e, f);
            }
        }
        Expr::StructLit { fields, .. } => {
            for (_, e) in fields {
                walk_blocks_expr(e, f);
            }
        }
        Expr::MacroCall { args, .. } => {
            for a in args {
                walk_blocks_expr(a, f);
            }
        }
        Expr::Path { .. } | Expr::Lit { .. } | Expr::Unknown { .. } => {}
    }
}

/// Single-name `let` bindings of a body, innermost-last (later
/// bindings shadow earlier ones of the same name, which matches how a
/// depth-limited lookup should resolve).
fn collect_lets(body: &Block) -> BTreeMap<&str, &Expr> {
    let mut lets = BTreeMap::new();
    walk_blocks(body, &mut |b| {
        for stmt in &b.stmts {
            if let Stmt::Let {
                names,
                init: Some(e),
                ..
            } = stmt
            {
                if let [name] = names.as_slice() {
                    lets.insert(name.as_str(), e);
                }
            }
        }
    });
    lets
}

// ---------------------------------------------------------------------
// Rule: rng-taint
// ---------------------------------------------------------------------

/// RNG constructor names whose first argument is the seed expression.
const RNG_CTORS: [&str; 2] = ["seed_from_u64", "from_seed"];

/// Determinism taint: every RNG construction in non-test code must be
/// fed a seed-derived expression; constructions inside a `qcpa_par` job
/// closure must additionally key through `stream_seed`, because the
/// driver-side seed alone is identical across jobs and lanes.
pub fn rng_taint(prefix: &str, graph: &CrateGraph, preps: &[FilePrep]) -> Vec<Finding> {
    let mut out = Vec::new();
    for node in &graph.fns {
        if node.is_test {
            continue;
        }
        let Some(body) = &node.item.body else {
            continue;
        };
        let lets = collect_lets(body);
        // Addresses of every expression inside a job closure: the
        // worker fn handed to `with_session` (arg 1) or the job closure
        // of a `pool.map(n, |j| …)` fan-out, following one level of
        // `let work = |…| …;` indirection.
        let mut in_job: BTreeSet<usize> = BTreeSet::new();
        body.walk(&mut |e| {
            if let Some(job) = job_closure(e, &lets) {
                job.walk(&mut |sub| {
                    in_job.insert(sub as *const Expr as usize);
                });
            }
        });
        body.walk(&mut |e| {
            let Expr::Call { callee, args, line } = e else {
                return;
            };
            let Some(last) = callee.as_path().and_then(|s| s.last()) else {
                return;
            };
            if !RNG_CTORS.contains(&last.as_str()) {
                return;
            }
            let ok = match args.first() {
                None => false,
                Some(arg) => {
                    if in_job.contains(&(e as *const Expr as usize)) {
                        arg.mentions("stream_seed")
                    } else {
                        seed_derived(arg, &lets, 2)
                    }
                }
            };
            if !ok {
                out.push(mk_finding(
                    RuleId::RngTaint,
                    prefix,
                    graph,
                    preps,
                    node.file,
                    *line,
                ));
            }
        });
    }
    out
}

/// The job-closure expression of a `qcpa_par` fan-out, if `e` is one.
fn job_closure<'a>(e: &'a Expr, lets: &BTreeMap<&'a str, &'a Expr>) -> Option<&'a Expr> {
    let candidate = match e {
        Expr::Call { callee, args, .. }
            if callee
                .as_path()
                .and_then(|s| s.last())
                .is_some_and(|l| l == "with_session") =>
        {
            args.get(1)
        }
        Expr::MethodCall {
            recv, name, args, ..
        } if name == "map"
            && recv
                .place_text()
                .is_some_and(|p| p.to_ascii_lowercase().contains("pool")) =>
        {
            args.iter().find(|a| {
                matches!(a, Expr::Closure { .. }) || a.as_path().is_some_and(|s| s.len() == 1)
            })
        }
        _ => None,
    }?;
    match candidate {
        c @ Expr::Closure { .. } => Some(c),
        Expr::Path { segs, .. } if segs.len() == 1 => lets
            .get(segs[0].as_str())
            .copied()
            .filter(|e| matches!(e, Expr::Closure { .. })),
        _ => None,
    }
}

/// True when the expression is visibly seed-derived: it mentions a
/// `seed`-named path/field, calls `stream_seed`, or is a numeric
/// constant (a fixed seed is deterministic by definition). A bare
/// single-name path follows its `let` initializer up to `depth` hops.
fn seed_derived(e: &Expr, lets: &BTreeMap<&str, &Expr>, depth: u32) -> bool {
    let mut ok = false;
    e.walk(&mut |x| match x {
        Expr::Lit { text, .. } if text.starts_with(|c: char| c.is_ascii_digit()) => {
            ok = true;
        }
        Expr::Path { segs, .. } if segs.iter().any(|s| s.to_ascii_lowercase().contains("seed")) => {
            ok = true;
        }
        Expr::Field { name, .. } if name.to_ascii_lowercase().contains("seed") => ok = true,
        _ => {}
    });
    if ok {
        return true;
    }
    if depth > 0 {
        if let Expr::Path { segs, .. } = e {
            if let [name] = segs.as_slice() {
                if let Some(init) = lets.get(name.as_str()) {
                    return seed_derived(init, lets, depth - 1);
                }
            }
        }
    }
    false
}

// ---------------------------------------------------------------------
// Rule: lock-order
// ---------------------------------------------------------------------

/// Method names that block: holding any guard across one is a finding.
/// `join` only counts argless (thread join), so `Vec::join("…")` while
/// holding a guard stays clean.
const BLOCKING: [&str; 5] = ["send", "recv", "recv_timeout", "park", "wait"];

/// One deferred lock-graph edge from a call made while holding guards.
struct PendingCall {
    callee: String,
    held: Vec<String>,
    file: usize,
    line: usize,
}

/// Static lock-order analysis. Within each function the walker tracks
/// which guards are live (let-bound guards until end of block;
/// match-scrutinee and for-iter temporaries across the arms/body;
/// same-statement chains until the `;`), records an edge for every
/// acquisition under a held guard, and flags blocking calls made while
/// holding. Calls into lock-taking fns of the same crate made while
/// holding add interprocedural edges. A cycle in the resulting graph is
/// an order inversion; every edge on a cycle is reported.
pub fn lock_order(prefix: &str, graph: &CrateGraph, preps: &[FilePrep]) -> Vec<Finding> {
    // Direct lock places per fn (for interprocedural edges) and unique
    // fn-name resolution (ambiguous names drop, under-approximating).
    let mut direct: Vec<BTreeSet<String>> = vec![BTreeSet::new(); graph.fns.len()];
    let mut by_name: BTreeMap<&str, Option<usize>> = BTreeMap::new();
    for (i, node) in graph.fns.iter().enumerate() {
        by_name
            .entry(node.name.as_str())
            .and_modify(|slot| *slot = None)
            .or_insert(Some(i));
    }

    let mut edges: BTreeMap<(String, String), (usize, usize)> = BTreeMap::new();
    let mut blocking: Vec<(usize, usize)> = Vec::new();
    let mut pending: Vec<PendingCall> = Vec::new();

    for (i, node) in graph.fns.iter().enumerate() {
        if node.is_test {
            continue;
        }
        let Some(body) = &node.item.body else {
            continue;
        };
        let mut w = LockWalk {
            held: Vec::new(),
            edges: &mut edges,
            blocking: &mut blocking,
            pending: &mut pending,
            acquired: &mut direct[i],
            file: node.file,
        };
        w.scan_block(body);
    }

    // Interprocedural edges: a call made while holding guards orders
    // the held places before everything the callee locks directly.
    for call in &pending {
        let Some(&Some(j)) = by_name.get(call.callee.as_str()) else {
            continue;
        };
        for a in &call.held {
            for b in &direct[j] {
                if a != b {
                    edges
                        .entry((a.clone(), b.clone()))
                        .or_insert((call.file, call.line));
                }
            }
        }
    }

    let mut out = Vec::new();
    for ((a, b), (file, line)) in &edges {
        if reaches(&edges, b, a) {
            out.push(mk_finding(
                RuleId::LockOrder,
                prefix,
                graph,
                preps,
                *file,
                *line,
            ));
        }
    }
    for (file, line) in blocking {
        out.push(mk_finding(
            RuleId::LockOrder,
            prefix,
            graph,
            preps,
            file,
            line,
        ));
    }
    out
}

/// True when the lock graph has a path `from → … → to`.
fn reaches(edges: &BTreeMap<(String, String), (usize, usize)>, from: &str, to: &str) -> bool {
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    let mut stack = vec![from];
    while let Some(cur) = stack.pop() {
        if cur == to {
            return true;
        }
        if !seen.insert(cur) {
            continue;
        }
        for (a, b) in edges.keys() {
            if a == cur {
                stack.push(b);
            }
        }
    }
    false
}

struct LockWalk<'a> {
    /// Guards live at this point: (place, acquisition line).
    held: Vec<(String, usize)>,
    edges: &'a mut BTreeMap<(String, String), (usize, usize)>,
    blocking: &'a mut Vec<(usize, usize)>,
    pending: &'a mut Vec<PendingCall>,
    acquired: &'a mut BTreeSet<String>,
    file: usize,
}

impl LockWalk<'_> {
    fn scan_block(&mut self, b: &Block) {
        let base = self.held.len();
        for stmt in &b.stmts {
            match stmt {
                Stmt::Let {
                    init: Some(e),
                    line,
                    ..
                } => {
                    let mut tmp = Vec::new();
                    self.scan_expr(e, &mut tmp);
                    if let Some(place) = guard_binding(e) {
                        self.held.push((place, *line));
                    }
                }
                Stmt::Expr(e) => {
                    let mut tmp = Vec::new();
                    self.scan_expr(e, &mut tmp);
                }
                _ => {}
            }
        }
        self.held.truncate(base);
    }

    /// Records an acquisition: edges from everything currently live,
    /// then the new place joins the same-statement temporaries.
    fn acquire(&mut self, place: String, line: usize, tmp: &mut Vec<String>) {
        self.acquired.insert(place.clone());
        for (h, _) in &self.held {
            if *h != place {
                self.edges
                    .entry((h.clone(), place.clone()))
                    .or_insert((self.file, line));
            }
        }
        for t in tmp.iter() {
            if *t != place {
                self.edges
                    .entry((t.clone(), place.clone()))
                    .or_insert((self.file, line));
            }
        }
        tmp.push(place);
    }

    fn live(&self, tmp: &[String]) -> Vec<String> {
        self.held
            .iter()
            .map(|(p, _)| p.clone())
            .chain(tmp.iter().cloned())
            .collect()
    }

    fn scan_expr(&mut self, e: &Expr, tmp: &mut Vec<String>) {
        match e {
            Expr::MethodCall {
                recv,
                name,
                args,
                line,
            } => {
                self.scan_expr(recv, tmp);
                for a in args {
                    self.scan_expr(a, tmp);
                }
                let live = self.live(tmp);
                if name == "lock" && args.is_empty() {
                    if let Some(p) = recv.place_text() {
                        self.acquire(p, *line, tmp);
                    }
                } else if !live.is_empty()
                    && (BLOCKING.contains(&name.as_str()) || (name == "join" && args.is_empty()))
                {
                    self.blocking.push((self.file, *line));
                } else if !live.is_empty() {
                    self.pending.push(PendingCall {
                        callee: name.clone(),
                        held: live,
                        file: self.file,
                        line: *line,
                    });
                }
            }
            Expr::Call { callee, args, line } => {
                self.scan_expr(callee, tmp);
                for a in args {
                    self.scan_expr(a, tmp);
                }
                let live = self.live(tmp);
                if !live.is_empty() {
                    if let Some(last) = callee.as_path().and_then(|s| s.last()) {
                        self.pending.push(PendingCall {
                            callee: last.clone(),
                            held: live,
                            file: self.file,
                            line: *line,
                        });
                    }
                }
            }
            // A closure body runs later, on an unknown stack: guards
            // held at the definition site are not held inside it.
            Expr::Closure { body, .. } => {
                let saved = std::mem::take(&mut self.held);
                let mut inner = Vec::new();
                self.scan_expr(body, &mut inner);
                self.held = saved;
            }
            Expr::Block(b) => self.scan_block(b),
            Expr::If {
                cond, then, els, ..
            } => {
                // Condition temporaries drop before the branches run.
                let mut ctmp = Vec::new();
                self.scan_expr(cond, &mut ctmp);
                self.scan_block(then);
                if let Some(e) = els {
                    let mut etmp = Vec::new();
                    self.scan_expr(e, &mut etmp);
                }
            }
            Expr::Match {
                scrutinee,
                arms,
                line,
            } => {
                // Scrutinee temporaries live across the arms (the
                // `match ch.lock() { Ok(g) => g.recv(), … }` shape).
                let mut stmp = Vec::new();
                self.scan_expr(scrutinee, &mut stmp);
                let base = self.held.len();
                for p in stmp {
                    self.held.push((p, *line));
                }
                for arm in arms {
                    let mut atmp = Vec::new();
                    self.scan_expr(&arm.body, &mut atmp);
                }
                self.held.truncate(base);
            }
            Expr::For {
                iter, body, line, ..
            } => {
                // Iterator temporaries live for the whole loop.
                let mut itmp = Vec::new();
                self.scan_expr(iter, &mut itmp);
                let base = self.held.len();
                for p in itmp {
                    self.held.push((p, *line));
                }
                self.scan_block(body);
                self.held.truncate(base);
            }
            Expr::While { cond, body, .. } => {
                if let Some(c) = cond {
                    let mut ctmp = Vec::new();
                    self.scan_expr(c, &mut ctmp);
                }
                self.scan_block(body);
            }
            Expr::Field { recv, .. } => self.scan_expr(recv, tmp),
            Expr::Index { recv, index, .. } => {
                self.scan_expr(recv, tmp);
                self.scan_expr(index, tmp);
            }
            Expr::Assign { target, value, .. } => {
                self.scan_expr(target, tmp);
                self.scan_expr(value, tmp);
            }
            Expr::Binary { lhs, rhs, .. } => {
                self.scan_expr(lhs, tmp);
                self.scan_expr(rhs, tmp);
            }
            Expr::Unary { expr, .. } => self.scan_expr(expr, tmp),
            Expr::Tuple { elems, .. } | Expr::Array { elems, .. } => {
                for e in elems {
                    self.scan_expr(e, tmp);
                }
            }
            Expr::StructLit { fields, .. } => {
                for (_, e) in fields {
                    self.scan_expr(e, tmp);
                }
            }
            Expr::MacroCall { args, .. } => {
                for a in args {
                    self.scan_expr(a, tmp);
                }
            }
            Expr::Path { .. } | Expr::Lit { .. } | Expr::Unknown { .. } => {}
        }
    }
}

/// The lock place a `let` binds as a guard, seen through the trailing
/// `unwrap`/`expect` family. A longer chain (`….lock().unwrap().pop()`)
/// binds the *result*, not the guard, and returns `None`.
fn guard_binding(e: &Expr) -> Option<String> {
    match e {
        Expr::MethodCall { recv, name, .. }
            if matches!(
                name.as_str(),
                "unwrap" | "expect" | "unwrap_or_else" | "unwrap_or_default"
            ) =>
        {
            guard_binding(recv)
        }
        Expr::MethodCall {
            recv, name, args, ..
        } if name == "lock" && args.is_empty() => recv.place_text(),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Rule: ordered-reduction
// ---------------------------------------------------------------------

/// Iterator-producing method names whose receiver decides the order.
const ITER_METHODS: [&str; 7] = [
    "iter",
    "iter_mut",
    "into_iter",
    "values",
    "values_mut",
    "keys",
    "drain",
];

/// Ordered-reduction: in functions reachable from a merge/combine/
/// reduce entry point, a `for` loop accumulating with `+=`/`*=` (or a
/// `sum()`/`product()`/`fold()` chain) must not draw its iterator from
/// a hash-ordered container — float addition is not associative, so
/// hash order changes the result bits.
pub fn ordered_reduction(prefix: &str, graph: &CrateGraph, preps: &[FilePrep]) -> Vec<Finding> {
    let roots: Vec<usize> = graph
        .fns
        .iter()
        .enumerate()
        .filter(|(_, n)| {
            let lc = n.name.to_ascii_lowercase();
            !n.is_test && (lc.contains("merge") || lc.contains("combine") || lc.contains("reduce"))
        })
        .map(|(i, _)| i)
        .collect();
    let reach = graph.reachable(roots);
    let mut out = Vec::new();
    for &i in &reach {
        let node = &graph.fns[i];
        if node.is_test {
            continue;
        }
        let Some(body) = &node.item.body else {
            continue;
        };
        // Parameter and ascribed `let` types, for
        // `fn merge(m: &HashMap<…>)` / `let m: HashMap<…> = …`.
        let mut tys: BTreeMap<&str, &str> = BTreeMap::new();
        for p in &node.item.params {
            tys.insert(p.name.as_str(), p.ty.as_str());
        }
        walk_blocks(body, &mut |b| {
            for stmt in &b.stmts {
                if let Stmt::Let {
                    names, ty: Some(t), ..
                } = stmt
                {
                    if let [name] = names.as_slice() {
                        tys.insert(name.as_str(), t.as_str());
                    }
                }
            }
        });
        body.walk(&mut |e| match e {
            Expr::For {
                iter, body, line, ..
            } if hash_iter(iter, &tys) && has_accum(body) => {
                out.push(mk_finding(
                    RuleId::OrderedReduction,
                    prefix,
                    graph,
                    preps,
                    node.file,
                    *line,
                ));
            }
            Expr::MethodCall {
                recv, name, line, ..
            } if matches!(name.as_str(), "sum" | "product" | "fold") && hash_iter(recv, &tys) => {
                out.push(mk_finding(
                    RuleId::OrderedReduction,
                    prefix,
                    graph,
                    preps,
                    node.file,
                    *line,
                ));
            }
            _ => {}
        });
    }
    out
}

/// True when the expression draws an iterator off a hash-ordered
/// receiver (name or ascribed type mentions `Hash`).
fn hash_iter(e: &Expr, tys: &BTreeMap<&str, &str>) -> bool {
    let mut hit = false;
    e.walk(&mut |x| {
        let Expr::MethodCall { recv, name, .. } = x else {
            return;
        };
        if !ITER_METHODS.contains(&name.as_str()) {
            return;
        }
        let Some(place) = recv.place_text() else {
            return;
        };
        if place.to_ascii_lowercase().contains("hash") {
            hit = true;
            return;
        }
        let root = place.split(['.', '[', ':', '(', ' ']).next().unwrap_or("");
        if tys.get(root).is_some_and(|t| t.contains("Hash")) {
            hit = true;
        }
    });
    hit
}

/// True when the block accumulates with `+=` or `*=`.
fn has_accum(b: &Block) -> bool {
    let mut hit = false;
    b.walk(&mut |e| {
        if let Expr::Assign { op, .. } = e {
            if op == "+=" || op == "*=" {
                hit = true;
            }
        }
    });
    hit
}

// ---------------------------------------------------------------------
// Rule: env-doc-drift
// ---------------------------------------------------------------------

/// Env-surface bijection. `used` comes from string literals in library
/// code (the lexer's literal spans, so comments and doc prose never
/// count); `documented` is any README mention; knob-table rows (lines
/// starting with `|`) additionally assert the key is alive somewhere
/// in the workspace. Returns nothing when README is absent (fixture
/// corpora without docs stay clean).
pub fn env_doc_drift(
    units: &[(String, CrateGraph, Vec<FilePrep>)],
    readme_name: &str,
    readme: Option<&str>,
) -> Vec<Finding> {
    let Some(text) = readme else {
        return Vec::new();
    };
    // key → every literal site: (unit, file, line, in-test).
    let mut used: BTreeMap<String, Vec<(usize, usize, usize, bool)>> = BTreeMap::new();
    for (u, (_, graph, preps)) in units.iter().enumerate() {
        for (fi, sf) in graph.files.iter().enumerate() {
            for lit in &sf.masked.literals {
                if lit.kind != LitKind::Str || !is_qcpa_key(&lit.text) {
                    continue;
                }
                let in_test = preps[fi].test_lines.get(lit.line).copied().unwrap_or(false);
                used.entry(lit.text.clone())
                    .or_default()
                    .push((u, fi, lit.line, in_test));
            }
        }
    }
    let documented = readme_keys(text);
    let mut out = Vec::new();
    for (key, sites) in &used {
        if documented.contains(key) {
            continue;
        }
        // Keys only tests read are not part of the public surface.
        let Some(&(u, fi, line, _)) = sites.iter().find(|s| !s.3) else {
            continue;
        };
        let (prefix, graph, preps) = &units[u];
        out.push(mk_finding(
            RuleId::EnvDocDrift,
            prefix,
            graph,
            preps,
            fi,
            line,
        ));
    }
    // Documented-but-dead: knob-table rows whose key no source (not
    // even a test) reads. README lines carry no Rust comments, so
    // these findings cannot be suppressed inline — delete the row.
    for (line_no, lt) in text.lines().enumerate() {
        if !lt.trim_start().starts_with('|') {
            continue;
        }
        for key in extract_keys(lt) {
            if !used.contains_key(&key) {
                out.push(Finding::new(RuleId::EnvDocDrift, readme_name, line_no, lt));
            }
        }
    }
    out
}

/// True for a complete `QCPA_*` key (not a bare prefix like `QCPA_` or
/// `QCPA_CTRL_`, which code composes with a suffix at run time).
fn is_qcpa_key(s: &str) -> bool {
    s.len() > 5
        && s.starts_with("QCPA_")
        && !s.ends_with('_')
        && s.chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

/// Every complete `QCPA_*` key mentioned anywhere in the text.
fn readme_keys(text: &str) -> BTreeSet<String> {
    let mut keys = BTreeSet::new();
    for line in text.lines() {
        for key in extract_keys(line) {
            keys.insert(key);
        }
    }
    keys
}

/// Extracts the complete `QCPA_*` keys appearing in one line.
fn extract_keys(line: &str) -> Vec<String> {
    let mut keys = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0usize;
    while let Some(found) = line[i..].find("QCPA_") {
        let start = i + found;
        // Must not extend an identifier to the left.
        if start > 0 && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_') {
            i = start + 5;
            continue;
        }
        let mut end = start;
        while end < line.len()
            && (bytes[end].is_ascii_uppercase()
                || bytes[end].is_ascii_digit()
                || bytes[end] == b'_')
        {
            end += 1;
        }
        let key = &line[start..end];
        if is_qcpa_key(key) {
            keys.push(key.to_string());
        }
        i = end.max(start + 5);
    }
    keys
}

// ---------------------------------------------------------------------
// Rule: panic-path
// ---------------------------------------------------------------------

/// Panic-introducing tokens counted on hot lines.
const PANIC_TOKENS: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

/// True when `node` is a hot entry point of the crate.
fn is_entry(node: &FnNode) -> bool {
    !node.is_test
        && (node.name.starts_with("run_open")
            || node.name.starts_with("optimize")
            || node.name == "execute")
}

/// Panic reachability: every panic token inside a function reachable
/// from a hot entry point. Sites are ratcheted with the crate's
/// panic-hygiene budget: `within_budget` marks them baselined (counted,
/// surfaced as `hot_sites`, not a failure); an over-budget crate fails
/// on them just as it fails panic-hygiene. Returns the findings and the
/// total hot-site count (annotated sites included — the metric tracks
/// exposure, not annotation coverage).
pub fn panic_path(
    prefix: &str,
    graph: &CrateGraph,
    preps: &[FilePrep],
    within_budget: bool,
) -> (Vec<Finding>, u32) {
    let entries: Vec<usize> = graph
        .fns
        .iter()
        .enumerate()
        .filter(|(_, n)| is_entry(n))
        .map(|(i, _)| i)
        .collect();
    let hot = graph.reachable(entries);
    let mut out = Vec::new();
    let mut count = 0u32;
    for &i in &hot {
        let node = &graph.fns[i];
        if node.is_test {
            continue;
        }
        let sf = &graph.files[node.file];
        let prep = &preps[node.file];
        for line in node.line..=node.end_line {
            if line >= sf.masked.n_lines() {
                break;
            }
            if prep.test_lines.get(line).copied().unwrap_or(false) {
                continue;
            }
            // Lines of a nested fn belong to that fn's own node.
            if graph.fn_at(node.file, line) != Some(i) {
                continue;
            }
            let code = &sf.masked.code[line];
            let hits: u32 = PANIC_TOKENS
                .iter()
                .map(|t| rules::token_hits(code, t).len() as u32)
                .sum();
            if hits == 0 {
                continue;
            }
            count += hits;
            let mut f = mk_finding(RuleId::PanicPath, prefix, graph, preps, node.file, line);
            if !f.allowed {
                f.baselined = within_budget;
            }
            out.push(f);
        }
    }
    (out, count)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(files: &[(&str, &str)]) -> CrateGraph {
        let sources: Vec<(String, String)> = files
            .iter()
            .map(|(r, s)| (r.to_string(), s.to_string()))
            .collect();
        CrateGraph::build("t", &sources)
    }

    fn run_rule<F>(files: &[(&str, &str)], f: F) -> Vec<Finding>
    where
        F: Fn(&str, &CrateGraph, &[FilePrep]) -> Vec<Finding>,
    {
        let g = graph_of(files);
        let preps = prep_files(&g);
        f("crates/t", &g, &preps)
    }

    #[test]
    fn rng_from_seed_field_is_clean() {
        let fs = run_rule(
            &[(
                "src/lib.rs",
                "pub fn go(cfg: &Cfg) -> u64 {\n    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 3);\n    rng.next()\n}\n",
            )],
            rng_taint,
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn rng_from_wall_clock_fires() {
        let fs = run_rule(
            &[(
                "src/lib.rs",
                "pub fn go() -> u64 {\n    let nonce = now_nanos();\n    let mut rng = ChaCha8Rng::seed_from_u64(nonce);\n    rng.next()\n}\n",
            )],
            rng_taint,
        );
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, "rng-taint");
        assert_eq!(fs[0].file, "crates/t/src/lib.rs");
    }

    #[test]
    fn job_closure_requires_stream_seed() {
        let src = "pub fn fan(seed: u64) {\n    let work = |j: u64, _lane: usize| {\n        let mut rng = ChaCha8Rng::seed_from_u64(seed);\n        rng.next()\n    };\n    qcpa_par::with_session(4, work, |session| {\n        session.run();\n    });\n}\n";
        let fs = run_rule(&[("src/lib.rs", src)], rng_taint);
        assert_eq!(fs.len(), 1, "{fs:?}");
        let fixed = src.replace(
            "seed_from_u64(seed)",
            "seed_from_u64(qcpa_par::stream_seed(seed, gen, j))",
        );
        let fs = run_rule(&[("src/lib.rs", &fixed)], rng_taint);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn lock_order_inversion_fires() {
        let src = "pub fn ab(a: &M, b: &M) {\n    let ga = a.lock().unwrap();\n    let gb = b.lock().unwrap();\n    drop((ga, gb));\n}\npub fn ba(a: &M, b: &M) {\n    let gb = b.lock().unwrap();\n    let ga = a.lock().unwrap();\n    drop((ga, gb));\n}\n";
        let fs = run_rule(&[("src/lib.rs", src)], lock_order);
        assert_eq!(fs.len(), 2, "{fs:?}");
        assert!(fs.iter().all(|f| f.rule == "lock-order"));
    }

    #[test]
    fn consistent_lock_order_is_clean() {
        let src = "pub fn ab(a: &M, b: &M) {\n    let ga = a.lock().unwrap();\n    let gb = b.lock().unwrap();\n    drop((ga, gb));\n}\npub fn ab2(a: &M, b: &M) {\n    let ga = a.lock().unwrap();\n    let gb = b.lock().unwrap();\n    drop((gb, ga));\n}\n";
        let fs = run_rule(&[("src/lib.rs", src)], lock_order);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn guard_across_recv_fires_and_allows() {
        let src = "pub fn worker(rx: &Mutex<Receiver<u64>>) -> Option<u64> {\n    match rx.lock() {\n        Ok(guard) => guard.recv().ok(),\n        Err(_) => None,\n    }\n}\n";
        let fs = run_rule(&[("src/lib.rs", src)], lock_order);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(!fs[0].allowed);
        let annotated = src.replace(
            "Ok(guard) => guard.recv().ok(),",
            "// audit:allow(lock-order): single-consumer park point\n        Ok(guard) => guard.recv().ok(),",
        );
        let fs = run_rule(&[("src/lib.rs", &annotated)], lock_order);
        assert_eq!(fs.len(), 1);
        assert!(fs[0].allowed);
    }

    #[test]
    fn hash_reduction_on_merge_path_fires() {
        let src = "pub fn merge_shards(shards: &HashMap<u64, f64>) -> f64 {\n    let mut total = 0.0;\n    for v in shards.values() {\n        total += v;\n    }\n    total\n}\n";
        let fs = run_rule(&[("src/lib.rs", src)], ordered_reduction);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, "ordered-reduction");
    }

    #[test]
    fn btree_reduction_is_clean() {
        let src = "pub fn merge_shards(shards: &BTreeMap<u64, f64>) -> f64 {\n    let mut total = 0.0;\n    for v in shards.values() {\n        total += v;\n    }\n    total\n}\n";
        let fs = run_rule(&[("src/lib.rs", src)], ordered_reduction);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn env_drift_both_directions() {
        let units = vec![(
            "crates/t".to_string(),
            graph_of(&[(
                "src/lib.rs",
                "pub fn knob() -> Option<String> {\n    std::env::var(\"QCPA_UNDOCUMENTED\").ok()\n}\n",
            )]),
            Vec::new(),
        )];
        let units: Vec<_> = units
            .into_iter()
            .map(|(p, g, _): (String, CrateGraph, Vec<FilePrep>)| {
                let preps = prep_files(&g);
                (p, g, preps)
            })
            .collect();
        let readme = "| Knob | Meaning |\n| --- | --- |\n| `QCPA_DEAD_KNOB` | gone |\n";
        let fs = env_doc_drift(&units, "README.md", Some(readme));
        assert_eq!(fs.len(), 2, "{fs:?}");
        assert!(fs.iter().any(|f| f.snippet.contains("QCPA_UNDOCUMENTED")));
        assert!(fs
            .iter()
            .any(|f| f.file == "README.md" && f.snippet.contains("QCPA_DEAD_KNOB")));
    }

    #[test]
    fn panic_path_separates_hot_from_cold() {
        let src = "pub fn run_open(x: Option<u64>) -> u64 {\n    helper(x)\n}\nfn helper(x: Option<u64>) -> u64 {\n    x.unwrap()\n}\nfn cold(x: Option<u64>) -> u64 {\n    x.unwrap()\n}\n";
        let g = graph_of(&[("src/lib.rs", src)]);
        let preps = prep_files(&g);
        let (fs, count) = panic_path("crates/t", &g, &preps, true);
        assert_eq!(count, 1, "{fs:?}");
        assert_eq!(fs.len(), 1);
        assert!(fs[0].baselined);
        let (fs, _) = panic_path("crates/t", &g, &preps, false);
        assert!(fs[0].unsuppressed());
    }
}
