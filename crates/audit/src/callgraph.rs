//! Workspace module graph and name-resolved intra-crate call graph.
//!
//! Built on the [`crate::parser`] ASTs for one crate's `src/` tree.
//! Resolution is deliberately best-effort and *deterministic*:
//!
//! - Free-function paths resolve through the file's `use` aliases,
//!   `crate::`/`self::`/`super::` prefixes, glob imports, and the
//!   module hierarchy implied by file layout (`src/foo/bar.rs` →
//!   `foo::bar`; inline `mod` blocks extend the path).
//! - Method calls resolve by receiver when it is `self` or a local
//!   with an inferable type (`let x: Mutex<T>`, `let x = Type::new()`,
//!   a `Type { … }` literal); otherwise a method name that is unique
//!   in the crate resolves to its one definition, and ambiguous names
//!   are dropped rather than over-approximated — edges the panic
//!   ratchet cannot justify are worse than edges it misses.
//! - Cross-crate calls are out of scope; the semantic rules that need
//!   them (`qcpa_par::with_session` boundaries) match paths directly.
//!
//! Everything is keyed and ordered with `BTreeMap`/`BTreeSet` so two
//! runs over the same tree produce byte-identical graphs.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::Path;

use crate::ast::{Expr, File, FnItem, Item, ItemKind, Stmt};
use crate::lexer::{mask, Masked};
use crate::parser::parse_file;

/// One parsed source file of the crate.
pub struct SourceFile {
    /// Path relative to the crate directory, `/`-separated
    /// (`src/engine.rs`).
    pub rel: String,
    /// The masked token streams (for suppression parsing).
    pub masked: Masked,
    /// The original source lines (for finding snippets).
    pub lines: Vec<String>,
    /// The parsed AST.
    pub ast: File,
    /// The module path the file roots (`src/foo/bar.rs` → `foo::bar`).
    pub module: Vec<String>,
}

/// One function in the graph.
pub struct FnNode {
    /// Unique key: `module::Owner::name`, `#line`-suffixed on
    /// collision (cfg-gated duplicates).
    pub key: String,
    /// The function's name.
    pub name: String,
    /// Enclosing impl/trait type name, for associated fns.
    pub owner: Option<String>,
    /// Module path (file module plus inline mods).
    pub module: Vec<String>,
    /// Index into [`CrateGraph::files`].
    pub file: usize,
    /// 0-based first line (attributes included).
    pub line: usize,
    /// 0-based last line.
    pub end_line: usize,
    /// True under `#[test]`, `#[cfg(test)]`, or an ancestor test mod.
    pub is_test: bool,
    /// The parsed function (signature + body).
    pub item: FnItem,
}

/// The per-crate call graph.
pub struct CrateGraph {
    /// The crate's name (workspace unit name, e.g. `qcpa-sim`).
    pub crate_name: String,
    /// Parsed files, sorted by relative path.
    pub files: Vec<SourceFile>,
    /// Function nodes, in (file, source) order.
    pub fns: Vec<FnNode>,
    /// Key → index into `fns`.
    pub by_key: BTreeMap<String, usize>,
    /// Call edges: `calls[i]` is the set of fns `fns[i]` may call.
    pub calls: Vec<BTreeSet<usize>>,
}

/// Maps a crate-relative file path to its module path.
fn module_path(rel: &str) -> Vec<String> {
    let p = rel.strip_prefix("src/").unwrap_or(rel);
    let mut parts: Vec<&str> = p.split('/').collect();
    let file = parts.pop().unwrap_or("");
    let stem = file.strip_suffix(".rs").unwrap_or(file);
    let mut module: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
    if !matches!(stem, "lib" | "main" | "mod") {
        module.push(stem.to_string());
    }
    module
}

/// Per-file name-resolution context.
struct FileScope {
    /// `alias → absolute-ish path` from use leaves. Paths starting
    /// with an external crate name stay unresolvable, which is fine.
    aliases: BTreeMap<String, Vec<String>>,
    /// Module paths glob-imported (`use super::*`).
    globs: Vec<Vec<String>>,
}

impl FileScope {
    fn build(file_module: &[String], items: &[Item]) -> FileScope {
        let mut scope = FileScope {
            aliases: BTreeMap::new(),
            globs: Vec::new(),
        };
        collect_uses(items, file_module, &mut scope);
        scope
    }
}

fn collect_uses(items: &[Item], module: &[String], scope: &mut FileScope) {
    for item in items {
        match &item.kind {
            ItemKind::Use { leaves } => {
                for leaf in leaves {
                    let abs = absolutize(&leaf.path, module);
                    if leaf.alias == "*" {
                        scope.globs.push(abs);
                    } else {
                        scope.aliases.insert(leaf.alias.clone(), abs);
                    }
                }
            }
            ItemKind::Mod {
                items: Some(inner),
                name,
            } => {
                let mut sub = module.to_vec();
                sub.push(name.clone());
                collect_uses(inner, &sub, scope);
            }
            _ => {}
        }
    }
}

/// Resolves `crate::`/`self::`/`super::` prefixes against `module`,
/// yielding a crate-root-relative path (external paths pass through).
fn absolutize(path: &[String], module: &[String]) -> Vec<String> {
    let mut out: Vec<String>;
    let mut rest = path;
    match path.first().map(|s| s.as_str()) {
        Some("crate") => {
            out = Vec::new();
            rest = &path[1..];
        }
        Some("self") => {
            out = module.to_vec();
            rest = &path[1..];
        }
        Some("super") => {
            out = module.to_vec();
            while rest.first().is_some_and(|s| s == "super") {
                out.pop();
                rest = &rest[1..];
            }
        }
        _ => out = Vec::new(),
    }
    out.extend(rest.iter().cloned());
    out
}

impl CrateGraph {
    /// Builds the graph for the crate rooted at `dir` (reads
    /// `dir/src/**/*.rs`). Missing `src/` yields an empty graph.
    pub fn load(crate_name: &str, dir: &Path) -> io::Result<CrateGraph> {
        let mut sources = Vec::new();
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut Vec::new(), &mut sources)?;
        }
        let read: Vec<(String, String)> = sources
            .into_iter()
            .map(|rel| {
                let text = fs::read_to_string(dir.join(&rel)).unwrap_or_default();
                (rel, text)
            })
            .collect();
        Ok(Self::build(crate_name, &read))
    }

    /// Builds the graph from in-memory `(relative path, source)`
    /// pairs — the fixture and proptest entry point.
    pub fn build(crate_name: &str, sources: &[(String, String)]) -> CrateGraph {
        let mut files: Vec<SourceFile> = sources
            .iter()
            .map(|(rel, src)| {
                let masked = mask(src);
                let ast = parse_file(&masked);
                SourceFile {
                    rel: rel.clone(),
                    lines: src.lines().map(|l| l.to_string()).collect(),
                    masked,
                    ast,
                    module: module_path(rel),
                }
            })
            .collect();
        files.sort_by(|a, b| a.rel.cmp(&b.rel));

        let mut graph = CrateGraph {
            crate_name: crate_name.to_string(),
            files,
            fns: Vec::new(),
            by_key: BTreeMap::new(),
            calls: Vec::new(),
        };
        for fi in 0..graph.files.len() {
            let module = graph.files[fi].module.clone();
            let items = graph.files[fi].ast.items.clone();
            graph.collect_fns(fi, &items, &module, None, false);
        }
        graph.resolve_calls();
        graph
    }

    fn collect_fns(
        &mut self,
        file: usize,
        items: &[Item],
        module: &[String],
        owner: Option<&str>,
        in_test: bool,
    ) {
        for item in items {
            let test = in_test || item.is_test();
            match &item.kind {
                ItemKind::Fn(func) => {
                    self.push_fn(file, item, func, module, owner, test);
                    if let Some(body) = &func.body {
                        self.collect_block_fns(file, body, module, owner, test);
                    }
                }
                ItemKind::Mod {
                    items: Some(inner),
                    name,
                } => {
                    let mut sub = module.to_vec();
                    sub.push(name.clone());
                    self.collect_fns(file, inner, &sub, owner, test);
                }
                ItemKind::Impl {
                    type_name, items, ..
                } => {
                    self.collect_fns(file, items, module, Some(type_name), test);
                }
                ItemKind::Trait { name, items } => {
                    self.collect_fns(file, items, module, Some(name), test);
                }
                _ => {}
            }
        }
    }

    fn collect_block_fns(
        &mut self,
        file: usize,
        block: &crate::ast::Block,
        module: &[String],
        owner: Option<&str>,
        in_test: bool,
    ) {
        for stmt in &block.stmts {
            if let Stmt::Item(item) = stmt {
                self.collect_fns(file, std::slice::from_ref(item), module, owner, in_test);
            }
        }
    }

    fn push_fn(
        &mut self,
        file: usize,
        item: &Item,
        func: &FnItem,
        module: &[String],
        owner: Option<&str>,
        is_test: bool,
    ) {
        let mut key = String::new();
        for seg in module {
            key.push_str(seg);
            key.push_str("::");
        }
        if let Some(o) = owner {
            key.push_str(o);
            key.push_str("::");
        }
        key.push_str(&func.name);
        if self.by_key.contains_key(&key) {
            key.push('#');
            key.push_str(&(item.line + 1).to_string());
        }
        let idx = self.fns.len();
        self.by_key.insert(key.clone(), idx);
        self.fns.push(FnNode {
            key,
            name: func.name.clone(),
            owner: owner.map(|s| s.to_string()),
            module: module.to_vec(),
            file,
            line: item.line,
            end_line: item.end_line,
            is_test,
            item: func.clone(),
        });
    }

    fn resolve_calls(&mut self) {
        // Lookup tables. Free fns by (module, name); associated fns by
        // (owner, name); method names globally for the unique-name
        // fallback. First definition wins on duplicates (cfg variants)
        // — deterministic because fns are in sorted-file order.
        let mut free: BTreeMap<(Vec<String>, String), usize> = BTreeMap::new();
        let mut assoc: BTreeMap<(String, String), usize> = BTreeMap::new();
        let mut by_method: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in self.fns.iter().enumerate() {
            match &f.owner {
                None => {
                    free.entry((f.module.clone(), f.name.clone())).or_insert(i);
                }
                Some(o) => {
                    assoc.entry((o.clone(), f.name.clone())).or_insert(i);
                    by_method.entry(f.name.clone()).or_default().push(i);
                }
            }
        }
        let scopes: Vec<FileScope> = self
            .files
            .iter()
            .map(|f| FileScope::build(&f.module, &f.ast.items))
            .collect();

        let mut calls = vec![BTreeSet::new(); self.fns.len()];
        for (i, node) in self.fns.iter().enumerate() {
            let Some(body) = &node.item.body else {
                continue;
            };
            let scope = &scopes[node.file];
            // Local type hints: `let x: Ty = …` / `let x = Ty::new()` /
            // `let x = Ty { … }` (flat, shadowing ignored).
            let mut local_ty: BTreeMap<String, String> = BTreeMap::new();
            for stmt in &body.stmts {
                if let Stmt::Let {
                    names, ty, init, ..
                } = stmt
                {
                    if let [name] = names.as_slice() {
                        if let Some(t) = ty.as_ref().and_then(|t| last_type_name(t)) {
                            local_ty.insert(name.clone(), t);
                        } else if let Some(t) = init.as_ref().and_then(init_type_name) {
                            local_ty.insert(name.clone(), t);
                        }
                    }
                }
            }
            let edges = &mut calls[i];
            body.walk(&mut |e| match e {
                Expr::Call { callee, .. } => {
                    if let Some(segs) = callee.as_path() {
                        if let Some(t) = self.resolve_path(segs, &node.module, scope, &free, &assoc)
                        {
                            edges.insert(t);
                        }
                    }
                }
                Expr::Path { segs, .. } => {
                    // Fn references passed as values (`map(helper)`).
                    if let Some(t) = self.resolve_path(segs, &node.module, scope, &free, &assoc) {
                        edges.insert(t);
                    }
                }
                Expr::MethodCall { recv, name, .. } => {
                    if let Some(t) = self.resolve_method(
                        recv,
                        name,
                        node.owner.as_deref(),
                        &local_ty,
                        &assoc,
                        &by_method,
                    ) {
                        edges.insert(t);
                    }
                }
                _ => {}
            });
        }
        self.calls = calls;
    }

    fn resolve_path(
        &self,
        segs: &[String],
        module: &[String],
        scope: &FileScope,
        free: &BTreeMap<(Vec<String>, String), usize>,
        assoc: &BTreeMap<(String, String), usize>,
    ) -> Option<usize> {
        if segs.is_empty() {
            return None;
        }
        // Expand a use alias on the head segment.
        let expanded: Vec<String> = match scope.aliases.get(&segs[0]) {
            Some(path) => path.iter().chain(segs[1..].iter()).cloned().collect(),
            None => absolutize(segs, module),
        };
        let (name, prefix) = expanded.split_last()?;
        // Candidate module contexts, most specific first.
        let mut contexts: Vec<Vec<String>> = Vec::new();
        if segs.first().is_some_and(|s| {
            s == "crate" || s == "self" || s == "super" || scope.aliases.contains_key(s)
        }) {
            contexts.push(prefix.to_vec());
        } else {
            // Relative path: current module, then crate root, then
            // glob-imported modules.
            let mut rel = module.to_vec();
            rel.extend(prefix.iter().cloned());
            contexts.push(rel);
            contexts.push(prefix.to_vec());
            for g in &scope.globs {
                let mut p = g.clone();
                p.extend(prefix.iter().cloned());
                contexts.push(p);
            }
        }
        for ctx in &contexts {
            if let Some(&i) = free.get(&(ctx.clone(), name.clone())) {
                return Some(i);
            }
        }
        // `Type::method` — the owner is the path's penultimate segment.
        if let Some(owner) = prefix.last() {
            if let Some(&i) = assoc.get(&(owner.clone(), name.clone())) {
                return Some(i);
            }
        }
        None
    }

    fn resolve_method(
        &self,
        recv: &Expr,
        name: &str,
        cur_owner: Option<&str>,
        local_ty: &BTreeMap<String, String>,
        assoc: &BTreeMap<(String, String), usize>,
        by_method: &BTreeMap<String, Vec<usize>>,
    ) -> Option<usize> {
        // Receiver-directed resolution.
        let owner = match recv {
            Expr::Path { segs, .. } => match segs.as_slice() {
                [one] if one == "self" => cur_owner.map(|s| s.to_string()),
                [one] => local_ty.get(one).cloned(),
                _ => None,
            },
            Expr::Unary { op, expr, .. } if op == "&" || op == "*" => {
                return self.resolve_method(expr, name, cur_owner, local_ty, assoc, by_method)
            }
            _ => None,
        };
        if let Some(o) = owner {
            if let Some(&i) = assoc.get(&(o, name.to_string())) {
                return Some(i);
            }
        }
        // Unique-in-crate fallback; ambiguous names stay unresolved.
        match by_method.get(name).map(|v| v.as_slice()) {
            Some([only]) => Some(*only),
            _ => None,
        }
    }

    /// All fns reachable from `roots` (inclusive) over call edges.
    pub fn reachable(&self, roots: impl IntoIterator<Item = usize>) -> BTreeSet<usize> {
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut queue: Vec<usize> = roots.into_iter().collect();
        while let Some(i) = queue.pop() {
            if !seen.insert(i) {
                continue;
            }
            for &j in &self.calls[i] {
                if !seen.contains(&j) {
                    queue.push(j);
                }
            }
        }
        seen
    }

    /// The innermost fn in `file` whose line range contains `line`
    /// (0-based).
    pub fn fn_at(&self, file: usize, line: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, f) in self.fns.iter().enumerate() {
            if f.file == file && f.line <= line && line <= f.end_line {
                let tighter = best.is_none_or(|b| {
                    let bf = &self.fns[b];
                    f.end_line - f.line < bf.end_line - bf.line
                });
                if tighter {
                    best = Some(i);
                }
            }
        }
        best
    }
}

/// The last capitalized path segment of a rendered type
/// (`Mutex < Scratch >` → `Scratch`; `& mut Vec < u8 >` → `Vec`).
fn last_type_name(ty: &str) -> Option<String> {
    ty.split(|c: char| !c.is_alphanumeric() && c != '_')
        .rfind(|s| s.chars().next().is_some_and(|c| c.is_uppercase()))
        .map(|s| s.to_string())
}

/// A type name inferred from a let initializer: `Type::new(…)` /
/// `Type { … }` forms.
fn init_type_name(init: &Expr) -> Option<String> {
    match init {
        Expr::Call { callee, .. } => {
            let segs = callee.as_path()?;
            let (last, prefix) = segs.split_last()?;
            if matches!(last.as_str(), "new" | "default" | "with_capacity" | "build") {
                prefix
                    .last()
                    .filter(|s| s.chars().next().is_some_and(|c| c.is_uppercase()))
                    .cloned()
            } else {
                None
            }
        }
        Expr::StructLit { path, .. } => path.last().cloned(),
        _ => None,
    }
}

fn collect_rs(dir: &Path, rel: &mut Vec<String>, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let name = entry.file_name().to_string_lossy().into_owned();
        let path = entry.path();
        if path.is_dir() {
            rel.push(name);
            collect_rs(&path, rel, out)?;
            rel.pop();
        } else if name.ends_with(".rs") {
            let mut p = String::from("src/");
            for seg in rel.iter() {
                p.push_str(seg);
                p.push('/');
            }
            p.push_str(&name);
            out.push(p);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_file_crate() -> CrateGraph {
        let lib = r#"
mod engine;
use engine::step;

pub fn run_open(n: u64) -> u64 {
    let mut total = 0;
    for i in 0..n {
        total += step(i);
    }
    helper(total)
}

fn helper(x: u64) -> u64 { x + 1 }

#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn t() { assert_eq!(run_open(0), 1); }
    fn test_only_helper() { panic!("boom"); }
}
"#;
        let engine = r#"
pub struct Engine { n: u64 }

impl Engine {
    pub fn new(n: u64) -> Engine { Engine { n } }
    pub fn tick(&self) -> u64 { self.n }
}

pub fn step(i: u64) -> u64 {
    let e = Engine::new(i);
    e.tick()
}
"#;
        CrateGraph::build(
            "demo",
            &[
                ("src/lib.rs".to_string(), lib.to_string()),
                ("src/engine.rs".to_string(), engine.to_string()),
            ],
        )
    }

    #[test]
    fn modules_follow_file_layout() {
        assert_eq!(module_path("src/lib.rs"), Vec::<String>::new());
        assert_eq!(module_path("src/foo.rs"), vec!["foo"]);
        assert_eq!(module_path("src/foo/mod.rs"), vec!["foo"]);
        assert_eq!(module_path("src/foo/bar.rs"), vec!["foo", "bar"]);
        assert_eq!(module_path("src/bin/tool.rs"), vec!["bin", "tool"]);
    }

    #[test]
    fn edges_resolve_through_imports_and_impls() {
        let g = two_file_crate();
        let run = g.by_key["run_open"];
        let step = g.by_key["engine::step"];
        let helper = g.by_key["helper"];
        let new = g.by_key["engine::Engine::new"];
        let tick = g.by_key["engine::Engine::tick"];
        assert!(g.calls[run].contains(&step), "use-alias call");
        assert!(g.calls[run].contains(&helper), "same-module call");
        assert!(g.calls[step].contains(&new), "Type::new call");
        assert!(g.calls[step].contains(&tick), "typed-receiver method");
    }

    #[test]
    fn reachability_separates_hot_from_test_only() {
        let g = two_file_crate();
        let run = g.by_key["run_open"];
        let hot = g.reachable([run]);
        assert!(hot.contains(&g.by_key["engine::Engine::tick"]));
        assert!(!hot.contains(&g.by_key["tests::test_only_helper"]));
        assert!(g.fns[g.by_key["tests::test_only_helper"]].is_test);
        assert!(g.fns[g.by_key["tests::t"]].is_test);
        assert!(!g.fns[run].is_test);
    }

    #[test]
    fn fn_at_maps_lines_to_enclosing_fns() {
        let g = two_file_crate();
        let lib = g.files.iter().position(|f| f.rel == "src/lib.rs").unwrap();
        // `panic!("boom")` lives in test_only_helper.
        let line = g.files[lib]
            .lines
            .iter()
            .position(|l| l.contains("boom"))
            .unwrap();
        let f = g.fn_at(lib, line).unwrap();
        assert_eq!(g.fns[f].name, "test_only_helper");
    }

    #[test]
    fn graph_is_deterministic() {
        let a = two_file_crate();
        let b = two_file_crate();
        let keys_a: Vec<&String> = a.fns.iter().map(|f| &f.key).collect();
        let keys_b: Vec<&String> = b.fns.iter().map(|f| &f.key).collect();
        assert_eq!(keys_a, keys_b);
        assert_eq!(a.calls, b.calls);
    }

    #[test]
    fn self_method_calls_resolve_to_own_impl() {
        let src = r#"
pub struct A;
pub struct B;
impl A { pub fn go(&self) { self.inner(); } fn inner(&self) {} }
impl B { fn inner(&self) {} }
"#;
        let g = CrateGraph::build("demo", &[("src/lib.rs".to_string(), src.to_string())]);
        let go = g.by_key["A::go"];
        assert!(g.calls[go].contains(&g.by_key["A::inner"]));
        assert!(!g.calls[go].contains(&g.by_key["B::inner"]));
    }

    #[test]
    fn ambiguous_method_names_are_dropped() {
        let src = r#"
pub struct A;
pub struct B;
impl A { pub fn poke(&self) {} }
impl B { pub fn poke(&self) {} }
pub fn driver(x: &Unknowable) { x.poke(); }
"#;
        let g = CrateGraph::build("demo", &[("src/lib.rs".to_string(), src.to_string())]);
        let driver = g.by_key["driver"];
        assert!(g.calls[driver].is_empty());
    }
}
