//! Findings, per-crate panic-hygiene statistics, and the JSON report.
//!
//! The JSON report is the machine-readable contract: `scripts/check.sh`
//! gates on the process exit code, the bench harness records the
//! finding counts in its metrics sidecars, and the snapshot tests pin
//! the serialized form. Everything here is deterministic — findings are
//! sorted, maps are `BTreeMap`, and no timestamps or absolute paths
//! appear in the output.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::rules::{RuleId, ALL_RULES};

/// One rule violation (or suppressed violation) at a source location.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// Kebab-case rule name (see [`RuleId::name`]).
    pub rule: String,
    /// File path relative to the audited root, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// True when an `audit:allow` annotation covers the site.
    pub allowed: bool,
    /// The annotation's justification, when allowed.
    pub justification: Option<String>,
    /// True when the site is inside the panic-hygiene baseline budget
    /// (counted and ratcheted, but not a failure).
    pub baselined: bool,
}

impl Finding {
    /// Builds a finding from a 0-based line index and the raw source
    /// line.
    pub fn new(rule: RuleId, file: &str, line0: usize, raw_line: &str) -> Self {
        Self {
            rule: rule.name().to_string(),
            file: file.to_string(),
            line: (line0 + 1) as u32,
            snippet: raw_line.trim().to_string(),
            allowed: false,
            justification: None,
            baselined: false,
        }
    }

    /// True when the finding fails the audit (neither annotated nor
    /// inside the baseline budget).
    pub fn unsuppressed(&self) -> bool {
        !self.allowed && !self.baselined
    }
}

/// Panic-hygiene accounting for one crate: the ratchet's unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PanicStats {
    /// Unannotated `unwrap()`/`expect()` sites in library non-test
    /// code. Must stay ≤ `baseline` for the audit to pass.
    pub sites: u32,
    /// Sites carrying an `audit:allow(panic-hygiene)` annotation.
    pub annotated: u32,
    /// The budget from `audit.baseline.json` (0 when absent): the
    /// ratchet — it only ever goes down.
    pub baseline: u32,
    /// Total library (non-generated) source lines of the crate, for
    /// the density denominator.
    pub lib_lines: u32,
    /// `(sites + annotated) / lib_lines * 1000`, rounded to 2 decimals.
    pub density_per_kloc: f64,
    /// Panic tokens inside functions reachable from a hot entry point
    /// (the panic-path rule's count; annotated sites included).
    pub hot_sites: u32,
}

/// Per-rule rollup in the v2 schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleStat {
    /// All findings of the rule (allowed and baselined included).
    pub findings: u32,
    /// Findings that fail the audit.
    pub unsuppressed: u32,
}

/// The complete audit result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Bumped when the JSON shape changes.
    pub schema_version: u32,
    /// Number of `.rs` files scanned.
    pub files_scanned: u32,
    /// Every rule the auditor ran, in report order.
    pub rules: Vec<String>,
    /// All findings (including allowed and baselined ones), sorted by
    /// file, line, rule.
    pub findings: Vec<Finding>,
    /// Number of findings that fail the audit.
    pub unsuppressed: u32,
    /// Per-rule finding/unsuppressed counts (the bench sidecar's
    /// source of truth).
    pub rule_stats: BTreeMap<String, RuleStat>,
    /// Per-crate panic-hygiene accounting.
    pub panic_hygiene: BTreeMap<String, PanicStats>,
    /// Per-phase analysis wall time in milliseconds. `null` unless
    /// requested (`--timings` / [`crate::run_with_timing`]): the
    /// canonical report must be byte-identical across reruns, so the
    /// default path never stamps wall time.
    pub timing_ms: Option<BTreeMap<String, f64>>,
}

impl Report {
    /// Assembles a report: sorts findings, counts unsuppressed ones.
    pub fn assemble(
        files_scanned: u32,
        mut findings: Vec<Finding>,
        panic_hygiene: BTreeMap<String, PanicStats>,
    ) -> Self {
        findings.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule.as_str()).cmp(&(
                b.file.as_str(),
                b.line,
                b.rule.as_str(),
            ))
        });
        let unsuppressed = findings.iter().filter(|f| f.unsuppressed()).count() as u32;
        let mut rule_stats: BTreeMap<String, RuleStat> = ALL_RULES
            .iter()
            .map(|r| {
                (
                    r.name().to_string(),
                    RuleStat {
                        findings: 0,
                        unsuppressed: 0,
                    },
                )
            })
            .collect();
        for f in &findings {
            let stat = rule_stats.entry(f.rule.clone()).or_insert(RuleStat {
                findings: 0,
                unsuppressed: 0,
            });
            stat.findings += 1;
            if f.unsuppressed() {
                stat.unsuppressed += 1;
            }
        }
        Self {
            schema_version: 2,
            files_scanned,
            rules: ALL_RULES.iter().map(|r| r.name().to_string()).collect(),
            findings,
            unsuppressed,
            rule_stats,
            panic_hygiene,
            timing_ms: None,
        }
    }

    /// Serializes the report as pretty JSON.
    pub fn to_json(&self) -> String {
        // The vendored serde_json never fails on this shape (no
        // non-string map keys, no NaN densities).
        serde_json::to_string_pretty(self).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
    }

    /// Renders the human report: unsuppressed findings in full, then
    /// the per-rule summary and the panic-hygiene ratchet table.
    pub fn human(&self) -> String {
        let mut out = String::new();
        for f in self.findings.iter().filter(|f| f.unsuppressed()) {
            out.push_str(&format!(
                "error[{}]: {}:{}: {}\n",
                f.rule, f.file, f.line, f.snippet
            ));
        }
        out.push_str(&format!(
            "qcpa-audit: {} files, {} findings ({} unsuppressed, {} allowed, {} baselined)\n",
            self.files_scanned,
            self.findings.len(),
            self.unsuppressed,
            self.findings.iter().filter(|f| f.allowed).count(),
            self.findings.iter().filter(|f| f.baselined).count(),
        ));
        for rule in ALL_RULES {
            let total = self
                .findings
                .iter()
                .filter(|f| f.rule == rule.name())
                .count();
            let bad = self
                .findings
                .iter()
                .filter(|f| f.rule == rule.name() && f.unsuppressed())
                .count();
            out.push_str(&format!(
                "  {:<18} {:>4} finding(s), {:>3} unsuppressed — {}\n",
                rule.name(),
                total,
                bad,
                rule.describe()
            ));
        }
        out.push_str("panic-hygiene ratchet (unannotated sites / baseline, density per kLoC):\n");
        for (krate, s) in &self.panic_hygiene {
            let status = if s.sites > s.baseline {
                "OVER BUDGET"
            } else if s.sites < s.baseline {
                "slack — lower the baseline"
            } else {
                "at budget"
            };
            out.push_str(&format!(
                "  {:<16} {:>3}/{:<3} ({} annotated, {} hot, {:.2}/kLoC) {}\n",
                krate, s.sites, s.baseline, s.annotated, s.hot_sites, s.density_per_kloc, status
            ));
        }
        if let Some(timing) = &self.timing_ms {
            out.push_str("analysis wall time (ms):\n");
            for (phase, ms) in timing {
                out.push_str(&format!("  {phase:<18} {ms:>9.3}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assemble_sorts_and_counts() {
        let f1 = Finding::new(RuleId::Spawn, "b.rs", 4, "x");
        let mut f2 = Finding::new(RuleId::HashIter, "a.rs", 9, "y");
        f2.allowed = true;
        let r = Report::assemble(2, vec![f1, f2], BTreeMap::new());
        assert_eq!(r.findings[0].file, "a.rs");
        assert_eq!(r.unsuppressed, 1);
    }

    #[test]
    fn json_round_trips() {
        let mut stats = BTreeMap::new();
        stats.insert(
            "qcpa-core".to_string(),
            PanicStats {
                sites: 3,
                annotated: 1,
                baseline: 5,
                lib_lines: 1000,
                density_per_kloc: 4.0,
                hot_sites: 2,
            },
        );
        let r = Report::assemble(
            1,
            vec![Finding::new(
                RuleId::EnvAccess,
                "x.rs",
                0,
                "std::env::var(\"HOME\")",
            )],
            stats,
        );
        let json = r.to_json();
        let back: Report = serde_json::from_str(&json).expect("report parses");
        assert_eq!(back, r);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn human_report_mentions_over_budget() {
        let mut stats = BTreeMap::new();
        stats.insert(
            "qcpa-sim".to_string(),
            PanicStats {
                sites: 9,
                annotated: 0,
                baseline: 2,
                lib_lines: 100,
                density_per_kloc: 90.0,
                hot_sites: 0,
            },
        );
        let r = Report::assemble(1, Vec::new(), stats);
        assert!(r.human().contains("OVER BUDGET"));
    }
}
