//! A small Rust lexer that separates *code* from comments and literal
//! contents, without a full parser (no `syn`, consistent with the
//! vendored-deps policy).
//!
//! The audit rules are token scans, so their one failure mode is a
//! forbidden token appearing inside a string literal or a comment
//! (`"HashMap"` in a doc example must not trip the hash-iter rule).
//! [`mask`] produces a copy of the source in which every comment and
//! every literal body is replaced by spaces — newlines preserved, so
//! line numbers in the masked text match the original — plus the
//! comment and string-literal text per line, which the allow-annotation
//! and `// SAFETY:` checks and the env-access key check read.
//!
//! Handled constructs: line comments (`//`, `///`, `//!`), *nested*
//! block comments, string literals with escapes, raw strings
//! (`r"…"`, `r#"…"#`, any hash depth), byte strings (`b"…"`, `br#"…"#`),
//! char and byte-char literals, and the char-literal vs. lifetime
//! ambiguity (`'a'` vs. `<'a>` vs. `'outer: loop`).

/// The result of masking one source file. All line indices are 0-based;
/// callers present them 1-based.
#[derive(Debug, Clone)]
pub struct Masked {
    /// The source with comments and literal bodies blanked to spaces.
    /// Same number of lines as the input.
    pub code: Vec<String>,
    /// Concatenated comment text on each line (without `//` markers
    /// stripped — the raw comment characters, markers included).
    pub comments: Vec<String>,
    /// Concatenated string-literal content on each line.
    pub strings: Vec<String>,
}

impl Masked {
    /// Number of lines in the file.
    pub fn n_lines(&self) -> usize {
        self.code.len()
    }

    /// True when the masked code on `line` is blank (the original line
    /// held only whitespace and/or comment text).
    pub fn is_comment_only(&self, line: usize) -> bool {
        self.code[line].trim().is_empty() && !self.comments[line].trim().is_empty()
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Masks one source file. Never fails: unterminated constructs extend
/// to end of input, matching what `rustc` would reject anyway.
pub fn mask(src: &str) -> Masked {
    let chars: Vec<char> = src.chars().collect();
    let mut out = MaskWriter::new();
    let mut i = 0usize;
    // The last non-whitespace char emitted as code, to tell `r"…"`
    // (raw string) from `var"…"` (identifier ending in r — not Rust,
    // but the lexer must not panic) and to keep `br`/`b` prefixes
    // from triggering mid-identifier.
    let mut prev_code: Option<char> = None;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match c {
            '/' if next == Some('/') => {
                while i < chars.len() && chars[i] != '\n' {
                    out.comment(chars[i]);
                    i += 1;
                }
            }
            '/' if next == Some('*') => {
                let mut depth = 0usize;
                while i < chars.len() {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        out.comment('/');
                        out.comment('*');
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        out.comment('*');
                        out.comment('/');
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        out.comment(chars[i]);
                        i += 1;
                    }
                }
            }
            '"' => {
                i = consume_string(&chars, i, &mut out);
                prev_code = Some('"');
            }
            'r' | 'b' if prev_code.is_none_or(|p| !is_ident_char(p)) => {
                if let Some(end) = raw_string_end(&chars, i) {
                    // r"…" / r#"…"# / br"…" / br##"…"## — mask the lot.
                    let mut j = i;
                    let hashes = count_hashes(&chars, i);
                    // Skip prefix + hashes + opening quote.
                    while j < chars.len() && chars[j] != '"' {
                        out.blank(chars[j]);
                        j += 1;
                    }
                    out.blank('"');
                    j += 1;
                    while j < end {
                        out.string_body(chars[j]);
                        j += 1;
                    }
                    // Closing quote + hashes.
                    let close = (end + 1 + hashes).min(chars.len());
                    while j < close {
                        out.blank(chars[j]);
                        j += 1;
                    }
                    i = j;
                    prev_code = Some('"');
                } else if c == 'b' && next == Some('"') {
                    out.blank('b');
                    i = consume_string(&chars, i + 1, &mut out);
                    prev_code = Some('"');
                } else if c == 'b' && next == Some('\'') {
                    out.blank('b');
                    i = consume_char_literal(&chars, i + 1, &mut out);
                    prev_code = Some('\'');
                } else {
                    out.code(c);
                    prev_code = Some(c);
                    i += 1;
                }
            }
            '\'' => {
                if is_char_literal(&chars, i) {
                    i = consume_char_literal(&chars, i, &mut out);
                    prev_code = Some('\'');
                } else {
                    // Lifetime or loop label: plain code.
                    out.code('\'');
                    prev_code = Some('\'');
                    i += 1;
                }
            }
            '\n' => {
                out.newline();
                i += 1;
            }
            _ => {
                out.code(c);
                if !c.is_whitespace() {
                    prev_code = Some(c);
                }
                i += 1;
            }
        }
    }
    out.finish()
}

/// At `chars[i] == '\''`: char literal, or lifetime/label?
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        None => false,
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
    }
}

/// Consumes a char literal starting at the opening quote; returns the
/// index just past the closing quote.
fn consume_char_literal(chars: &[char], i: usize, out: &mut MaskWriter) -> usize {
    debug_assert_eq!(chars[i], '\'');
    out.blank('\'');
    let mut j = i + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => {
                out.string_body('\\');
                j += 1;
                if j < chars.len() {
                    out.string_body(chars[j]);
                    j += 1;
                }
            }
            '\'' => {
                out.blank('\'');
                return j + 1;
            }
            c => {
                out.string_body(c);
                j += 1;
            }
        }
    }
    j
}

/// Consumes a `"…"` string starting at the opening quote; returns the
/// index just past the closing quote.
fn consume_string(chars: &[char], i: usize, out: &mut MaskWriter) -> usize {
    debug_assert_eq!(chars[i], '"');
    out.blank('"');
    let mut j = i + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => {
                out.string_body('\\');
                j += 1;
                if j < chars.len() {
                    out.string_body(chars[j]);
                    j += 1;
                }
            }
            '"' => {
                out.blank('"');
                return j + 1;
            }
            c => {
                out.string_body(c);
                j += 1;
            }
        }
    }
    j
}

/// Number of `#` between a raw-string prefix at `i` and its quote.
fn count_hashes(chars: &[char], i: usize) -> usize {
    let mut j = i + 1;
    if chars.get(i) == Some(&'b') {
        j += 1; // skip the `r` of `br`
    }
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    hashes
}

/// If `chars[i..]` starts a raw (byte) string (`r"`, `r#"`, `br"`, …),
/// returns the index of the *closing quote*; otherwise `None`.
fn raw_string_end(chars: &[char], i: usize) -> Option<usize> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) != Some(&'"') {
        return None;
    }
    j += 1;
    // Find `"` followed by `hashes` hash marks.
    while j < chars.len() {
        if chars[j] == '"' && chars[j + 1..].iter().take_while(|&&c| c == '#').count() >= hashes {
            return Some(j);
        }
        j += 1;
    }
    Some(chars.len().saturating_sub(1))
}

/// Accumulates the three per-line streams while tracking the current line.
struct MaskWriter {
    code: Vec<String>,
    comments: Vec<String>,
    strings: Vec<String>,
}

impl MaskWriter {
    fn new() -> Self {
        Self {
            code: vec![String::new()],
            comments: vec![String::new()],
            strings: vec![String::new()],
        }
    }

    fn newline(&mut self) {
        self.code.push(String::new());
        self.comments.push(String::new());
        self.strings.push(String::new());
    }

    /// A genuine code character.
    fn code(&mut self, c: char) {
        if c == '\n' {
            self.newline();
        } else {
            let line = self.code.len() - 1;
            self.code[line].push(c);
        }
    }

    /// A character inside a comment: blank in code, kept in comments.
    fn comment(&mut self, c: char) {
        if c == '\n' {
            self.newline();
        } else {
            let line = self.code.len() - 1;
            self.code[line].push(' ');
            self.comments[line].push(c);
        }
    }

    /// A character inside a string/char literal body: blank in code,
    /// kept in strings.
    fn string_body(&mut self, c: char) {
        if c == '\n' {
            self.newline();
        } else {
            let line = self.code.len() - 1;
            self.code[line].push(' ');
            self.strings[line].push(c);
        }
    }

    /// A structural literal character (quote, raw prefix): blank
    /// everywhere.
    fn blank(&mut self, c: char) {
        if c == '\n' {
            self.newline();
        } else {
            let line = self.code.len() - 1;
            self.code[line].push(' ');
        }
    }

    fn finish(self) -> Masked {
        Masked {
            code: self.code,
            comments: self.comments,
            strings: self.strings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> String {
        mask(src).code.join("\n")
    }

    #[test]
    fn line_comments_masked() {
        let m = mask("let x = 1; // uses HashMap\nlet y = 2;");
        assert!(!m.code[0].contains("HashMap"));
        assert!(m.comments[0].contains("HashMap"));
        assert_eq!(m.code[1], "let y = 2;");
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* one /* two */ still comment */ b";
        let c = code_of(src);
        assert!(c.contains('a') && c.contains('b'));
        assert!(!c.contains("comment"));
    }

    #[test]
    fn block_comment_spans_lines() {
        let m = mask("x /* HashMap\n still HashMap */ y");
        assert!(!m.code[0].contains("HashMap"));
        assert!(!m.code[1].contains("HashMap"));
        assert!(m.comments[0].contains("HashMap"));
        assert!(m.comments[1].contains("HashMap"));
        assert!(m.code[1].contains('y'));
        assert_eq!(m.n_lines(), 2);
    }

    #[test]
    fn strings_masked_and_captured() {
        let m = mask("call(\"has .unwrap() inside\");");
        assert!(!m.code[0].contains("unwrap"));
        assert!(m.strings[0].contains(".unwrap()"));
        assert!(m.code[0].contains("call("));
    }

    #[test]
    fn escaped_quote_does_not_terminate() {
        let m = mask(r#"f("a\"b.unwrap()"); g()"#);
        assert!(!m.code[0].contains("unwrap"));
        assert!(m.code[0].contains("g()"));
    }

    #[test]
    fn raw_strings_masked() {
        let src = "let s = r#\"raw .unwrap() \"quoted\" body\"#; h()";
        let m = mask(src);
        assert!(!m.code[0].contains("unwrap"));
        assert!(m.code[0].contains("h()"));
        assert!(m.strings[0].contains(".unwrap()"));
    }

    #[test]
    fn raw_string_hash_depth_respected() {
        let src = "let s = r##\"inner \"# not end\"##; tail()";
        let m = mask(src);
        assert!(m.code[0].contains("tail()"));
        assert!(!m.code[0].contains("not end"));
    }

    #[test]
    fn byte_strings_masked() {
        let m = mask("let b = b\"unwrap()\"; k()");
        assert!(!m.code[0].contains("unwrap"));
        assert!(m.code[0].contains("k()"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let m = mask("fn f<'a>(x: &'a str) { let q = 'q'; let n = '\\n'; }");
        // Lifetimes survive as code; char bodies do not.
        assert!(m.code[0].contains("<'a>"));
        assert!(m.code[0].contains("&'a str"));
        assert!(!m.code[0].contains("'q'"));
        assert!(m.strings[0].contains('q'));
    }

    #[test]
    fn loop_labels_are_code() {
        let m = mask("'outer: loop { break 'outer; }");
        assert!(m.code[0].contains("'outer: loop"));
        assert!(m.code[0].contains("break 'outer;"));
    }

    #[test]
    fn unicode_escape_char_literal() {
        let m = mask("let c = '\\u{1F600}'; done()");
        assert!(m.code[0].contains("done()"));
        assert!(!m.code[0].contains("1F600"));
    }

    #[test]
    fn identifier_ending_in_r_not_raw_string() {
        let m = mask("for r in 0..3 { s.push_str(\"x\"); }");
        assert!(m.code[0].contains("for r in 0..3"));
    }

    #[test]
    fn byte_char_literal() {
        let m = mask("let b = b'x'; rest()");
        assert!(m.code[0].contains("rest()"));
        assert!(!m.code[0].contains("'x'"));
    }

    #[test]
    fn multiline_string_keeps_line_count() {
        let src = "a(\"one\ntwo\nthree\") ; b";
        let m = mask(src);
        assert_eq!(m.n_lines(), 3);
        assert!(m.code[2].contains("; b"));
        assert!(m.strings[1].contains("two"));
    }

    #[test]
    fn comment_only_detection() {
        let m = mask("// just a comment\nlet x = 1; // trailing\n\n");
        assert!(m.is_comment_only(0));
        assert!(!m.is_comment_only(1));
        assert!(!m.is_comment_only(2));
    }
}
