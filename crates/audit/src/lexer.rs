//! A small Rust lexer that separates *code* from comments and literal
//! contents, without a full parser (no `syn`, consistent with the
//! vendored-deps policy).
//!
//! The audit rules are token scans, so their one failure mode is a
//! forbidden token appearing inside a string literal or a comment
//! (`"HashMap"` in a doc example must not trip the hash-iter rule).
//! [`mask`] produces a copy of the source in which every comment and
//! every literal body is replaced by spaces — newlines preserved, so
//! line numbers in the masked text match the original — plus the
//! comment and string-literal text per line, which the allow-annotation
//! and `// SAFETY:` checks and the env-access key check read.
//!
//! Handled constructs: line comments (`//`, `///`, `//!`), *nested*
//! block comments, string literals with escapes, raw strings
//! (`r"…"`, `r#"…"#`, any hash depth), byte strings (`b"…"`, `br#"…"#`),
//! char and byte-char literals, raw identifiers (`r#type`), and the
//! char-literal vs. lifetime ambiguity (`'a'` vs. `<'a>` vs.
//! `'outer: loop`).
//!
//! Beyond the masked per-line streams, [`Masked`] records which lines
//! belong to *doc* comments (outer `///`/`/**` and inner `//!`/`/*!`,
//! including every continuation line of a block doc comment) and the
//! exact span of every string/char literal — the inputs the
//! [`crate::parser`] tokenizer needs to rebuild a positioned token
//! stream without re-lexing.

/// Which kind of literal a [`LitSpan`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LitKind {
    /// A string, raw string, or byte string literal.
    Str,
    /// A char or byte-char literal.
    Char,
}

/// One string/char literal: where it starts and what its body says.
#[derive(Debug, Clone)]
pub struct LitSpan {
    /// 0-based line of the opening delimiter (or `b`/`r` prefix).
    pub line: usize,
    /// 0-based column (char offset) of the literal's first character.
    pub col: usize,
    /// The literal body (escapes unprocessed, delimiters stripped).
    pub text: String,
    /// String vs. char.
    pub kind: LitKind,
}

/// The result of masking one source file. All line indices are 0-based;
/// callers present them 1-based.
#[derive(Debug, Clone)]
pub struct Masked {
    /// The source with comments and literal bodies blanked to spaces.
    /// Same number of lines as the input.
    pub code: Vec<String>,
    /// Concatenated comment text on each line (without `//` markers
    /// stripped — the raw comment characters, markers included).
    pub comments: Vec<String>,
    /// Concatenated string-literal content on each line.
    pub strings: Vec<String>,
    /// Per-line flag: the line's comment text belongs to a doc comment
    /// (`///`, `//!`, `/** */`, `/*! */`) — including the continuation
    /// lines of multi-line block doc comments, which a prefix check on
    /// the line's own text cannot classify.
    pub doc_comment: Vec<bool>,
    /// Every string/char literal, in source order.
    pub literals: Vec<LitSpan>,
}

impl Masked {
    /// Number of lines in the file.
    pub fn n_lines(&self) -> usize {
        self.code.len()
    }

    /// True when the masked code on `line` is blank (the original line
    /// held only whitespace and/or comment text).
    pub fn is_comment_only(&self, line: usize) -> bool {
        self.code[line].trim().is_empty() && !self.comments[line].trim().is_empty()
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Masks one source file. Never fails: unterminated constructs extend
/// to end of input, matching what `rustc` would reject anyway.
pub fn mask(src: &str) -> Masked {
    let chars: Vec<char> = src.chars().collect();
    let mut out = MaskWriter::new();
    let mut i = 0usize;
    // The last non-whitespace char emitted as code, to tell `r"…"`
    // (raw string) from `var"…"` (identifier ending in r — not Rust,
    // but the lexer must not panic) and to keep `br`/`b` prefixes
    // from triggering mid-identifier.
    let mut prev_code: Option<char> = None;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match c {
            '/' if next == Some('/') => {
                // `///` (but not `////`) and `//!` are doc comments.
                let doc = match (chars.get(i + 2), chars.get(i + 3)) {
                    (Some('!'), _) => true,
                    (Some('/'), Some('/')) => false,
                    (Some('/'), _) => true,
                    _ => false,
                };
                while i < chars.len() && chars[i] != '\n' {
                    out.comment(chars[i], doc);
                    i += 1;
                }
            }
            '/' if next == Some('*') => {
                // `/**` (but not `/***` or the empty `/**/`) and `/*!`
                // open doc comments; every line they span is doc.
                let doc = match (chars.get(i + 2), chars.get(i + 3)) {
                    (Some('!'), _) => true,
                    (Some('*'), Some('*')) | (Some('*'), Some('/')) => false,
                    (Some('*'), _) => true,
                    _ => false,
                };
                let mut depth = 0usize;
                while i < chars.len() {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        out.comment('/', doc);
                        out.comment('*', doc);
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        out.comment('*', doc);
                        out.comment('/', doc);
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        out.comment(chars[i], doc);
                        i += 1;
                    }
                }
            }
            '"' => {
                out.begin_lit(LitKind::Str);
                i = consume_string(&chars, i, &mut out);
                out.end_lit();
                prev_code = Some('"');
            }
            'r' | 'b' if prev_code.is_none_or(|p| !is_ident_char(p)) => {
                if let Some(end) = raw_string_end(&chars, i) {
                    // r"…" / r#"…"# / br"…" / br##"…"## — mask the lot.
                    let mut j = i;
                    let hashes = count_hashes(&chars, i);
                    out.begin_lit(LitKind::Str);
                    // Skip prefix + hashes + opening quote.
                    while j < chars.len() && chars[j] != '"' {
                        out.blank(chars[j]);
                        j += 1;
                    }
                    out.blank('"');
                    j += 1;
                    while j < end {
                        out.string_body(chars[j]);
                        j += 1;
                    }
                    // Closing quote + hashes.
                    let close = (end + 1 + hashes).min(chars.len());
                    while j < close {
                        out.blank(chars[j]);
                        j += 1;
                    }
                    out.end_lit();
                    i = j;
                    prev_code = Some('"');
                } else if c == 'b' && next == Some('"') {
                    out.begin_lit(LitKind::Str);
                    out.blank('b');
                    i = consume_string(&chars, i + 1, &mut out);
                    out.end_lit();
                    prev_code = Some('"');
                } else if c == 'b' && next == Some('\'') {
                    out.begin_lit(LitKind::Char);
                    out.blank('b');
                    i = consume_char_literal(&chars, i + 1, &mut out);
                    out.end_lit();
                    prev_code = Some('\'');
                } else if c == 'r'
                    && next == Some('#')
                    && chars
                        .get(i + 2)
                        .is_some_and(|&c| is_ident_char(c) && !c.is_ascii_digit())
                {
                    // Raw identifier (`r#type`): one identifier token,
                    // kept in code. Emitting the prefix as code keeps
                    // columns aligned; the tokenizer strips it.
                    out.code('r');
                    out.code('#');
                    i += 2;
                    while i < chars.len() && is_ident_char(chars[i]) {
                        out.code(chars[i]);
                        prev_code = Some(chars[i]);
                        i += 1;
                    }
                } else {
                    out.code(c);
                    prev_code = Some(c);
                    i += 1;
                }
            }
            '\'' => {
                if is_char_literal(&chars, i) {
                    out.begin_lit(LitKind::Char);
                    i = consume_char_literal(&chars, i, &mut out);
                    out.end_lit();
                    prev_code = Some('\'');
                } else {
                    // Lifetime or loop label: plain code.
                    out.code('\'');
                    prev_code = Some('\'');
                    i += 1;
                }
            }
            '\n' => {
                out.newline();
                i += 1;
            }
            _ => {
                out.code(c);
                if !c.is_whitespace() {
                    prev_code = Some(c);
                }
                i += 1;
            }
        }
    }
    out.finish()
}

/// At `chars[i] == '\''`: char literal, or lifetime/label?
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        None => false,
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
    }
}

/// Consumes a char literal starting at the opening quote; returns the
/// index just past the closing quote.
fn consume_char_literal(chars: &[char], i: usize, out: &mut MaskWriter) -> usize {
    debug_assert_eq!(chars[i], '\'');
    out.blank('\'');
    let mut j = i + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => {
                out.string_body('\\');
                j += 1;
                if j < chars.len() {
                    out.string_body(chars[j]);
                    j += 1;
                }
            }
            '\'' => {
                out.blank('\'');
                return j + 1;
            }
            c => {
                out.string_body(c);
                j += 1;
            }
        }
    }
    j
}

/// Consumes a `"…"` string starting at the opening quote; returns the
/// index just past the closing quote.
fn consume_string(chars: &[char], i: usize, out: &mut MaskWriter) -> usize {
    debug_assert_eq!(chars[i], '"');
    out.blank('"');
    let mut j = i + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => {
                out.string_body('\\');
                j += 1;
                if j < chars.len() {
                    out.string_body(chars[j]);
                    j += 1;
                }
            }
            '"' => {
                out.blank('"');
                return j + 1;
            }
            c => {
                out.string_body(c);
                j += 1;
            }
        }
    }
    j
}

/// Number of `#` between a raw-string prefix at `i` and its quote.
fn count_hashes(chars: &[char], i: usize) -> usize {
    let mut j = i + 1;
    if chars.get(i) == Some(&'b') {
        j += 1; // skip the `r` of `br`
    }
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    hashes
}

/// If `chars[i..]` starts a raw (byte) string (`r"`, `r#"`, `br"`, …),
/// returns the index of the *closing quote*; otherwise `None`.
fn raw_string_end(chars: &[char], i: usize) -> Option<usize> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) != Some(&'"') {
        return None;
    }
    j += 1;
    // Find `"` followed by `hashes` hash marks.
    while j < chars.len() {
        if chars[j] == '"' && chars[j + 1..].iter().take_while(|&&c| c == '#').count() >= hashes {
            return Some(j);
        }
        j += 1;
    }
    Some(chars.len().saturating_sub(1))
}

/// Accumulates the three per-line streams while tracking the current line.
struct MaskWriter {
    code: Vec<String>,
    comments: Vec<String>,
    strings: Vec<String>,
    doc_comment: Vec<bool>,
    literals: Vec<LitSpan>,
    /// The literal being accumulated, when inside one.
    lit: Option<LitSpan>,
}

impl MaskWriter {
    fn new() -> Self {
        Self {
            code: vec![String::new()],
            comments: vec![String::new()],
            strings: vec![String::new()],
            doc_comment: vec![false],
            literals: Vec::new(),
            lit: None,
        }
    }

    fn newline(&mut self) {
        self.code.push(String::new());
        self.comments.push(String::new());
        self.strings.push(String::new());
        self.doc_comment.push(false);
    }

    /// A genuine code character.
    fn code(&mut self, c: char) {
        if c == '\n' {
            self.newline();
        } else {
            let line = self.code.len() - 1;
            self.code[line].push(c);
        }
    }

    /// A character inside a comment: blank in code, kept in comments.
    /// `doc` marks the line as doc-comment text.
    fn comment(&mut self, c: char, doc: bool) {
        if c == '\n' {
            self.newline();
        } else {
            let line = self.code.len() - 1;
            self.code[line].push(' ');
            self.comments[line].push(c);
            if doc {
                self.doc_comment[line] = true;
            }
        }
    }

    /// A character inside a string/char literal body: blank in code,
    /// kept in strings (and in the active literal span).
    fn string_body(&mut self, c: char) {
        if let Some(lit) = &mut self.lit {
            lit.text.push(c);
        }
        if c == '\n' {
            self.newline();
        } else {
            let line = self.code.len() - 1;
            self.code[line].push(' ');
            self.strings[line].push(c);
        }
    }

    /// A structural literal character (quote, raw prefix): blank
    /// everywhere.
    fn blank(&mut self, c: char) {
        if c == '\n' {
            self.newline();
        } else {
            let line = self.code.len() - 1;
            self.code[line].push(' ');
        }
    }

    /// Opens a literal span at the current write position.
    fn begin_lit(&mut self, kind: LitKind) {
        let line = self.code.len() - 1;
        let col = self.code[line].chars().count();
        self.lit = Some(LitSpan {
            line,
            col,
            text: String::new(),
            kind,
        });
    }

    /// Closes the current literal span.
    fn end_lit(&mut self) {
        if let Some(lit) = self.lit.take() {
            self.literals.push(lit);
        }
    }

    fn finish(self) -> Masked {
        Masked {
            code: self.code,
            comments: self.comments,
            strings: self.strings,
            doc_comment: self.doc_comment,
            literals: self.literals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> String {
        mask(src).code.join("\n")
    }

    #[test]
    fn line_comments_masked() {
        let m = mask("let x = 1; // uses HashMap\nlet y = 2;");
        assert!(!m.code[0].contains("HashMap"));
        assert!(m.comments[0].contains("HashMap"));
        assert_eq!(m.code[1], "let y = 2;");
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* one /* two */ still comment */ b";
        let c = code_of(src);
        assert!(c.contains('a') && c.contains('b'));
        assert!(!c.contains("comment"));
    }

    #[test]
    fn block_comment_spans_lines() {
        let m = mask("x /* HashMap\n still HashMap */ y");
        assert!(!m.code[0].contains("HashMap"));
        assert!(!m.code[1].contains("HashMap"));
        assert!(m.comments[0].contains("HashMap"));
        assert!(m.comments[1].contains("HashMap"));
        assert!(m.code[1].contains('y'));
        assert_eq!(m.n_lines(), 2);
    }

    #[test]
    fn strings_masked_and_captured() {
        let m = mask("call(\"has .unwrap() inside\");");
        assert!(!m.code[0].contains("unwrap"));
        assert!(m.strings[0].contains(".unwrap()"));
        assert!(m.code[0].contains("call("));
    }

    #[test]
    fn escaped_quote_does_not_terminate() {
        let m = mask(r#"f("a\"b.unwrap()"); g()"#);
        assert!(!m.code[0].contains("unwrap"));
        assert!(m.code[0].contains("g()"));
    }

    #[test]
    fn raw_strings_masked() {
        let src = "let s = r#\"raw .unwrap() \"quoted\" body\"#; h()";
        let m = mask(src);
        assert!(!m.code[0].contains("unwrap"));
        assert!(m.code[0].contains("h()"));
        assert!(m.strings[0].contains(".unwrap()"));
    }

    #[test]
    fn raw_string_hash_depth_respected() {
        let src = "let s = r##\"inner \"# not end\"##; tail()";
        let m = mask(src);
        assert!(m.code[0].contains("tail()"));
        assert!(!m.code[0].contains("not end"));
    }

    #[test]
    fn byte_strings_masked() {
        let m = mask("let b = b\"unwrap()\"; k()");
        assert!(!m.code[0].contains("unwrap"));
        assert!(m.code[0].contains("k()"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let m = mask("fn f<'a>(x: &'a str) { let q = 'q'; let n = '\\n'; }");
        // Lifetimes survive as code; char bodies do not.
        assert!(m.code[0].contains("<'a>"));
        assert!(m.code[0].contains("&'a str"));
        assert!(!m.code[0].contains("'q'"));
        assert!(m.strings[0].contains('q'));
    }

    #[test]
    fn loop_labels_are_code() {
        let m = mask("'outer: loop { break 'outer; }");
        assert!(m.code[0].contains("'outer: loop"));
        assert!(m.code[0].contains("break 'outer;"));
    }

    #[test]
    fn unicode_escape_char_literal() {
        let m = mask("let c = '\\u{1F600}'; done()");
        assert!(m.code[0].contains("done()"));
        assert!(!m.code[0].contains("1F600"));
    }

    #[test]
    fn identifier_ending_in_r_not_raw_string() {
        let m = mask("for r in 0..3 { s.push_str(\"x\"); }");
        assert!(m.code[0].contains("for r in 0..3"));
    }

    #[test]
    fn byte_char_literal() {
        let m = mask("let b = b'x'; rest()");
        assert!(m.code[0].contains("rest()"));
        assert!(!m.code[0].contains("'x'"));
    }

    #[test]
    fn multiline_string_keeps_line_count() {
        let src = "a(\"one\ntwo\nthree\") ; b";
        let m = mask(src);
        assert_eq!(m.n_lines(), 3);
        assert!(m.code[2].contains("; b"));
        assert!(m.strings[1].contains("two"));
    }

    #[test]
    fn comment_only_detection() {
        let m = mask("// just a comment\nlet x = 1; // trailing\n\n");
        assert!(m.is_comment_only(0));
        assert!(!m.is_comment_only(1));
        assert!(!m.is_comment_only(2));
    }

    #[test]
    fn doc_comment_lines_classified() {
        let m = mask("//! inner doc\n/// outer doc\n// plain\n//// not doc\nlet x = 1;\n");
        assert_eq!(m.doc_comment[..5], [true, true, false, false, false]);
    }

    #[test]
    fn block_doc_comment_marks_continuation_lines() {
        let m = mask("/*! inner block\n continues here\n*/\n/* plain block\n tail */\n");
        assert!(m.doc_comment[0] && m.doc_comment[1] && m.doc_comment[2]);
        assert!(!m.doc_comment[3] && !m.doc_comment[4]);
        let m = mask("/** outer block\n second line */ code()\n");
        assert!(m.doc_comment[0] && m.doc_comment[1]);
        // `/**/` (empty) and `/***/` are not doc comments.
        assert!(!mask("/**/ x\n").doc_comment[0]);
        assert!(!mask("/*** banner ***/ x\n").doc_comment[0]);
    }

    #[test]
    fn raw_identifiers_stay_code() {
        let m = mask("let r#type = r#match.r#fn; struct r#struct;\n");
        assert!(m.code[0].contains("r#type"));
        assert!(m.code[0].contains("r#match"));
        assert!(m.code[0].contains("r#struct"));
        assert!(m.literals.is_empty());
        // A raw *string* right after is still a string.
        let m = mask("let a = r#type; let s = r#\"body\"#;\n");
        assert!(m.code[0].contains("r#type"));
        assert!(!m.code[0].contains("body"));
        assert_eq!(m.literals.len(), 1);
    }

    #[test]
    fn literal_spans_record_position_and_body() {
        let m = mask("let s = \"abc\"; let c = 'x'; let r = r#\"raw\"#;\n");
        assert_eq!(m.literals.len(), 3);
        assert_eq!(m.literals[0].text, "abc");
        assert_eq!(m.literals[0].kind, LitKind::Str);
        assert_eq!(m.literals[0].line, 0);
        assert_eq!(m.literals[0].col, 8);
        assert_eq!(m.literals[1].text, "x");
        assert_eq!(m.literals[1].kind, LitKind::Char);
        assert_eq!(m.literals[2].text, "raw");
        // Byte strings/chars record the prefix position.
        let m = mask("f(b\"xy\", b'z')\n");
        assert_eq!(m.literals[0].col, 2);
        assert_eq!(m.literals[0].text, "xy");
        assert_eq!(m.literals[1].text, "z");
    }

    #[test]
    fn multiline_literal_span_keeps_start() {
        let m = mask("let s = \"one\ntwo\";\n");
        assert_eq!(m.literals.len(), 1);
        assert_eq!(m.literals[0].line, 0);
        assert_eq!(m.literals[0].text, "one\ntwo");
    }
}
