//! The audit rules: what each one scans for, where it applies, and how
//! inline `// audit:allow(<rule>): <justification>` annotations
//! suppress individual findings.
//!
//! Every rule guards a paper-level invariant — see DESIGN.md §11 for
//! the rule table and the rationale linking each rule to the
//! reproducibility claims (bit-identical allocations and fault replays
//! at any `QCPA_THREADS`, Fig. 4 / Eq. 18–19 speedup methodology).

use crate::lexer::Masked;
use crate::report::Finding;

/// The rules the auditor knows. Kebab-case names (`RuleId::name`) are
/// the vocabulary of allow annotations and the JSON report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// No `HashMap`/`HashSet`/`RandomState` in the deterministic crates:
    /// hash iteration order is randomized per process and leaks into
    /// results wherever a map is iterated.
    HashIter,
    /// No `Instant::now`/`SystemTime` outside `obs`/`bench`/`lp::mip`:
    /// simulated time must come from the event clock, or replays
    /// diverge.
    WallClock,
    /// No ambient entropy (`from_entropy`, `thread_rng`, `OsRng`,
    /// `getrandom`): every RNG must be a seed-derived ChaCha8 stream.
    Entropy,
    /// No `thread::spawn`/`thread::scope`/`thread::Builder` outside
    /// `qcpa-par`: all parallelism goes through the deterministic pool.
    Spawn,
    /// No `unwrap()`/`expect()` in library non-test code without an
    /// annotation; per-crate counts are ratcheted by the baseline.
    PanicHygiene,
    /// Every `unsafe` carries a nearby `// SAFETY:` comment, and every
    /// lib crate root carries `#![forbid(unsafe_code)]`.
    UnsafeAudit,
    /// Every `env::var` read names a `QCPA_*` key (the documented
    /// config surface) on the same line.
    EnvAccess,
    /// A malformed `audit:allow` annotation (unknown rule or missing
    /// justification) is itself a finding — suppressions must be
    /// auditable.
    AllowSyntax,
    /// Semantic: every RNG construction must be fed a seed-derived
    /// expression, and RNG constructions inside a `qcpa_par` job
    /// closure must key through `stream_seed(seed, stream, index)`.
    RngTaint,
    /// Semantic: the static lock graph must be acyclic, and no guard
    /// may be held across a channel send/recv or a park/wait/join.
    LockOrder,
    /// Semantic: reductions on merge-reachable paths must not iterate
    /// hash-ordered containers.
    OrderedReduction,
    /// Semantic: every `QCPA_*` key read in library code must appear in
    /// the README, and every README knob-table row must be backed by a
    /// live key in the code.
    EnvDocDrift,
    /// Semantic: panic sites (unwrap/expect/panic!/unreachable!) inside
    /// functions reachable from hot entry points (`run_open*`,
    /// `optimize*`, `execute`) — ratcheted with the per-crate budget.
    PanicPath,
}

/// All rules, in report order.
pub const ALL_RULES: [RuleId; 13] = [
    RuleId::HashIter,
    RuleId::WallClock,
    RuleId::Entropy,
    RuleId::Spawn,
    RuleId::PanicHygiene,
    RuleId::UnsafeAudit,
    RuleId::EnvAccess,
    RuleId::AllowSyntax,
    RuleId::RngTaint,
    RuleId::LockOrder,
    RuleId::OrderedReduction,
    RuleId::EnvDocDrift,
    RuleId::PanicPath,
];

impl RuleId {
    /// The kebab-case rule name used in annotations and reports.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::HashIter => "hash-iter",
            RuleId::WallClock => "wall-clock",
            RuleId::Entropy => "entropy",
            RuleId::Spawn => "spawn",
            RuleId::PanicHygiene => "panic-hygiene",
            RuleId::UnsafeAudit => "unsafe-audit",
            RuleId::EnvAccess => "env-access",
            RuleId::AllowSyntax => "allow-syntax",
            RuleId::RngTaint => "rng-taint",
            RuleId::LockOrder => "lock-order",
            RuleId::OrderedReduction => "ordered-reduction",
            RuleId::EnvDocDrift => "env-doc-drift",
            RuleId::PanicPath => "panic-path",
        }
    }

    /// Parses a rule name as written in an allow annotation.
    pub fn parse(name: &str) -> Option<Self> {
        ALL_RULES.iter().copied().find(|r| r.name() == name)
    }

    /// One-line description for the human report.
    pub fn describe(self) -> &'static str {
        match self {
            RuleId::HashIter => "hash-ordered collections in deterministic crates",
            RuleId::WallClock => "wall-clock reads outside obs/bench/lp::mip",
            RuleId::Entropy => "ambient (non-seed-derived) randomness",
            RuleId::Spawn => "thread creation outside qcpa-par",
            RuleId::PanicHygiene => "unannotated unwrap()/expect() in library code",
            RuleId::UnsafeAudit => "unsafe without SAFETY comment / missing forbid(unsafe_code)",
            RuleId::EnvAccess => "env reads outside the QCPA_* config surface",
            RuleId::AllowSyntax => "malformed audit:allow annotation",
            RuleId::RngTaint => "RNG constructed from a non-seed-derived expression",
            RuleId::LockOrder => "lock-order inversion or guard held across a blocking call",
            RuleId::OrderedReduction => "hash-ordered reduction on a merge-reachable path",
            RuleId::EnvDocDrift => "QCPA_* key undocumented in README (or documented but dead)",
            RuleId::PanicPath => "panic site reachable from a hot entry point",
        }
    }
}

/// Which target a source file belongs to; decides rule applicability
/// (panic-hygiene only constrains library code, for example).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// `src/` of a crate — library (or binary) code.
    Lib,
    /// An integration test under `tests/`.
    Test,
    /// A criterion-style bench under `benches/`.
    Bench,
    /// A runnable example under `examples/`.
    Example,
}

/// Crates whose outputs must be bit-reproducible: the allocator core,
/// the simulator, the deterministic pool, the controller, and the
/// matching/LP layers feeding them.
pub const DETERMINISTIC_CRATES: [&str; 6] = [
    "qcpa-core",
    "qcpa-sim",
    "qcpa-par",
    "qcpa-controller",
    "qcpa-matching",
    "qcpa-lp",
];

/// Crates allowed to read the wall clock (measurement infrastructure,
/// plus the audit tool's own per-rule timing instrumentation).
const WALL_CLOCK_CRATES: [&str; 3] = ["qcpa-obs", "qcpa-bench", "qcpa-audit"];

/// Files allowed to read the wall clock inside otherwise-deterministic
/// crates: the MIP solver's time-budget cutoff, which affects only how
/// long the solver searches, never the meaning of a found solution.
const WALL_CLOCK_FILES: [&str; 1] = ["crates/lp/src/mip.rs"];

/// A parsed `audit:allow(<rule>): <justification>` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// 0-based line the annotation sits on.
    pub line: usize,
    /// The rule it suppresses.
    pub rule: RuleId,
    /// The (non-empty) justification text.
    pub justification: String,
}

/// One file as the rules see it.
pub struct FileCtx<'a> {
    /// Path relative to the audited root, `/`-separated.
    pub rel_path: &'a str,
    /// Owning crate's package name (`qcpa-core`, …, or `qcpa`).
    pub crate_name: &'a str,
    /// Which target the file belongs to.
    pub region: Region,
    /// The masked source.
    pub masked: &'a Masked,
    /// Original source lines (for finding snippets).
    pub raw_lines: &'a [&'a str],
    /// Per-line flag: inside a `#[cfg(test)]` block.
    pub test_lines: &'a [bool],
    /// Parsed allow annotations of this file.
    pub allows: &'a [Allow],
}

/// Extracts every well-formed allow annotation; malformed ones become
/// `allow-syntax` findings (pushed into `findings`).
pub fn parse_allows(
    ctx_path: &str,
    masked: &Masked,
    raw_lines: &[&str],
) -> (Vec<Allow>, Vec<Finding>) {
    const MARKER: &str = "audit:allow";
    let mut allows = Vec::new();
    let mut findings = Vec::new();
    for (line, comment) in masked.comments.iter().enumerate() {
        // Doc comments are prose: the annotation grammar must be
        // documentable without suppressing (or tripping) anything. The
        // lexer's per-line doc classification covers the continuation
        // lines of multi-line `/** */` / `/*! */` blocks, which a
        // prefix check on the line's own text would misread.
        if masked.doc_comment[line] {
            continue;
        }
        let Some(pos) = comment.find(MARKER) else {
            continue;
        };
        let rest = &comment[pos + MARKER.len()..];
        let parsed = (|| {
            let rest = rest.strip_prefix('(')?;
            let close = rest.find(')')?;
            let rule = RuleId::parse(rest[..close].trim())?;
            let after = rest[close + 1..].trim_start();
            let justification = after.strip_prefix(':')?.trim();
            if justification.is_empty() {
                return None;
            }
            Some(Allow {
                line,
                rule,
                justification: justification.to_string(),
            })
        })();
        match parsed {
            Some(a) => allows.push(a),
            None => findings.push(Finding::new(
                RuleId::AllowSyntax,
                ctx_path,
                line,
                raw_lines.get(line).copied().unwrap_or(""),
            )),
        }
    }
    (allows, findings)
}

/// True when a finding of `rule` on `line` (0-based) is covered by an
/// annotation: on the same line, or on a run of comment-only lines
/// immediately above it.
pub fn allow_for<'a>(ctx: &'a FileCtx<'_>, rule: RuleId, line: usize) -> Option<&'a Allow> {
    allow_covering(ctx.allows, ctx.masked, rule, line)
}

/// [`allow_for`] without a full `FileCtx` — the semantic pass carries
/// allows and masked streams per file but no per-rule context struct.
pub fn allow_covering<'a>(
    allows: &'a [Allow],
    masked: &Masked,
    rule: RuleId,
    line: usize,
) -> Option<&'a Allow> {
    let hit = |l: usize| allows.iter().find(|a| a.line == l && a.rule == rule);
    if let Some(a) = hit(line) {
        return Some(a);
    }
    let mut l = line;
    while l > 0 && masked.is_comment_only(l - 1) {
        l -= 1;
        if let Some(a) = hit(l) {
            return Some(a);
        }
    }
    None
}

/// Marks the lines inside `#[cfg(test)]` blocks by brace matching over
/// the masked code (strings and comments already blanked, so every
/// brace is structural).
pub fn mark_test_lines(masked: &Masked) -> Vec<bool> {
    let mut mask = vec![false; masked.n_lines()];
    let joined = masked.code.join("\n");
    let bytes = joined.as_bytes();
    let mut search_from = 0usize;
    while let Some(found) = joined[search_from..].find("#[cfg(test)]") {
        let start = search_from + found;
        // Scan forward to the block's opening brace, then match it.
        let mut depth = 0usize;
        let mut opened = false;
        let mut end = joined.len();
        for (off, &b) in bytes[start..].iter().enumerate() {
            match b {
                b'{' => {
                    depth += 1;
                    opened = true;
                }
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if opened && depth == 0 {
                        end = start + off;
                        break;
                    }
                }
                // A `;` before any `{` ends the item (e.g. a
                // `#[cfg(test)] use …;`): nothing to mark.
                b';' if !opened => {
                    end = start + off;
                    break;
                }
                _ => {}
            }
        }
        let first_line = joined[..start].matches('\n').count();
        let last_line = joined[..end].matches('\n').count();
        for flag in mask.iter_mut().take(last_line + 1).skip(first_line) {
            *flag = true;
        }
        search_from = end.max(start + 1);
    }
    mask
}

/// Finds word-bounded occurrences of `token` in `hay` (identifier
/// characters on either side of the match disqualify it).
pub(crate) fn token_hits(hay: &str, token: &str) -> Vec<usize> {
    let mut hits = Vec::new();
    let mut from = 0usize;
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    while let Some(found) = hay[from..].find(token) {
        let at = from + found;
        // Boundary checks only bind where the token itself starts or
        // ends with an identifier character (`.unwrap()` may follow an
        // identifier; `HashMap` must not extend one).
        let first = token.chars().next().unwrap_or(' ');
        let before_ok =
            !ident(first) || at == 0 || !hay[..at].chars().next_back().is_some_and(ident);
        let after = &hay[at + token.len()..];
        let last = token.chars().next_back().unwrap_or(' ');
        let after_ok = !ident(last) || !after.chars().next().is_some_and(ident);
        if before_ok && after_ok {
            hits.push(at);
        }
        from = at + token.len();
    }
    hits
}

/// Pushes one finding per occurrence of any of `tokens` in the masked
/// code of `ctx`, honoring allow annotations.
fn scan_tokens(ctx: &FileCtx<'_>, rule: RuleId, tokens: &[&str], findings: &mut Vec<Finding>) {
    for (line, code) in ctx.masked.code.iter().enumerate() {
        for token in tokens {
            for _ in token_hits(code, token) {
                let mut f = Finding::new(rule, ctx.rel_path, line, ctx.raw_lines[line]);
                if let Some(a) = allow_for(ctx, rule, line) {
                    f.allowed = true;
                    f.justification = Some(a.justification.clone());
                }
                findings.push(f);
            }
        }
    }
}

/// Runs every token rule applicable to `ctx` and returns the findings
/// (panic-hygiene baselining happens at the workspace level).
pub fn scan_file(ctx: &FileCtx<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();

    if DETERMINISTIC_CRATES.contains(&ctx.crate_name) {
        scan_tokens(
            ctx,
            RuleId::HashIter,
            &["HashMap", "HashSet", "RandomState"],
            &mut findings,
        );
    }

    let wall_clock_exempt =
        WALL_CLOCK_CRATES.contains(&ctx.crate_name) || WALL_CLOCK_FILES.contains(&ctx.rel_path);
    if !wall_clock_exempt {
        scan_tokens(
            ctx,
            RuleId::WallClock,
            &["Instant::now", "SystemTime"],
            &mut findings,
        );
    }

    scan_tokens(
        ctx,
        RuleId::Entropy,
        &[
            "from_entropy",
            "thread_rng",
            "OsRng",
            "getrandom",
            "rand::random",
        ],
        &mut findings,
    );

    if ctx.crate_name != "qcpa-par" {
        scan_tokens(
            ctx,
            RuleId::Spawn,
            &["thread::spawn", "thread::scope", "thread::Builder"],
            &mut findings,
        );
    }

    if ctx.region == Region::Lib {
        scan_panic_hygiene(ctx, &mut findings);
    }

    scan_unsafe(ctx, &mut findings);
    scan_env_access(ctx, &mut findings);

    findings
}

/// `.unwrap()` / `.expect(` in non-test library code.
fn scan_panic_hygiene(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    for (line, code) in ctx.masked.code.iter().enumerate() {
        if ctx.test_lines[line] {
            continue;
        }
        let n = token_hits(code, ".unwrap()").len() + token_hits(code, ".expect(").len();
        for _ in 0..n {
            let mut f = Finding::new(
                RuleId::PanicHygiene,
                ctx.rel_path,
                line,
                ctx.raw_lines[line],
            );
            if let Some(a) = allow_for(ctx, RuleId::PanicHygiene, line) {
                f.allowed = true;
                f.justification = Some(a.justification.clone());
            }
            findings.push(f);
        }
    }
}

/// `unsafe` tokens must carry a `SAFETY:` comment on the same line or
/// within the 5 lines above.
fn scan_unsafe(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    for (line, code) in ctx.masked.code.iter().enumerate() {
        for _ in token_hits(code, "unsafe") {
            let lo = line.saturating_sub(5);
            let documented = (lo..=line).any(|l| ctx.masked.comments[l].contains("SAFETY:"));
            if documented {
                continue;
            }
            let mut f = Finding::new(RuleId::UnsafeAudit, ctx.rel_path, line, ctx.raw_lines[line]);
            if let Some(a) = allow_for(ctx, RuleId::UnsafeAudit, line) {
                f.allowed = true;
                f.justification = Some(a.justification.clone());
            }
            findings.push(f);
        }
    }
}

/// `env::var` reads must name a `QCPA_*` key in a string literal on the
/// same line (the documented config surface).
fn scan_env_access(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    for (line, code) in ctx.masked.code.iter().enumerate() {
        for _ in token_hits(code, "env::var") {
            if ctx.masked.strings[line].contains("QCPA_") {
                continue;
            }
            let mut f = Finding::new(RuleId::EnvAccess, ctx.rel_path, line, ctx.raw_lines[line]);
            if let Some(a) = allow_for(ctx, RuleId::EnvAccess, line) {
                f.allowed = true;
                f.justification = Some(a.justification.clone());
            }
            findings.push(f);
        }
    }
}

/// The crate-root check: `src/lib.rs` of every library crate must carry
/// `#![forbid(unsafe_code)]`. Suppressible by an annotation in the
/// first 10 lines (a crate that genuinely needs `unsafe` documents why
/// at the top).
pub fn check_forbid_unsafe(
    rel_path: &str,
    masked: &Masked,
    raw_lines: &[&str],
    allows: &[Allow],
) -> Option<Finding> {
    let has = masked
        .code
        .iter()
        .any(|l| l.contains("#![forbid(unsafe_code)]"));
    if has {
        return None;
    }
    let mut f = Finding::new(
        RuleId::UnsafeAudit,
        rel_path,
        0,
        raw_lines.first().copied().unwrap_or(""),
    );
    f.snippet = format!("missing #![forbid(unsafe_code)] — {}", f.snippet);
    if let Some(a) = allows
        .iter()
        .find(|a| a.rule == RuleId::UnsafeAudit && a.line < 10)
    {
        f.allowed = true;
        f.justification = Some(a.justification.clone());
    }
    Some(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::mask;

    fn ctx_findings(crate_name: &str, region: Region, src: &str) -> Vec<Finding> {
        let masked = mask(src);
        let raw_lines: Vec<&str> = src.lines().collect();
        // `lines()` drops a trailing empty line the lexer keeps; pad.
        let mut raw = raw_lines.clone();
        while raw.len() < masked.n_lines() {
            raw.push("");
        }
        let test_lines = mark_test_lines(&masked);
        let (allows, mut findings) = parse_allows("x.rs", &masked, &raw);
        let ctx = FileCtx {
            rel_path: "x.rs",
            crate_name,
            region,
            masked: &masked,
            raw_lines: &raw,
            test_lines: &test_lines,
            allows: &allows,
        };
        findings.extend(scan_file(&ctx));
        findings
    }

    fn count(findings: &[Finding], rule: RuleId, allowed: bool) -> usize {
        findings
            .iter()
            .filter(|f| f.rule == rule.name() && f.allowed == allowed)
            .count()
    }

    #[test]
    fn hash_iter_fires_only_in_deterministic_crates() {
        let src = "use std::collections::HashMap;\n";
        let det = ctx_findings("qcpa-core", Region::Lib, src);
        assert_eq!(count(&det, RuleId::HashIter, false), 1);
        let free = ctx_findings("qcpa-workloads", Region::Lib, src);
        assert_eq!(count(&free, RuleId::HashIter, false), 0);
    }

    #[test]
    fn hash_iter_ignores_comments_and_strings() {
        let src = "// a HashMap in prose\nlet s = \"HashMap\";\n";
        let f = ctx_findings("qcpa-core", Region::Lib, src);
        assert_eq!(count(&f, RuleId::HashIter, false), 0);
    }

    #[test]
    fn word_boundary_respected() {
        let src = "struct MyHashMapLike; let x = FooHashMap;\n";
        let f = ctx_findings("qcpa-core", Region::Lib, src);
        assert_eq!(count(&f, RuleId::HashIter, false), 0);
    }

    #[test]
    fn wall_clock_exempts_mip() {
        let src = "let t = Instant::now();\n";
        let f = ctx_findings("qcpa-sim", Region::Lib, src);
        assert_eq!(count(&f, RuleId::WallClock, false), 1);
        // Same content under the exempted file path.
        let masked = mask(src);
        let raw: Vec<&str> = src.lines().collect();
        let test_lines = mark_test_lines(&masked);
        let ctx = FileCtx {
            rel_path: "crates/lp/src/mip.rs",
            crate_name: "qcpa-lp",
            region: Region::Lib,
            masked: &masked,
            raw_lines: &raw,
            test_lines: &test_lines,
            allows: &[],
        };
        assert_eq!(count(&scan_file(&ctx), RuleId::WallClock, false), 0);
    }

    #[test]
    fn allow_annotation_suppresses() {
        let src =
            "// audit:allow(wall-clock): measuring real elapsed time\nlet t = Instant::now();\n";
        let f = ctx_findings("qcpa-sim", Region::Lib, src);
        assert_eq!(count(&f, RuleId::WallClock, false), 0);
        assert_eq!(count(&f, RuleId::WallClock, true), 1);
    }

    #[test]
    fn trailing_allow_annotation_suppresses() {
        let src = "let t = Instant::now(); // audit:allow(wall-clock): bench timing\n";
        let f = ctx_findings("qcpa-sim", Region::Lib, src);
        assert_eq!(count(&f, RuleId::WallClock, false), 0);
        assert_eq!(count(&f, RuleId::WallClock, true), 1);
    }

    #[test]
    fn stacked_annotations_walk_up() {
        let src = "// audit:allow(wall-clock): timing\n// audit:allow(panic-hygiene): infallible here\nlet t = Instant::now().elapsed().as_secs_f64().to_string(); t.parse::<f64>().unwrap();\n";
        let f = ctx_findings("qcpa-sim", Region::Lib, src);
        assert_eq!(count(&f, RuleId::WallClock, false), 0);
        assert_eq!(count(&f, RuleId::PanicHygiene, false), 0);
    }

    #[test]
    fn malformed_allow_is_a_finding() {
        let src = "// audit:allow(no-such-rule): x\n// audit:allow(spawn)\n";
        let f = ctx_findings("qcpa-core", Region::Lib, src);
        assert_eq!(count(&f, RuleId::AllowSyntax, false), 2);
    }

    #[test]
    fn panic_hygiene_skips_tests_and_non_lib() {
        let src =
            "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n";
        let f = ctx_findings("qcpa-core", Region::Lib, src);
        assert_eq!(count(&f, RuleId::PanicHygiene, false), 1);
        let f = ctx_findings("qcpa-core", Region::Test, src);
        assert_eq!(count(&f, RuleId::PanicHygiene, false), 0);
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let bad = "unsafe { do_it() }\n";
        let f = ctx_findings("qcpa-storage", Region::Lib, bad);
        assert_eq!(count(&f, RuleId::UnsafeAudit, false), 1);
        let good = "// SAFETY: the pointer is valid for the call.\nunsafe { do_it() }\n";
        let f = ctx_findings("qcpa-storage", Region::Lib, good);
        assert_eq!(count(&f, RuleId::UnsafeAudit, false), 0);
    }

    #[test]
    fn env_access_requires_qcpa_key() {
        let bad = "let v = std::env::var(\"HOME\");\n";
        let f = ctx_findings("qcpa-core", Region::Lib, bad);
        assert_eq!(count(&f, RuleId::EnvAccess, false), 1);
        let good = "let v = std::env::var(\"QCPA_THREADS\");\n";
        let f = ctx_findings("qcpa-core", Region::Lib, good);
        assert_eq!(count(&f, RuleId::EnvAccess, false), 0);
    }

    #[test]
    fn spawn_allowed_only_in_par() {
        let src = "std::thread::scope(|s| {});\n";
        let f = ctx_findings("qcpa-sim", Region::Lib, src);
        assert_eq!(count(&f, RuleId::Spawn, false), 1);
        let f = ctx_findings("qcpa-par", Region::Lib, src);
        assert_eq!(count(&f, RuleId::Spawn, false), 0);
    }

    #[test]
    fn forbid_check() {
        let with = mask("#![forbid(unsafe_code)]\n");
        let raw = ["#![forbid(unsafe_code)]"];
        assert!(check_forbid_unsafe("a/lib.rs", &with, &raw, &[]).is_none());
        let without = mask("//! docs\n");
        let raw = ["//! docs"];
        let f = check_forbid_unsafe("a/lib.rs", &without, &raw, &[]);
        assert!(f.is_some_and(|f| !f.allowed));
    }

    #[test]
    fn cfg_test_block_marked() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let m = mask(src);
        let marks = mark_test_lines(&m);
        assert_eq!(marks, vec![false, true, true, true, true, false, false]);
    }
}
