//! The `qcpa-audit` binary: run the static-analysis pass over the
//! workspace and gate on unsuppressed findings.
//!
//! ```text
//! qcpa-audit [--root DIR] [--json PATH] [--quiet] [--timings]
//! ```
//!
//! * `--root DIR`  — audit the workspace at DIR (default: discovered by
//!   walking up from the current directory to a `[workspace]` manifest).
//! * `--json PATH` — additionally write the machine-readable report.
//! * `--quiet`     — suppress the human report when the audit passes.
//! * `--timings`   — stamp per-phase analysis wall time into the report
//!   (`timing_ms` stays `null` otherwise, keeping the canonical JSON
//!   byte-identical across reruns).
//!
//! Exit status: 0 when every finding is annotated or inside the
//! panic-hygiene baseline, 1 on any unsuppressed finding, 2 on usage
//! or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut quiet = false;
    let mut timings = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage("--root needs a directory"),
            },
            "--json" => match args.next() {
                Some(v) => json = Some(PathBuf::from(v)),
                None => return usage("--json needs a path"),
            },
            "--quiet" => quiet = true,
            "--timings" => timings = true,
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match qcpa_audit::discover_root(&cwd) {
                Some(r) => r,
                None => return usage("no [workspace] Cargo.toml above the current directory"),
            }
        }
    };

    let run = if timings {
        qcpa_audit::run_with_timing
    } else {
        qcpa_audit::run
    };
    let report = match run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("qcpa-audit: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &json {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("qcpa-audit: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if report.unsuppressed > 0 {
        eprint!("{}", report.human());
        ExitCode::from(1)
    } else {
        if !quiet {
            print!("{}", report.human());
        }
        ExitCode::SUCCESS
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("qcpa-audit: {err}");
    eprintln!("usage: qcpa-audit [--root DIR] [--json PATH] [--quiet] [--timings]");
    ExitCode::from(2)
}
