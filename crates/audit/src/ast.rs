//! The lightweight item/expression AST the semantic rules run on.
//!
//! This is deliberately *not* a faithful Rust AST: there is no type
//! checking, no trait resolution, and unparseable constructs degrade to
//! [`Expr::Unknown`] rather than failing the file. What it does keep is
//! exactly what the cross-function rules need — item nesting (fns,
//! impls, mods, use-trees) with line and token spans, and the
//! expression shapes that carry dataflow: calls, method calls,
//! closures, loops, matches, let bindings, and assignments.
//!
//! All line numbers are 0-based (matching [`crate::lexer::Masked`]);
//! [`crate::report::Finding::new`] converts to the 1-based report form.

/// A parsed source file: the top-level items plus the token count, so
/// tests can assert the items' token ranges tile the whole stream.
#[derive(Debug, Clone, PartialEq)]
pub struct File {
    /// Top-level items in source order.
    pub items: Vec<Item>,
    /// Total number of tokens the file lexed to.
    pub n_tokens: usize,
}

/// One item (top-level or nested), with its spans and attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct Item {
    /// What the item is.
    pub kind: ItemKind,
    /// 0-based line of the item's first token (attributes included).
    pub line: usize,
    /// 0-based line of the item's last token.
    pub end_line: usize,
    /// Index of the item's first token (inclusive).
    pub tok_start: usize,
    /// Index just past the item's last token (exclusive).
    pub tok_end: usize,
    /// Attribute bodies, e.g. `cfg(test)`, `test`, `derive(Debug)`
    /// (the text between the brackets, tokens joined by spaces).
    pub attrs: Vec<String>,
}

impl Item {
    /// True when the item carries `#[cfg(test)]` or `#[test]`.
    pub fn is_test(&self) -> bool {
        self.attrs
            .iter()
            .any(|a| a == "test" || a.starts_with("cfg ( test"))
    }
}

/// The item kinds the analyzer distinguishes.
#[derive(Debug, Clone, PartialEq)]
pub enum ItemKind {
    /// `mod name;` (`items: None`) or `mod name { … }` (`Some`).
    Mod {
        /// Module name.
        name: String,
        /// Inline body, when present.
        items: Option<Vec<Item>>,
    },
    /// `use …;` flattened to its leaf imports.
    Use {
        /// Every leaf the use-tree imports.
        leaves: Vec<UseLeaf>,
    },
    /// A free or associated function.
    Fn(FnItem),
    /// `impl Type { … }` or `impl Trait for Type { … }`.
    Impl {
        /// The implementing type's last path segment.
        type_name: String,
        /// The trait's last path segment, for trait impls.
        trait_name: Option<String>,
        /// Associated items (fns, consts, …).
        items: Vec<Item>,
    },
    /// `trait Name { … }` (default method bodies are parsed).
    Trait {
        /// Trait name.
        name: String,
        /// Associated items.
        items: Vec<Item>,
    },
    /// Anything else (struct, enum, const, static, type, macro, …):
    /// skimmed structurally, not analyzed.
    Other {
        /// The leading keyword or token that identified the item.
        keyword: String,
        /// The item's name when one follows the keyword.
        name: Option<String>,
    },
}

/// One leaf of a use-tree: the full path and the name it binds.
#[derive(Debug, Clone, PartialEq)]
pub struct UseLeaf {
    /// Path segments (`crate`, `super`, `self` kept verbatim).
    pub path: Vec<String>,
    /// The local name: the `as` alias or the last path segment.
    pub alias: String,
}

/// A function item: signature names plus the parsed body.
#[derive(Debug, Clone, PartialEq)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// The body; `None` for trait method declarations.
    pub body: Option<Block>,
}

/// One parameter: the bound name and its type as written.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// The binding name (`self` for receivers).
    pub name: String,
    /// The type text, tokens joined by spaces (`Self` for receivers).
    pub ty: String,
}

/// A `{ … }` block.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// 0-based line of the opening brace.
    pub line: usize,
    /// 0-based line of the closing brace.
    pub end_line: usize,
}

/// One statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let pat(: ty)? (= init)?;`
    Let {
        /// Names the pattern binds.
        names: Vec<String>,
        /// The ascribed type text, when written.
        ty: Option<String>,
        /// The initializer.
        init: Option<Expr>,
        /// 0-based line of the `let`.
        line: usize,
    },
    /// An expression statement (with or without `;`).
    Expr(Expr),
    /// A nested item (fn, struct, mod, … inside a block).
    Item(Item),
}

/// One match (or `if let` / `while let`) arm.
#[derive(Debug, Clone, PartialEq)]
pub struct Arm {
    /// Names the arm's pattern binds.
    pub names: Vec<String>,
    /// The arm body.
    pub body: Expr,
}

/// An expression. Boxes keep the enum small; `Unknown` absorbs
/// anything the parser cannot shape.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A (possibly multi-segment) path: `x`, `cfg.seed`, `a::b::c`.
    Path {
        /// Path segments.
        segs: Vec<String>,
        /// 0-based line.
        line: usize,
    },
    /// A literal. `text` is the token text (string body, number, …).
    Lit {
        /// Literal text.
        text: String,
        /// 0-based line.
        line: usize,
    },
    /// `callee(args…)`.
    Call {
        /// The callee expression (usually a `Path`).
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
        /// 0-based line of the call.
        line: usize,
    },
    /// `recv.name(args…)`.
    MethodCall {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Method name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// 0-based line of the call.
        line: usize,
    },
    /// `recv.name` (field access / tuple index).
    Field {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Field name.
        name: String,
        /// 0-based line.
        line: usize,
    },
    /// `recv[index]`.
    Index {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
        /// 0-based line.
        line: usize,
    },
    /// `|params| body` / `move |params| body`.
    Closure {
        /// Parameter names.
        params: Vec<String>,
        /// Body expression.
        body: Box<Expr>,
        /// 0-based line.
        line: usize,
    },
    /// A block expression.
    Block(Block),
    /// `if cond { then } (else els)?` — `if let` desugars to `Match`.
    If {
        /// Condition.
        cond: Box<Expr>,
        /// Then block.
        then: Block,
        /// Else branch (block or chained if).
        els: Option<Box<Expr>>,
        /// 0-based line.
        line: usize,
    },
    /// `match scrutinee { arms… }` (also carries `if let`/`while let`).
    Match {
        /// The matched expression.
        scrutinee: Box<Expr>,
        /// Arms in order.
        arms: Vec<Arm>,
        /// 0-based line.
        line: usize,
    },
    /// `for pat in iter { body }`.
    For {
        /// Names the loop pattern binds.
        names: Vec<String>,
        /// The iterated expression.
        iter: Box<Expr>,
        /// Loop body.
        body: Block,
        /// 0-based line.
        line: usize,
    },
    /// `while cond { body }` / `loop { body }` (cond `None` for loop).
    While {
        /// Condition, when present.
        cond: Option<Box<Expr>>,
        /// Loop body.
        body: Block,
        /// 0-based line.
        line: usize,
    },
    /// `target op value` for `=`, `+=`, `-=`, ….
    Assign {
        /// The operator text.
        op: String,
        /// Assignment target.
        target: Box<Expr>,
        /// Assigned value.
        value: Box<Expr>,
        /// 0-based line.
        line: usize,
    },
    /// `lhs op rhs` for binary operators (flat, no precedence).
    Binary {
        /// The operator text.
        op: String,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// 0-based line.
        line: usize,
    },
    /// A prefix operator (`&`, `*`, `!`, `-`, `return`, `break`, …).
    Unary {
        /// The operator text.
        op: String,
        /// The operand (`Unknown` when absent, e.g. bare `return`).
        expr: Box<Expr>,
        /// 0-based line.
        line: usize,
    },
    /// `(a, b, …)` — one-element tuples are collapsed to the inner
    /// expression by the parser.
    Tuple {
        /// Elements.
        elems: Vec<Expr>,
        /// 0-based line.
        line: usize,
    },
    /// `[a, b, …]` / `[x; n]`.
    Array {
        /// Elements.
        elems: Vec<Expr>,
        /// 0-based line.
        line: usize,
    },
    /// `Path { field: expr, … }`.
    StructLit {
        /// The struct path segments.
        path: Vec<String>,
        /// `(field, value)` pairs; `..base` becomes `("..", base)`.
        fields: Vec<(String, Expr)>,
        /// 0-based line.
        line: usize,
    },
    /// `name!(args…)` (any delimiter).
    MacroCall {
        /// Macro name.
        name: String,
        /// Arguments, parsed best-effort as expressions.
        args: Vec<Expr>,
        /// 0-based line.
        line: usize,
    },
    /// A token the parser could not shape.
    Unknown {
        /// 0-based line.
        line: usize,
    },
}

impl Expr {
    /// The 0-based line the expression starts on.
    pub fn line(&self) -> usize {
        match self {
            Expr::Path { line, .. }
            | Expr::Lit { line, .. }
            | Expr::Call { line, .. }
            | Expr::MethodCall { line, .. }
            | Expr::Field { line, .. }
            | Expr::Index { line, .. }
            | Expr::Closure { line, .. }
            | Expr::If { line, .. }
            | Expr::Match { line, .. }
            | Expr::For { line, .. }
            | Expr::While { line, .. }
            | Expr::Assign { line, .. }
            | Expr::Binary { line, .. }
            | Expr::Unary { line, .. }
            | Expr::Tuple { line, .. }
            | Expr::Array { line, .. }
            | Expr::StructLit { line, .. }
            | Expr::MacroCall { line, .. }
            | Expr::Unknown { line } => *line,
            Expr::Block(b) => b.line,
        }
    }

    /// Pre-order walk over this expression and every sub-expression
    /// (including statements of nested blocks, but not nested items).
    pub fn walk<F: FnMut(&Expr)>(&self, f: &mut F) {
        f(self);
        match self {
            Expr::Path { .. } | Expr::Lit { .. } | Expr::Unknown { .. } => {}
            Expr::Call { callee, args, .. } => {
                callee.walk(f);
                for a in args {
                    a.walk(f);
                }
            }
            Expr::MethodCall { recv, args, .. } => {
                recv.walk(f);
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Field { recv, .. } => recv.walk(f),
            Expr::Index { recv, index, .. } => {
                recv.walk(f);
                index.walk(f);
            }
            Expr::Closure { body, .. } => body.walk(f),
            Expr::Block(b) => b.walk(f),
            Expr::If {
                cond, then, els, ..
            } => {
                cond.walk(f);
                then.walk(f);
                if let Some(e) = els {
                    e.walk(f);
                }
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                scrutinee.walk(f);
                for arm in arms {
                    arm.body.walk(f);
                }
            }
            Expr::For { iter, body, .. } => {
                iter.walk(f);
                body.walk(f);
            }
            Expr::While { cond, body, .. } => {
                if let Some(c) = cond {
                    c.walk(f);
                }
                body.walk(f);
            }
            Expr::Assign { target, value, .. } => {
                target.walk(f);
                value.walk(f);
            }
            Expr::Binary { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            Expr::Unary { expr, .. } => expr.walk(f),
            Expr::Tuple { elems, .. } | Expr::Array { elems, .. } => {
                for e in elems {
                    e.walk(f);
                }
            }
            Expr::StructLit { fields, .. } => {
                for (_, e) in fields {
                    e.walk(f);
                }
            }
            Expr::MacroCall { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
        }
    }

    /// The path segments when this is a plain path expression.
    pub fn as_path(&self) -> Option<&[String]> {
        match self {
            Expr::Path { segs, .. } => Some(segs),
            _ => None,
        }
    }

    /// A flat textual rendering of a place expression (`self.counters`,
    /// `scratches [ _ ]`), with index expressions normalized to `_` so
    /// per-lane locks collapse to one static lane. `None` for
    /// expressions that are not simple places.
    pub fn place_text(&self) -> Option<String> {
        match self {
            Expr::Path { segs, .. } => Some(segs.join("::")),
            Expr::Field { recv, name, .. } => {
                Some(format!("{}.{name}", recv.place_text().unwrap_or_default()))
            }
            Expr::Index { recv, .. } => Some(format!("{}[_]", recv.place_text()?)),
            Expr::Unary { op, expr, .. } if op == "&" || op == "*" => expr.place_text(),
            Expr::Call { callee, .. } => {
                // A lock obtained through a getter (`filter_slot()`)
                // is identified by the getter path.
                Some(format!("{}()", callee.place_text()?))
            }
            Expr::MethodCall { recv, name, .. } => Some(format!("{}.{name}()", recv.place_text()?)),
            _ => None,
        }
    }

    /// True when the expression mentions identifier `name` anywhere
    /// (as a path segment or field name).
    pub fn mentions(&self, name: &str) -> bool {
        let mut hit = false;
        self.walk(&mut |e| match e {
            Expr::Path { segs, .. } if segs.iter().any(|s| s == name) => hit = true,
            Expr::Field { name: f, .. } if f == name => hit = true,
            _ => {}
        });
        hit
    }
}

impl Block {
    /// Pre-order walk over every expression in the block (skipping
    /// nested items, which have their own fns).
    pub fn walk<F: FnMut(&Expr)>(&self, f: &mut F) {
        for stmt in &self.stmts {
            match stmt {
                Stmt::Let { init, .. } => {
                    if let Some(e) = init {
                        e.walk(f);
                    }
                }
                Stmt::Expr(e) => e.walk(f),
                Stmt::Item(_) => {}
            }
        }
    }
}

/// Walks every `Fn` item in `items` (recursing through mods, impls,
/// traits, and nested block items), calling `f` with the enclosing
/// impl/trait type name (if any) and the item.
pub fn walk_fns<'a, F: FnMut(Option<&'a str>, &'a Item, &'a FnItem)>(items: &'a [Item], f: &mut F) {
    walk_fns_inner(items, None, f);
}

fn walk_fns_inner<'a, F: FnMut(Option<&'a str>, &'a Item, &'a FnItem)>(
    items: &'a [Item],
    owner: Option<&'a str>,
    f: &mut F,
) {
    for item in items {
        match &item.kind {
            ItemKind::Fn(func) => {
                f(owner, item, func);
                if let Some(body) = &func.body {
                    walk_block_items(body, owner, f);
                }
            }
            ItemKind::Mod {
                items: Some(inner), ..
            } => walk_fns_inner(inner, owner, f),
            ItemKind::Impl {
                type_name, items, ..
            } => walk_fns_inner(items, Some(type_name.as_str()), f),
            ItemKind::Trait { name, items } => walk_fns_inner(items, Some(name.as_str()), f),
            _ => {}
        }
    }
}

fn walk_block_items<'a, F: FnMut(Option<&'a str>, &'a Item, &'a FnItem)>(
    block: &'a Block,
    owner: Option<&'a str>,
    f: &mut F,
) {
    for stmt in &block.stmts {
        if let Stmt::Item(item) = stmt {
            walk_fns_inner(std::slice::from_ref(item), owner, f);
        }
    }
}
