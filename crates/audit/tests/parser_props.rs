//! Property tests for the semantic layer: the recursive-descent parser
//! must account for every token (item spans tile the stream) and never
//! panic, on well-formed and degenerate input alike; and the call
//! graph must be a pure function of the source set, independent of the
//! order files are handed in. A final plain test pins the whole
//! report's byte determinism across reruns.

use proptest::prelude::*;
use qcpa_audit::callgraph::CrateGraph;
use qcpa_audit::lexer::mask;
use qcpa_audit::parser::parse_file;

/// Item-level building blocks: realistic shapes the workspace uses,
/// plus degenerate fragments the parser must absorb without losing
/// token accounting.
const SEGMENTS: &[&str] = &[
    "pub fn free(x: u64) -> u64 { x + 1 }\n",
    "fn generic<T: Clone>(v: Vec<T>) -> usize { v.len() }\n",
    "pub struct S { pub a: u64, b: Option<String> }\n",
    "impl S { fn m(&self) -> u64 { self.a } }\n",
    "mod inner { pub fn nested() -> u32 { 7 } }\n",
    "use std::collections::{BTreeMap, BTreeSet as Set};\n",
    "const K: u64 = 0xFF;\n",
    "pub enum E { A, B(u32), C { x: f64 } }\n",
    "fn ctrl(n: u64) -> u64 {\n    let mut acc = 0;\n    for i in 0..n { if i % 2 == 0 { acc += i; } else { acc -= 1; } }\n    while acc > 100 { acc /= 2; }\n    match acc { 0 => 1, v => v }\n}\n",
    "fn closures() -> u64 { let f = |x: u64| x * 2; (0..4).map(f).sum() }\n",
    "fn iflet(o: Option<u64>) -> u64 { if let Some(v) = o { v } else { 0 } }\n",
    "macro_rules! mk { ($x:expr) => { $x + 1 }; }\n",
    "#[cfg(test)]\nmod tests { #[test] fn t() { assert_eq!(1, 1); } }\n",
    "fn turbo() -> Vec<u64> { Vec::<u64>::with_capacity(4) }\n",
    "fn strange() { let r#type = 1; let _ = r#type; }\n",
    "fn lifetimes<'a>(s: &'a str) -> &'a str { &s[1..] }\n",
    // Degenerate fragments: unclosed groups, stray closers, bare
    // keywords. The parser must absorb them and keep tiling.
    "fn broken( {\n",
    "} ) ;\n",
    "let orphan = ;\n",
    "impl {\n}\n",
    "fn no_body();\n",
];

/// Asserts the top-level item spans tile `[0, n_tokens)` exactly.
fn assert_tiles(src: &str) -> Result<(), TestCaseError> {
    let masked = mask(src);
    let file = parse_file(&masked);
    let mut cursor = 0usize;
    for item in &file.items {
        prop_assert_eq!(
            item.tok_start,
            cursor,
            "gap or overlap before item at line {}",
            item.line + 1
        );
        prop_assert!(item.tok_end > item.tok_start, "empty item span");
        cursor = item.tok_end;
    }
    prop_assert_eq!(cursor, file.n_tokens, "trailing tokens unaccounted");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Every concatenation of segments parses without panicking and
    /// with item spans covering every token exactly once.
    fn item_spans_tile_any_segment_mix(
        picks in proptest::collection::vec(0usize..SEGMENTS.len(), 1..16),
    ) {
        let mut src = String::new();
        for &i in &picks {
            src.push_str(SEGMENTS[i]);
        }
        assert_tiles(&src)?;
    }

    /// Parsing is a pure function: two parses of the same source
    /// produce structurally identical ASTs.
    fn parsing_is_deterministic(
        picks in proptest::collection::vec(0usize..SEGMENTS.len(), 1..12),
    ) {
        let src: String = picks.iter().map(|&i| SEGMENTS[i]).collect();
        let masked = mask(&src);
        let a = parse_file(&masked);
        let b = parse_file(&masked);
        prop_assert_eq!(a, b);
    }

    /// The call graph does not depend on the order source files are
    /// supplied: same keys, same edges, either way.
    fn call_graph_ignores_file_order(
        picks in proptest::collection::vec(0usize..SEGMENTS.len(), 1..8),
    ) {
        let lib: String = picks.iter().map(|&i| SEGMENTS[i]).collect();
        let extra = "pub fn caller() -> u64 { free(1) + generic(vec![1u8]) as u64 }\n";
        let forward = vec![
            ("src/lib.rs".to_string(), lib.clone()),
            ("src/extra.rs".to_string(), extra.to_string()),
        ];
        let backward = vec![forward[1].clone(), forward[0].clone()];
        let g1 = CrateGraph::build("t", &forward);
        let g2 = CrateGraph::build("t", &backward);
        let keys1: Vec<&String> = g1.fns.iter().map(|f| &f.key).collect();
        let keys2: Vec<&String> = g2.fns.iter().map(|f| &f.key).collect();
        prop_assert_eq!(keys1, keys2);
        let edges = |g: &CrateGraph| -> Vec<(String, String)> {
            let mut out = Vec::new();
            for (i, callees) in g.calls.iter().enumerate() {
                for &j in callees {
                    out.push((g.fns[i].key.clone(), g.fns[j].key.clone()));
                }
            }
            out
        };
        prop_assert_eq!(edges(&g1), edges(&g2));
    }

    /// Raw identifiers, comments and strings never desynchronize the
    /// token accounting (regression guard for the lexer/tokenizer
    /// hand-off).
    fn tiling_survives_comment_noise(
        n in 0usize..6,
        picks in proptest::collection::vec(0usize..SEGMENTS.len(), 1..6),
    ) {
        let mut src = String::new();
        for &i in &picks {
            for _ in 0..n {
                src.push_str("// noise with fn and { unbalanced\n");
            }
            src.push_str(SEGMENTS[i]);
            src.push_str("/* block fn garbage ( */\n");
        }
        assert_tiles(&src)?;
    }
}

/// The full report — semantic pass included — must be byte-identical
/// across reruns on the same tree (the canonical JSON never embeds
/// wall time or iteration order).
#[test]
fn report_is_byte_deterministic_across_reruns() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/tree");
    let a = qcpa_audit::run(&root).expect("first run").to_json();
    let b = qcpa_audit::run(&root).expect("second run").to_json();
    assert_eq!(a, b);
}
