//! Property tests for the masking lexer: random concatenations of
//! tricky segments (nested block comments, raw strings at any hash
//! depth, char literals vs lifetimes vs loop labels, escapes) must
//! never leak a marker token across the code/comment/string boundary.
//!
//! Each segment plants the marker `XMARKX` a known number of times in
//! code and a known number of times in comment/string bodies; after
//! masking, the counts must match exactly. A lexer that loses sync in
//! any segment corrupts the classification of every later segment, so
//! the property is sensitive to state-machine bugs far beyond the
//! segment that triggered them.

use proptest::prelude::*;
use qcpa_audit::lexer::{mask, Masked};

const MARKER: &str = "XMARKX";

/// (segment text, markers lexed as code, markers lexed as non-code).
const SEGMENTS: &[(&str, usize, usize)] = &[
    ("let XMARKX = 1;\n", 1, 0),
    (
        "fn f<'a>(x: &'a str) -> &'a str { let XMARKX = x.len(); x }\n",
        1,
        0,
    ),
    ("let c = 'x'; let XMARKX = c as u32;\n", 1, 0),
    ("'outer: loop { let XMARKX = 0; break 'outer; }\n", 1, 0),
    ("let esc = '\\''; let XMARKX = esc;\n", 1, 0),
    ("// XMARKX in a line comment\n", 0, 1),
    ("/* XMARKX /* nested XMARKX */ tail XMARKX */\n", 0, 3),
    ("/// doc XMARKX about x.unwrap()\n", 0, 1),
    ("let s = \"XMARKX in a string\";\n", 0, 1),
    ("let e = \"escaped \\\" quote XMARKX\";\n", 0, 1),
    (
        "let r = r#\"raw XMARKX with \"quotes\" and \\ slash\"#;\n",
        0,
        1,
    ),
    ("let r2 = r##\"deeper \"# XMARKX\"##;\n", 0, 1),
    ("let b = b\"XMARKX bytes\";\n", 0, 1),
    ("let br = br#\"raw XMARKX bytes\"#;\n", 0, 1),
    ("let multi = \"line one XMARKX\nline two XMARKX\";\n", 0, 2),
    ("fn quiet() -> u32 { 41 + 1 }\n", 0, 0),
];

fn occurrences(lines: &[String]) -> usize {
    lines.iter().map(|l| l.matches(MARKER).count()).sum()
}

fn check(masked: &Masked, want_code: usize, want_noncode: usize) -> Result<(), TestCaseError> {
    prop_assert_eq!(occurrences(&masked.code), want_code, "markers in code");
    let noncode = occurrences(&masked.comments) + occurrences(&masked.strings);
    prop_assert_eq!(noncode, want_noncode, "markers in comments+strings");
    prop_assert_eq!(masked.code.len(), masked.comments.len());
    prop_assert_eq!(masked.code.len(), masked.strings.len());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    fn markers_never_cross_the_masking_boundary(
        picks in proptest::collection::vec(0usize..SEGMENTS.len(), 1..24),
    ) {
        let mut src = String::new();
        let (mut want_code, mut want_noncode) = (0usize, 0usize);
        for &i in &picks {
            let (text, in_code, in_noncode) = SEGMENTS[i];
            src.push_str(text);
            want_code += in_code;
            want_noncode += in_noncode;
        }
        let masked = mask(&src);
        check(&masked, want_code, want_noncode)?;
    }

    fn raw_strings_swallow_tokens_at_any_hash_depth(
        depth in 0usize..5,
        pad in proptest::collection::vec(0u8..26, 0..12),
    ) {
        let hashes = "#".repeat(depth);
        let filler: String = pad.iter().map(|&b| (b'a' + b) as char).collect();
        let src = format!(
            "let r = r{hashes}\"{filler} x.unwrap() HashMap {MARKER}\"{hashes};\nlet {MARKER} = 2;\n"
        );
        let masked = mask(&src);
        check(&masked, 1, 1)?;
        prop_assert!(!masked.code.iter().any(|l| l.contains("unwrap")));
        prop_assert!(!masked.code.iter().any(|l| l.contains("HashMap")));
    }

    fn line_structure_is_preserved(
        picks in proptest::collection::vec(0usize..SEGMENTS.len(), 1..24),
    ) {
        let mut src = String::new();
        for &i in &picks {
            src.push_str(SEGMENTS[i].0);
        }
        let masked = mask(&src);
        // `split('\n')` keeps the empty line after a trailing newline,
        // matching the lexer's line accounting.
        let want = src.split('\n').count();
        prop_assert_eq!(masked.n_lines(), want, "one masked line per source line");
        for (i, raw) in src.lines().enumerate() {
            prop_assert_eq!(
                masked.code[i].chars().count(),
                raw.chars().count(),
                "masking must preserve column positions (line {})", i
            );
        }
    }
}
