//! Integration tests over the checked-in fixture corpora: every rule
//! must fire on the violation tree, suppression must work, the clean
//! tree's JSON report is pinned byte-for-byte, and — the actual gate —
//! the real workspace must audit clean.

use std::path::{Path, PathBuf};

use qcpa_audit::report::Report;
use qcpa_audit::run;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn count(report: &Report, rule: &str, unsuppressed_only: bool) -> usize {
    report
        .findings
        .iter()
        .filter(|f| f.rule == rule && (!unsuppressed_only || f.unsuppressed()))
        .count()
}

#[test]
fn corpus_fires_every_rule_at_least_once() {
    let report = run(&fixture("tree")).expect("fixture tree scans");
    for rule in &report.rules {
        assert!(
            count(&report, rule, true) >= 1,
            "rule {rule} never fired unsuppressed on the violation corpus"
        );
    }
    assert!(report.unsuppressed > 0, "corpus must fail the gate");
}

#[test]
fn corpus_finding_counts_are_exact() {
    let report = run(&fixture("tree")).expect("fixture tree scans");
    // Totals pin the negatives too: tokens inside comments, strings and
    // raw strings, the QCPA_-keyed env read, and the documented unsafe
    // block must all stay silent.
    assert_eq!(count(&report, "hash-iter", false), 4);
    assert_eq!(count(&report, "hash-iter", true), 3);
    assert_eq!(count(&report, "wall-clock", false), 1);
    assert_eq!(count(&report, "entropy", false), 1);
    assert_eq!(count(&report, "spawn", false), 1);
    assert_eq!(count(&report, "panic-hygiene", false), 5);
    assert_eq!(count(&report, "unsafe-audit", false), 2);
    assert_eq!(count(&report, "env-access", false), 1);
    assert_eq!(count(&report, "allow-syntax", false), 2);
    // Semantic rules: one deliberate violation each in the semantic
    // fixture crate (rng-taint twice: one suppressed), the inversion
    // cycle reported from both edges, and the env-drift pair
    // (undocumented key + dead README knob row).
    assert_eq!(count(&report, "rng-taint", false), 2);
    assert_eq!(count(&report, "rng-taint", true), 1);
    assert_eq!(count(&report, "lock-order", false), 2);
    assert_eq!(count(&report, "ordered-reduction", false), 1);
    assert_eq!(count(&report, "env-doc-drift", false), 2);
    assert_eq!(count(&report, "panic-path", false), 1);
}

#[test]
fn semantic_findings_land_where_expected() {
    let report = run(&fixture("tree")).expect("fixture tree scans");
    let drift: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.rule == "env-doc-drift")
        .map(|f| f.file.as_str())
        .collect();
    assert!(drift.contains(&"README.md"), "dead knob row: {drift:?}");
    assert!(
        drift.contains(&"crates/semantic/src/lib.rs"),
        "undocumented key: {drift:?}"
    );
    let hot = report
        .findings
        .iter()
        .find(|f| f.rule == "panic-path")
        .expect("hot panic site");
    assert!(hot.file.ends_with("crates/core/src/lib.rs"));
    assert!(hot.snippet.contains("unwrap"));
    assert!(hot.unsuppressed(), "no baseline → over budget → fails");
    let core = report.panic_hygiene.get("qcpa-core").expect("core stats");
    assert_eq!(core.hot_sites, 1);
    let sem = report
        .panic_hygiene
        .get("qcpa-semantic")
        .expect("semantic fixture stats");
    assert_eq!(sem.hot_sites, 0, "no hot entry point in that crate");
}

#[test]
fn suppressed_rng_taint_carries_its_justification() {
    let report = run(&fixture("tree")).expect("fixture tree scans");
    let allowed = report
        .findings
        .iter()
        .find(|f| f.rule == "rng-taint" && f.allowed)
        .expect("annotated taint site");
    assert_eq!(
        allowed.justification.as_deref(),
        Some("fixture demonstrates a suppressed taint")
    );
}

#[test]
fn suppression_carries_the_justification() {
    let report = run(&fixture("tree")).expect("fixture tree scans");
    let allowed = report
        .findings
        .iter()
        .find(|f| f.rule == "hash-iter" && f.allowed)
        .expect("the annotated HashMap alias is allowed");
    assert_eq!(
        allowed.justification.as_deref(),
        Some("fixture demonstrates a suppressed finding")
    );
    assert!(!allowed.unsuppressed());
}

#[test]
fn panic_hygiene_ratchet_reports_the_fixture_crate() {
    let report = run(&fixture("tree")).expect("fixture tree scans");
    let core = report
        .panic_hygiene
        .get("qcpa-core")
        .expect("fixture core crate has panic stats");
    assert_eq!(core.sites, 1);
    assert_eq!(core.baseline, 0, "no baseline file in the fixture tree");
}

#[test]
fn clean_fixture_matches_pinned_snapshot() {
    let report = run(&fixture("clean")).expect("clean fixture scans");
    assert_eq!(report.unsuppressed, 0);
    assert!(report.findings.is_empty());
    let json = report.to_json();
    let expected = include_str!("../fixtures/clean/expected.json");
    assert_eq!(
        json.trim(),
        expected.trim(),
        "clean-fixture JSON drifted from fixtures/clean/expected.json"
    );
}

#[test]
fn report_round_trips_through_json() {
    let report = run(&fixture("tree")).expect("fixture tree scans");
    let json = report.to_json();
    let back: Report = serde_json::from_str(&json).expect("report JSON deserializes");
    assert_eq!(back.findings.len(), report.findings.len());
    assert_eq!(back.unsuppressed, report.unsuppressed);
    assert_eq!(back.to_json(), json, "re-serialization is stable");
}

#[test]
fn workspace_tree_audits_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = run(&root).expect("workspace scans");
    let bad: Vec<String> = report
        .findings
        .iter()
        .filter(|f| f.unsuppressed())
        .map(|f| format!("{}:{} [{}] {}", f.file, f.line, f.rule, f.snippet))
        .collect();
    assert!(
        bad.is_empty(),
        "unsuppressed audit findings in the workspace:\n{}",
        bad.join("\n")
    );
}
