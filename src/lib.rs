//! # qcpa — Query Centric Partitioning and Allocation
//!
//! A from-scratch Rust reproduction of *Query Centric Partitioning and
//! Allocation for Partially Replicated Database Systems* (Rabl &
//! Jacobsen, SIGMOD 2017).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — classification, allocation model, greedy and memetic
//!   allocators, k-safety, speedup math (the paper's contribution);
//! * [`lp`] — simplex/branch-and-bound solver and the Appendix-B optimal
//!   allocation model;
//! * [`matching`] — Hungarian method, physical allocation and elastic
//!   scale-out/scale-in matching;
//! * [`storage`] — in-memory relational storage engine used as the
//!   backend substrate;
//! * [`sim`] — discrete-event cluster database simulator (controller,
//!   least-pending-first scheduler, ROWA update fan-out);
//! * [`workloads`] — TPC-H-style / TPC-App-style generators and the
//!   diurnal trace;
//! * [`autoscale`] — autonomic scaling controller and sliding-window
//!   workload segmentation;
//! * [`controller`] — the paper's Figure-3 prototype as a library: a
//!   runnable CDBS that executes requests over partially replicated
//!   backend stores, records the journal, and physically reallocates.
//!
//! See the repository `README.md` for a guided tour and `EXPERIMENTS.md`
//! for the paper-versus-measured record of every figure and table.

#![forbid(unsafe_code)]

pub use qcpa_autoscale as autoscale;
pub use qcpa_controller as controller;
pub use qcpa_core as core;
pub use qcpa_lp as lp;
pub use qcpa_matching as matching;
pub use qcpa_sim as sim;
pub use qcpa_storage as storage;
pub use qcpa_workloads as workloads;

/// One-stop prelude: the core model types plus the most used entry
/// points of every subsystem.
pub mod prelude {
    pub use qcpa_core::prelude::*;
}
