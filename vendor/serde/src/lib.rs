//! Offline stand-in for [`serde`](https://docs.rs/serde/1).
//!
//! The build environment has no crates.io access, so this crate provides
//! the small serialization surface the workspace uses, built around an
//! explicit [`Value`] tree instead of serde's visitor machinery:
//!
//! * [`Serialize`] — `to_value(&self) -> Value`;
//! * [`Deserialize`] — `from_value(&Value) -> Result<Self, Error>`;
//! * `#[derive(Serialize, Deserialize)]` via the re-exported
//!   [`serde_derive`] proc macros (named structs, tuple newtypes, unit
//!   and struct-variant enums, and the `#[serde(skip)]` attribute);
//! * impls for the primitive, collection, and map types the workspace
//!   serializes.
//!
//! The JSON text layer lives in the companion `serde_json` stand-in.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer too large for `i64`.
    U64(u64),
    /// A floating point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered set of key/value entries (object).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Short human-readable name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The entries if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Serialization/deserialization failure: a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// A "found X, expected Y while reading Z" error.
    pub fn expected(what: &str, context: &str, found: &Value) -> Error {
        Error(format!(
            "expected {what} for {context}, found {}",
            found.kind()
        ))
    }

    /// A missing-field error.
    pub fn missing_field(field: &str, context: &str) -> Error {
        Error(format!("missing field `{field}` in {context}"))
    }

    /// An unknown-enum-variant error.
    pub fn unknown_variant(variant: &str, context: &str) -> Error {
        Error(format!("unknown variant `{variant}` for {context}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Looks up `field` in an object's entries (derive-generated code).
pub fn get_field<'v>(
    entries: &'v [(String, Value)],
    field: &str,
    context: &str,
) -> Result<&'v Value, Error> {
    entries
        .iter()
        .find(|(k, _)| k == field)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::missing_field(field, context))
}

/// A type that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into the value model.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes an instance from the value model.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls -------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(Error::expected("integer", stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as u64;
                if n <= i64::MAX as u64 { Value::I64(n as i64) } else { Value::U64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(Error::expected("integer", stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::I64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    other => Err(Error::expected("number", stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", "bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", "String", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

// ---- sequence impls --------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", "Vec", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", "BTreeSet", other)),
        }
    }
}

impl<T: Serialize + Eq + Hash> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", "HashSet", other)),
        }
    }
}

// ---- map impls (string keys) -----------------------------------------

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so serialization is deterministic across runs.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::expected("object", "HashMap", other)),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::expected("object", "BTreeMap", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i32::from_value(&(-7i32).to_value()), Ok(-7));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn float_accepts_integer_token() {
        assert_eq!(f64::from_value(&Value::I64(3)), Ok(3.0));
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()), Ok(v));
        let s: BTreeSet<u32> = [3, 1, 2].into_iter().collect();
        assert_eq!(BTreeSet::<u32>::from_value(&s.to_value()), Ok(s));
        let mut m = HashMap::new();
        m.insert("a".to_string(), 1u64);
        m.insert("b".to_string(), 2u64);
        assert_eq!(HashMap::<String, u64>::from_value(&m.to_value()), Ok(m));
    }

    #[test]
    fn hashmap_serialization_is_sorted() {
        let mut m = HashMap::new();
        for k in ["zeta", "alpha", "mid"] {
            m.insert(k.to_string(), 1u8);
        }
        let Value::Object(entries) = m.to_value() else {
            panic!("not an object")
        };
        let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["alpha", "mid", "zeta"]);
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(u32::from_value(&Value::Str("x".into())).is_err());
        assert!(u8::from_value(&Value::I64(300)).is_err());
        assert!(Vec::<u32>::from_value(&Value::Bool(true)).is_err());
    }
}
