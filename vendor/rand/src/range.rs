//! Uniform sampling from ranges, mirroring `rand`'s `SampleRange`.

use std::ops::{Range, RangeInclusive};

use crate::RngCore;

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
#[inline]
pub(crate) fn unit_f64(bits: u64) -> f64 {
    // 53 mantissa bits of precision, as the upstream crate does.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, n)` via Lemire's widening-multiply method
/// with rejection (unbiased).
#[inline]
pub(crate) fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // threshold = 2^64 mod n, the count of biased low values to reject.
    let threshold = n.wrapping_neg() % n;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (n as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

#[inline]
pub(crate) fn uniform_usize<R: RngCore + ?Sized>(rng: &mut R, n: usize) -> usize {
    uniform_u64(rng, n as u64) as usize
}

/// A range that can be sampled uniformly — implemented for the
/// exclusive and inclusive ranges of the primitive types this
/// workspace draws from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_u64(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Whole-domain u64/i64 range: a raw draw is uniform.
                    return (lo as i128).wrapping_add(rng.next_u64() as i128) as $t;
                }
                let off = uniform_u64(rng, span as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                let v = self.start + (self.end - self.start) * u;
                // Floating rounding can land exactly on `end`; nudge back
                // inside the half-open interval.
                if v >= self.end {
                    <$t>::max(self.start, v - (self.end - self.start) * <$t>::EPSILON)
                } else {
                    v
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);
