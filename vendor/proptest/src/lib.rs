//! Offline stand-in for [`proptest`](https://docs.rs/proptest/1).
//!
//! Reimplements the subset of proptest this workspace uses, std-only:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]`,
//!   multiple `fn name(arg in strategy, ...) { .. }` tests per block);
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * the [`Strategy`] trait with `prop_map` / `prop_flat_map`, range
//!   and tuple strategies, [`any`], [`collection::vec`],
//!   [`collection::btree_set`], and [`bool::weighted`] / [`bool::ANY`].
//!
//! Unlike real proptest there is no shrinking: cases are generated from
//! a deterministic per-test seed (derived from the test name and case
//! index), and a failure reports the case number and seed so it can be
//! replayed exactly by re-running the test.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::Rng;
pub use rand_chacha::ChaCha8Rng as TestRng;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Test execution support used by the generated test bodies.
pub mod test_runner {
    use super::{ProptestConfig, TestRng};
    use rand::SeedableRng;
    use std::fmt;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A failed property within a test case (from `prop_assert!`).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Builds a failure from a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// FNV-1a, used to derive a stable per-test base seed from its name.
    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Runs `f` for each case with a deterministic, per-case RNG.
    ///
    /// # Panics
    /// Panics (failing the enclosing `#[test]`) on the first case whose
    /// body returns an error or panics, reporting case index and seed.
    pub fn run<F>(config: &ProptestConfig, name: &str, mut f: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(name);
        for case in 0..config.cases {
            let seed = base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut rng = TestRng::seed_from_u64(seed);
            match catch_unwind(AssertUnwindSafe(|| f(&mut rng))) {
                Ok(Ok(())) => {}
                Ok(Err(e)) => panic!(
                    "proptest `{name}`: case {case}/{} failed (seed {seed:#018x}): {e}",
                    config.cases
                ),
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| payload.downcast_ref::<&str>().copied())
                        .unwrap_or("non-string panic payload");
                    panic!(
                        "proptest `{name}`: case {case}/{} panicked (seed {seed:#018x}): {msg}",
                        config.cases
                    );
                }
            }
        }
    }
}

// ---- Strategy core ---------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

// ---- any / Arbitrary -------------------------------------------------

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values spanning a wide magnitude range.
        let mag = rng.gen_range(-300.0..300.0f64);
        let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        sign * 10f64.powf(mag) * rng.gen_range(0.0..1.0)
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---- collection strategies -------------------------------------------

/// A collection size specification: an exact count or a range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.lo == self.hi {
            self.lo
        } else {
            rng.gen_range(self.lo..=self.hi)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategies producing collections of other strategies' values.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a size drawn from `size`.
    ///
    /// The element strategy's domain must be able to produce at least
    /// the minimum requested number of distinct values; generation
    /// settles for fewer after a bounded number of duplicate draws.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < 64 * (target + 1) {
                if !set.insert(self.element.generate(rng)) {
                    attempts += 1;
                }
            }
            set
        }
    }
}

pub use collection::{BTreeSetStrategy, VecStrategy};

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A strategy yielding `true` with the given probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Weighted(f64);

    impl Strategy for Weighted {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(self.0)
        }
    }

    /// `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        Weighted(p)
    }

    /// Uniformly random booleans.
    pub const ANY: Weighted = Weighted(0.5);
}

/// The common imports (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::test_runner::TestCaseError;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy};
}

// ---- macros ----------------------------------------------------------

/// Asserts a condition inside a property test body, recording the
/// failure (instead of panicking) so the runner can report case/seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::test_runner::run(&config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                #[allow(unreachable_code, clippy::diverging_sub_expression)]
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                __result
            });
        }
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy as _;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        use rand::SeedableRng;
        let mut rng = crate::TestRng::seed_from_u64(1);
        let strat = (1u64..5, 0.0f64..1.0, crate::bool::weighted(1.0));
        for _ in 0..200 {
            let (a, b, c) = strat.generate(&mut rng);
            assert!((1..5).contains(&a));
            assert!((0.0..1.0).contains(&b));
            assert!(c);
        }
    }

    #[test]
    fn collection_sizes_respected() {
        use rand::SeedableRng;
        let mut rng = crate::TestRng::seed_from_u64(2);
        let v = crate::collection::vec(0u32..100, 7).generate(&mut rng);
        assert_eq!(v.len(), 7);
        for _ in 0..50 {
            let v = crate::collection::vec(0u32..100, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            let s = crate::collection::btree_set(0usize..10, 1..=4).generate(&mut rng);
            assert!((1..=4).contains(&s.len()));
        }
    }

    #[test]
    fn flat_map_builds_dependent_strategies() {
        use rand::SeedableRng;
        let mut rng = crate::TestRng::seed_from_u64(3);
        let strat = (2usize..5).prop_flat_map(|n| crate::collection::vec(0..n, n));
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            for &x in &v {
                assert!(x < v.len());
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        fn macro_generates_cases(x in 0u32..10, flip in crate::bool::ANY) {
            prop_assert!(x < 10);
            let _ = flip;
            prop_assert_eq!(x + 1, 1 + x);
            return Ok(());
        }

        fn second_test_in_same_block(v in crate::collection::vec(any::<i64>(), 1..4)) {
            prop_assert!(!v.is_empty() && v.len() < 4);
        }
    }

    #[test]
    #[should_panic(expected = "case 0")]
    fn failures_report_case_and_seed() {
        crate::test_runner::run(&ProptestConfig::with_cases(4), "always_fails", |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }

    #[test]
    fn runs_are_deterministic() {
        use rand::SeedableRng;
        let gen_once = || {
            let mut rng = crate::TestRng::seed_from_u64(99);
            crate::collection::vec((0u32..50, crate::bool::ANY), 3..8).generate(&mut rng)
        };
        assert_eq!(gen_once(), gen_once());
    }
}
