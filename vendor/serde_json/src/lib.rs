//! Offline stand-in for [`serde_json`](https://docs.rs/serde_json/1).
//!
//! Provides `to_string` / `to_string_pretty` / `from_str` over the
//! companion `serde` stand-in's [`Value`] model: a compact JSON printer
//! with full string escaping and a recursive-descent parser supporting
//! the complete JSON grammar (nested containers, escape sequences,
//! `\uXXXX` including surrogate pairs, scientific-notation numbers).

pub use serde::{Error, Value};

/// Serializes `value` to a compact JSON string.
///
/// # Errors
/// Returns an error if the value contains a non-finite float.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0)?;
    Ok(out)
}

/// Serializes `value` to an indented JSON string (2-space indent).
///
/// # Errors
/// Returns an error if the value contains a non-finite float.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Deserializes a `T` from JSON text.
///
/// # Errors
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_str(s)?;
    T::from_value(&value)
}

/// Parses JSON text into a [`Value`] tree.
///
/// # Errors
/// Returns an error on malformed JSON or trailing garbage.
pub fn parse_value_str(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

// ---- printer ---------------------------------------------------------

fn write_value(
    v: &Value,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error(format!("non-finite float {x} cannot be serialized")));
            }
            // Rust's float Display is shortest-round-trip; force a
            // fractional part so the token parses back as a float.
            let s = x.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1)?;
            }
            if !items.is_empty() {
                write_sep(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1)?;
            }
            if !entries.is_empty() {
                write_sep(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_sep(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(w * depth));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), Error> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(Error(format!(
            "expected `{}` at byte {}, found {:?}",
            b as char,
            *pos,
            bytes.get(*pos).map(|&b| b as char)
        )))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'-') | Some(b'0'..=b'9') => parse_number(bytes, pos),
        other => Err(Error(format!(
            "unexpected character {:?} at byte {}",
            other.map(|&b| b as char),
            *pos
        ))),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(Error(format!("invalid literal at byte {}", *pos)))
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            other => {
                return Err(Error(format!(
                    "expected `,` or `]` at byte {}, found {:?}",
                    *pos,
                    other.map(|&b| b as char)
                )))
            }
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    expect(bytes, pos, b'{')?;
    let mut entries = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(entries));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        entries.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            other => {
                return Err(Error(format!(
                    "expected `,` or `}}` at byte {}, found {:?}",
                    *pos,
                    other.map(|&b| b as char)
                )))
            }
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error("unterminated string".to_string())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        *pos += 1;
                        let hi = parse_hex4(bytes, pos)?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect a following \uXXXX low half.
                            expect(bytes, pos, b'\\')?;
                            expect(bytes, pos, b'u')?;
                            let lo = parse_hex4(bytes, pos)?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(Error("invalid low surrogate".to_string()));
                            }
                            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(code)
                        } else {
                            char::from_u32(hi)
                        };
                        out.push(c.ok_or_else(|| Error("invalid unicode escape".to_string()))?);
                        continue; // parse_hex4 already advanced past the digits
                    }
                    other => {
                        return Err(Error(format!(
                            "invalid escape {:?} at byte {}",
                            other.map(|&b| b as char),
                            *pos
                        )))
                    }
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so valid).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error("invalid utf-8".to_string()))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, Error> {
    let chunk = bytes
        .get(*pos..*pos + 4)
        .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
    let s = std::str::from_utf8(chunk).map_err(|_| Error("invalid \\u escape".to_string()))?;
    let n = u32::from_str_radix(s, 16).map_err(|_| Error("invalid \\u escape".to_string()))?;
    *pos += 4;
    Ok(n)
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    let mut is_float = false;
    if bytes.get(*pos) == Some(&b'.') {
        is_float = true;
        *pos += 1;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e') | Some(b'E')) {
        is_float = true;
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| Error("invalid number".to_string()))?;
    if !is_float {
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Value::I64(n));
        }
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::U64(n));
        }
    }
    text.parse::<f64>()
        .map(Value::F64)
        .map_err(|_| Error(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for json in ["null", "true", "false", "0", "-17", "3.25", "\"hi\""] {
            let v = parse_value_str(json).unwrap();
            assert_eq!(to_string(&v).unwrap(), json);
        }
    }

    #[test]
    fn nested_containers_roundtrip() {
        let json = r#"{"a":[1,2,{"b":null}],"c":{"d":[true,false]},"e":-2.5}"#;
        let v = parse_value_str(json).unwrap();
        assert_eq!(to_string(&v).unwrap(), json);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "line1\nline2\ttab \"quoted\" back\\slash \u{1F600} nul-ish \u{01}";
        let json = to_string(&original.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn unicode_escape_and_surrogate_pair() {
        let v: String = from_str(r#""A😀""#).unwrap();
        assert_eq!(v, "A\u{1F600}");
    }

    #[test]
    fn floats_keep_precision() {
        let x = 0.1 + 0.2;
        let back: f64 = from_str(&to_string(&x).unwrap()).unwrap();
        assert_eq!(back, x);
        // An integral float prints with a fractional part...
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        // ...and integers parse into floats when asked to.
        let y: f64 = from_str("7").unwrap();
        assert_eq!(y, 7.0);
    }

    #[test]
    fn large_u64_roundtrips() {
        let n = u64::MAX;
        let back: u64 = from_str(&to_string(&n).unwrap()).unwrap();
        assert_eq!(back, n);
    }

    #[test]
    fn errors_on_garbage() {
        assert!(parse_value_str("{").is_err());
        assert!(parse_value_str("[1,]").is_err());
        assert!(parse_value_str("1 2").is_err());
        assert!(parse_value_str("nul").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn pretty_output_parses_back() {
        let json = r#"{"a":[1,2],"b":{"c":true}}"#;
        let v = parse_value_str(json).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(parse_value_str(&pretty).unwrap(), v);
    }
}
