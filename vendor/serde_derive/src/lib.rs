//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace uses — named-field structs, tuple structs,
//! unit structs, and enums with unit / named-field / newtype variants —
//! plus the `#[serde(skip)]` field attribute. The input token stream is
//! parsed by hand (no `syn`/`quote`, which are unavailable offline) and
//! the impls are emitted against the companion `serde` stand-in's
//! value-model traits (`to_value` / `from_value`).
//!
//! Generics are intentionally unsupported; deriving on a generic type
//! panics with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

enum VariantKind {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Derives `serde::Serialize` (value-model `to_value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` (value-model `from_value`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}

// ---- parsing ---------------------------------------------------------

/// True if an attribute body (the tokens inside `#[...]`) is
/// `serde(skip)`. Any other `serde(...)` attribute is rejected loudly so
/// unsupported options never get silently ignored.
fn attr_is_serde_skip(tokens: &[TokenTree]) -> bool {
    let Some(TokenTree::Ident(name)) = tokens.first() else {
        return false;
    };
    if name.to_string() != "serde" {
        return false;
    }
    let Some(TokenTree::Group(args)) = tokens.get(1) else {
        panic!("serde_derive: malformed #[serde] attribute");
    };
    let inner: Vec<TokenTree> = args.stream().into_iter().collect();
    match inner.as_slice() {
        [TokenTree::Ident(opt)] if opt.to_string() == "skip" => true,
        _ => panic!(
            "serde_derive: unsupported #[serde(...)] attribute: {}",
            args.stream()
        ),
    }
}

/// Consumes leading `#[...]` attributes; returns whether any was
/// `#[serde(skip)]`.
fn eat_attrs(tokens: &[TokenTree], pos: &mut usize) -> bool {
    let mut skip = false;
    while let Some(TokenTree::Punct(p)) = tokens.get(*pos) {
        if p.as_char() != '#' {
            break;
        }
        let Some(TokenTree::Group(body)) = tokens.get(*pos + 1) else {
            panic!("serde_derive: `#` not followed by an attribute body");
        };
        let body_tokens: Vec<TokenTree> = body.stream().into_iter().collect();
        skip |= attr_is_serde_skip(&body_tokens);
        *pos += 2;
    }
    skip
}

/// Consumes an optional `pub` / `pub(...)` visibility.
fn eat_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

/// Skips one field type: everything until a top-level `,` (exclusive).
fn eat_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tt) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *pos += 1;
    }
}

fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let skip = eat_attrs(&tokens, &mut pos);
        eat_visibility(&tokens, &mut pos);
        let Some(TokenTree::Ident(name)) = tokens.get(pos) else {
            panic!(
                "serde_derive: expected field name, got {:?}",
                tokens.get(pos).map(|t| t.to_string())
            );
        };
        let name = name.to_string();
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!(
                "serde_derive: expected `:` after field `{name}`, got {:?}",
                other.map(|t| t.to_string())
            ),
        }
        eat_type(&tokens, &mut pos);
        // Now at a top-level `,` or end of stream.
        if pos < tokens.len() {
            pos += 1;
        }
        fields.push(Field { name, skip });
    }
    fields
}

/// Counts the fields of a tuple struct/variant body `( ... )`.
fn tuple_arity(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut pos = 0;
    let mut arity = 0;
    while pos < tokens.len() {
        let skip = eat_attrs(&tokens, &mut pos);
        assert!(
            !skip,
            "serde_derive: #[serde(skip)] on tuple fields is unsupported"
        );
        eat_visibility(&tokens, &mut pos);
        eat_type(&tokens, &mut pos);
        arity += 1;
        if pos < tokens.len() {
            pos += 1; // the comma
        }
    }
    arity
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        eat_attrs(&tokens, &mut pos);
        let Some(TokenTree::Ident(name)) = tokens.get(pos) else {
            panic!(
                "serde_derive: expected variant name, got {:?}",
                tokens.get(pos).map(|t| t.to_string())
            );
        };
        let name = name.to_string();
        pos += 1;
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g);
                pos += 1;
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g);
                pos += 1;
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        // Discriminants (`= expr`) and trailing commas.
        if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
            assert!(
                p.as_char() != '=',
                "serde_derive: explicit discriminants are unsupported"
            );
        }
        if pos < tokens.len() {
            match tokens.get(pos) {
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => pos += 1,
                other => panic!(
                    "serde_derive: expected `,` after variant `{name}`, got {:?}",
                    other.map(|t| t.to_string())
                ),
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    eat_attrs(&tokens, &mut pos);
    eat_visibility(&tokens, &mut pos);
    let kind = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!(
            "serde_derive: expected `struct` or `enum`, got {:?}",
            other.map(|t| t.to_string())
        ),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!(
            "serde_derive: expected type name, got {:?}",
            other.map(|t| t.to_string())
        ),
    };
    pos += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        assert!(
            p.as_char() != '<',
            "serde_derive: generic type `{name}` is unsupported by the offline stand-in"
        );
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(tuple_arity(g))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!(
                "serde_derive: malformed struct body: {:?}",
                other.map(|t| t.to_string())
            ),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g))
            }
            other => panic!(
                "serde_derive: malformed enum body: {:?}",
                other.map(|t| t.to_string())
            ),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    Item { name, shape }
}

// ---- code generation -------------------------------------------------

fn push_named_fields_ser(out: &mut String, fields: &[Field], access_prefix: &str) {
    out.push_str("let mut entries: Vec<(String, ::serde::Value)> = Vec::new();\n");
    for f in fields {
        if f.skip {
            continue;
        }
        out.push_str(&format!(
            "entries.push((\"{0}\".to_string(), ::serde::Serialize::to_value(&{1}{0})));\n",
            f.name, access_prefix
        ));
    }
}

fn named_fields_de(ty: &str, ctor: &str, fields: &[Field], src: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("::std::result::Result::Ok({ctor} {{\n"));
    for f in fields {
        if f.skip {
            out.push_str(&format!(
                "{}: ::std::default::Default::default(),\n",
                f.name
            ));
        } else {
            out.push_str(&format!(
                "{0}: ::serde::Deserialize::from_value(::serde::get_field({src}, \"{0}\", \"{ty}\")?)?,\n",
                f.name
            ));
        }
    }
    out.push_str("})\n");
    out
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut b = String::new();
            push_named_fields_ser(&mut b, fields, "self.");
            b.push_str("::serde::Value::Object(entries)\n");
            b
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)\n".to_string(),
        Shape::TupleStruct(n) => {
            let mut b = String::new();
            b.push_str("let mut items: Vec<::serde::Value> = Vec::new();\n");
            for i in 0..*n {
                b.push_str(&format!(
                    "items.push(::serde::Serialize::to_value(&self.{i}));\n"
                ));
            }
            b.push_str("::serde::Value::Array(items)\n");
            b
        }
        Shape::UnitStruct => "::serde::Value::Null\n".to_string(),
        Shape::Enum(variants) => {
            let mut b = String::from("match self {\n");
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => b.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),\n"
                    )),
                    VariantKind::Named(fields) => {
                        let binders: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        b.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\n",
                            binders.join(", ")
                        ));
                        let mut inner = String::new();
                        push_named_fields_ser(&mut inner, fields, "");
                        b.push_str(&inner);
                        b.push_str(&format!(
                            "::serde::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Value::Object(entries))])\n}}\n"
                        ));
                    }
                    VariantKind::Tuple(1) => b.push_str(&format!(
                        "{name}::{vname}(x0) => ::serde::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Serialize::to_value(x0))]),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        b.push_str(&format!(
                            "{name}::{vname}({}) => {{\nlet mut items: Vec<::serde::Value> = Vec::new();\n",
                            binders.join(", ")
                        ));
                        for binder in &binders {
                            b.push_str(&format!(
                                "items.push(::serde::Serialize::to_value({binder}));\n"
                            ));
                        }
                        b.push_str(&format!(
                            "::serde::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Value::Array(items))])\n}}\n"
                        ));
                    }
                }
            }
            b.push_str("}\n");
            b
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\nfn to_value(&self) -> ::serde::Value {{\n{body}}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut b = String::new();
            b.push_str(&format!(
                "let entries = v.as_object().ok_or_else(|| ::serde::Error::expected(\"object\", \"{name}\", v))?;\n"
            ));
            b.push_str(&named_fields_de(name, name, fields, "entries"));
            b
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))\n")
        }
        Shape::TupleStruct(n) => {
            let mut b = String::new();
            b.push_str(&format!(
                "let items = v.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", \"{name}\", v))?;\n"
            ));
            b.push_str(&format!(
                "if items.len() != {n} {{ return ::std::result::Result::Err(::serde::Error(format!(\"expected {n} elements for {name}, found {{}}\", items.len()))); }}\n"
            ));
            b.push_str(&format!("::std::result::Result::Ok({name}(\n"));
            for i in 0..*n {
                b.push_str(&format!("::serde::Deserialize::from_value(&items[{i}])?,\n"));
            }
            b.push_str("))\n");
            b
        }
        Shape::UnitStruct => format!(
            "match v {{ ::serde::Value::Null => ::std::result::Result::Ok({name}), other => ::std::result::Result::Err(::serde::Error::expected(\"null\", \"{name}\", other)) }}\n"
        ),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    VariantKind::Named(fields) => {
                        data_arms.push_str(&format!(
                            "\"{vname}\" => {{\nlet fields = _inner.as_object().ok_or_else(|| ::serde::Error::expected(\"object\", \"{name}::{vname}\", _inner))?;\n"
                        ));
                        data_arms.push_str(&named_fields_de(
                            &format!("{name}::{vname}"),
                            &format!("{name}::{vname}"),
                            fields,
                            "fields",
                        ));
                        data_arms.push_str("}\n");
                    }
                    VariantKind::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(_inner)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        data_arms.push_str(&format!(
                            "\"{vname}\" => {{\nlet items = _inner.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", \"{name}::{vname}\", _inner))?;\n"
                        ));
                        data_arms.push_str(&format!(
                            "if items.len() != {n} {{ return ::std::result::Result::Err(::serde::Error(format!(\"expected {n} elements for {name}::{vname}, found {{}}\", items.len()))); }}\n"
                        ));
                        data_arms.push_str(&format!("::std::result::Result::Ok({name}::{vname}(\n"));
                        for i in 0..*n {
                            data_arms
                                .push_str(&format!("::serde::Deserialize::from_value(&items[{i}])?,\n"));
                        }
                        data_arms.push_str("))\n}\n");
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n{unit_arms}\
                 other => ::std::result::Result::Err(::serde::Error::unknown_variant(other, \"{name}\")),\n}},\n\
                 ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                 let (vname, _inner) = &entries[0];\n\
                 match vname.as_str() {{\n{data_arms}\
                 other => ::std::result::Result::Err(::serde::Error::unknown_variant(other, \"{name}\")),\n}}\n}},\n\
                 other => ::std::result::Result::Err(::serde::Error::expected(\"string or single-key object\", \"{name}\", other)),\n}}\n"
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\nfn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}}}\n}}\n"
    )
}
