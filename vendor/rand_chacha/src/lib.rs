//! Offline stand-in for [`rand_chacha`](https://docs.rs/rand_chacha/0.3).
//!
//! Implements a genuine ChaCha8 stream cipher core (Bernstein's design:
//! 8 double-rounds over the "expand 32-byte k" state) exposed through
//! the [`rand::RngCore`] / [`rand::SeedableRng`] traits. Statistical
//! quality therefore matches the upstream crate; the exact word order
//! of the output stream is not guaranteed to be bit-identical, which
//! only matters when replaying artifacts produced by the real crate.

use rand::{RngCore, SeedableRng};

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// The ChaCha generator, generic over the number of double-rounds.
#[derive(Clone, Debug)]
pub struct ChaChaRng<const DOUBLE_ROUNDS: usize> {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14); nonce words are zero.
    counter: u64,
    /// The current 16-word output block.
    block: [u32; 16],
    /// Next word to serve from `block`; 16 means "exhausted".
    index: usize,
}

impl<const DOUBLE_ROUNDS: usize> ChaChaRng<DOUBLE_ROUNDS> {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // state[14], state[15]: zero nonce.
        let input = state;
        for _ in 0..DOUBLE_ROUNDS {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }
}

impl<const DOUBLE_ROUNDS: usize> RngCore for ChaChaRng<DOUBLE_ROUNDS> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }
}

impl<const DOUBLE_ROUNDS: usize> SeedableRng for ChaChaRng<DOUBLE_ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaChaRng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

/// ChaCha with 8 rounds (4 double-rounds) — the variant the workspace uses.
pub type ChaCha8Rng = ChaChaRng<4>;
/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaRng<6>;
/// ChaCha with 20 rounds.
pub type ChaCha20Rng = ChaChaRng<10>;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn output_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let n = 20_000;
        let mut buckets = [0usize; 16];
        for _ in 0..n {
            buckets[rng.gen_range(0..16usize)] += 1;
        }
        let expect = n as f64 / 16.0;
        for (i, &b) in buckets.iter().enumerate() {
            let dev = (b as f64 - expect).abs() / expect;
            assert!(dev < 0.15, "bucket {i}: {b} vs {expect}");
        }
    }

    #[test]
    fn chacha_block_mixes_counter() {
        // Consecutive blocks must differ in (nearly) every word.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let same = first.iter().zip(&second).filter(|(a, b)| a == b).count();
        assert!(same <= 1, "blocks too similar: {same} identical words");
    }
}
