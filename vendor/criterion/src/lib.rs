//! Offline stand-in for [`criterion`](https://docs.rs/criterion/0.5).
//!
//! Provides the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `Throughput`, `BenchmarkId`, `bench_function`,
//! `bench_with_input`, and the `criterion_group!`/`criterion_main!`
//! macros — backed by a simple wall-clock measurement loop: a short
//! calibration pass picks an iteration count per sample, then
//! `sample_size` samples are timed and the median/mean per-iteration
//! times (plus derived throughput) are printed to stdout. No statistics
//! machinery, plots, or saved baselines.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

const DEFAULT_SAMPLE_SIZE: usize = 20;
/// Target wall-clock time for one sample during measurement.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(50);

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The measured routine processes this many logical elements.
    Elements(u64),
    /// The measured routine processes this many bytes.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id like `"name/param"`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id consisting of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Passed to the benchmark closure; `iter` runs the measured routine.
pub struct Bencher {
    /// Number of iterations to run per timed sample.
    iters: u64,
    /// Total elapsed time across the sample, set by `iter`.
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` for the sample's iteration count. The routine's
    /// return value is black-boxed so the computation isn't elided.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on a fresh input from `setup` each iteration;
    /// only the routine is measured, never the setup.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark with no input parameter.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&id.label, DEFAULT_SAMPLE_SIZE, None, &mut f);
        self
    }
}

fn run_benchmark(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // Calibration: grow the iteration count until one sample takes long
    // enough to time reliably.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= TARGET_SAMPLE_TIME || iters >= 1 << 20 {
            break;
        }
        let grow = if b.elapsed.is_zero() {
            16
        } else {
            (TARGET_SAMPLE_TIME.as_secs_f64() / b.elapsed.as_secs_f64()).clamp(2.0, 16.0) as u64
        };
        iters = iters.saturating_mul(grow.max(2));
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;

    let mut line = format!(
        "{label:<40} median {:>12} mean {:>12} ({} samples x {iters} iters)",
        format_time(median),
        format_time(mean),
        per_iter.len(),
    );
    if let Some(tp) = throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        line.push_str(&format!("  {:.3e} {unit}", count as f64 / median));
    }
    println!("{line}");
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.2} s", secs)
    }
}

/// Declares a function running the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_smoke() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.throughput(Throughput::Elements(10));
        group.bench_function("sum", |b| b.iter(|| (0..10u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n + 1)
        });
        group.finish();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("classes", 8).label, "classes/8");
        assert_eq!(BenchmarkId::from_parameter(4).label, "4");
    }
}
