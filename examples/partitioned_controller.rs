//! Predicate-based classification end to end (Section 3.1's third
//! option): an `orders` table range-partitioned by month runs inside
//! the controller. The hot month takes all the writes; cold months
//! serve reports. After reallocation the hot partition is pinned to few
//! backends while cold partitions spread — queries keep answering
//! identically throughout.
//!
//! Run with: `cargo run --release --example partitioned_controller`

use qcpa::controller::{Cdbs, PartitionScheme, Request, WriteRequest};
use qcpa::core::classify::Granularity;
use qcpa::core::memetic::MemeticConfig;
use qcpa::storage::engine::{AggFunc, ScanQuery};
use qcpa::storage::predicate::{CmpOp, Predicate};
use qcpa::storage::schema::{ColumnDef, Schema, TableDef};
use qcpa::storage::table::Table;
use qcpa::storage::types::{DataType, Value};

fn main() {
    // orders(o_id, o_month, o_total), partitioned into months 0–11.
    let mut schema = Schema::new();
    schema.add_table(TableDef::new(
        "orders",
        vec![
            ColumnDef::new("o_id", DataType::I64, 8),
            ColumnDef::new("o_month", DataType::I64, 8),
            ColumnDef::new("o_total", DataType::F64, 8),
        ],
    ));
    let mut orders = Table::new(schema.table("orders").unwrap().clone());
    for i in 0..24_000i64 {
        orders.append(vec![
            Value::I64(i),
            Value::I64(i % 12),
            Value::F64((i % 500) as f64),
        ]);
    }
    let scheme = PartitionScheme::new("orders", "o_month", (1..12).collect());
    let mut cdbs = Cdbs::with_partitioning(schema, vec![orders], 4, vec![scheme]);
    println!(
        "booted 4 backends with 12 monthly partitions, fully replicated: {:?} KB",
        cdbs.stored_bytes()
            .iter()
            .map(|b| b / 1000)
            .collect::<Vec<_>>()
    );

    // The workload: order entry hits month 11 (hot); each cold month
    // gets an occasional revenue report.
    let report = |month: i64| {
        Request::Read(
            ScanQuery::all("orders")
                .select(&["o_total"])
                .filter(Predicate::cmp("o_month", CmpOp::Eq, Value::I64(month)))
                .agg(AggFunc::Sum, "o_total"),
        )
    };
    let mut baseline = Vec::new();
    for round in 0..20i64 {
        cdbs.execute(&Request::Write(WriteRequest::update(
            "orders",
            Some(
                Predicate::cmp("o_month", CmpOp::Eq, Value::I64(11)).and(Predicate::cmp(
                    "o_id",
                    CmpOp::Eq,
                    Value::I64(11 + 12 * round),
                )),
            ),
            "o_total",
            Value::F64(999.0),
        )))
        .expect("hot write");
        let month = round % 11;
        let out = cdbs.execute(&report(month)).expect("cold report");
        if round < 11 {
            baseline.push((month, out.result));
        }
    }
    println!(
        "served the mix; journal: {} classes over partition sets",
        cdbs.journal().distinct()
    );

    let refine = MemeticConfig::default();
    let r = cdbs
        .reallocate(4, Granularity::Fragment, Some(&refine))
        .expect("history recorded");
    println!(
        "reallocated at partition granularity: moved {:.1} MB, kept {} fragments in place",
        r.moved_bytes as f64 / 1e6,
        r.kept_fragments
    );
    println!(
        "stored KB per backend now: {:?}",
        cdbs.stored_bytes()
            .iter()
            .map(|b| b / 1000)
            .collect::<Vec<_>>()
    );
    let hot_hosts = r
        .allocation
        .fragments
        .iter()
        .filter(|set| {
            set.iter().any(
                |f| matches!(cdbs.catalog_fragment_kind(*f), Some((n, true)) if n == "orders#11"),
            )
        })
        .count();
    println!("hot partition (month 11) hosted by {hot_hosts}/4 backends");

    // Cold reports answer identically on the new layout.
    for (month, before) in baseline {
        let after = cdbs.execute(&report(month)).expect("report still works");
        assert_eq!(before, after.result, "month {month} changed!");
    }
    println!("all cold-month reports verified identical after the move");
}
