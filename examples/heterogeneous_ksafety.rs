//! Heterogeneous clusters and k-safety: the Appendix A workload on
//! backends of unequal power, the LP-optimal allocation for comparison,
//! and a 1-safe allocation surviving the loss of any backend.
//!
//! Run with: `cargo run --release --example heterogeneous_ksafety`

use qcpa::core::classify::{Classification, QueryClass};
use qcpa::core::cluster::ClusterSpec;
use qcpa::core::fragment::Catalog;
use qcpa::core::BackendId;
use qcpa::core::{greedy, ksafety};
use qcpa::lp::model::{optimal_allocation, OptimalConfig};

fn main() {
    // Appendix A: 4 reads + 3 updates; backends at 30/30/20/20 %.
    let mut catalog = Catalog::new();
    let a = catalog.add_table("A", 100);
    let b = catalog.add_table("B", 100);
    let c = catalog.add_table("C", 100);
    let cls = Classification::from_classes(vec![
        QueryClass::read(0, [a], 0.24),
        QueryClass::read(1, [b], 0.20),
        QueryClass::read(2, [c], 0.20),
        QueryClass::read(3, [a, b], 0.16),
        QueryClass::update(4, [a], 0.04),
        QueryClass::update(5, [b], 0.10),
        QueryClass::update(6, [c], 0.06),
    ])
    .expect("classes are valid");
    let cluster = ClusterSpec::heterogeneous(&[0.3, 0.3, 0.2, 0.2]);

    let heuristic = greedy::allocate(&cls, &catalog, &cluster);
    println!(
        "greedy (Appendix A trace): scale {:.3}, speedup {:.2}, bytes {}",
        heuristic.scale(&cluster),
        heuristic.speedup(&cluster),
        heuristic.total_bytes(&catalog)
    );

    let out = optimal_allocation(
        &cls,
        &catalog,
        &cluster,
        &OptimalConfig {
            incumbent: Some((heuristic.scale(&cluster), heuristic.total_bytes(&catalog))),
            ..Default::default()
        },
    );
    println!(
        "optimal (Appendix B LP): scale {:.3} [{:?}], storage bound {:.0}",
        out.scale, out.scale_status, out.bytes_lower_bound
    );

    // k-safety: survive any single backend failure without losing the
    // ability to answer any query class locally.
    let safe = ksafety::allocate(&cls, &catalog, &cluster, 1);
    println!(
        "\n1-safe allocation: class safety k = {}, fragment safety k = {:?}, \
         scale {:.3} (redundancy costs throughput: plain greedy had {:.3})",
        ksafety::class_safety(&safe, &cls),
        ksafety::fragment_safety(&safe, &catalog),
        safe.scale(&cluster),
        heuristic.scale(&cluster)
    );
    for failed in 0..4u32 {
        let survivors = ksafety::fail_backends(&safe, &cls, &cluster, &[BackendId(failed)])
            .expect("1-safe allocation survives any single failure");
        let sc =
            ksafety::surviving_cluster(&cluster, &[BackendId(failed)]).expect("survivors remain");
        survivors
            .validate(&cls, &sc)
            .expect("rebalanced allocation is valid");
        println!(
            "  backend B{} fails -> rebalanced speedup {:.2} on {} survivors",
            failed + 1,
            survivors.speedup(&sc),
            sc.len()
        );
    }
}
