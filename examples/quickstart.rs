//! Quickstart: the paper's Section 3 running example.
//!
//! Three relations A, B, C; four read query classes at 30/25/25/20 % of
//! the workload. We classify a recorded journal, compute partial
//! replications for 1, 2 and 4 backends, and verify the properties the
//! paper derives: perfect speedup with far less storage than full
//! replication.
//!
//! Run with: `cargo run --example quickstart`

use qcpa::prelude::*;

fn main() {
    // 1. Describe the data fragments (here: whole relations).
    let mut catalog = Catalog::new();
    let a = catalog.add_table("A", 100);
    let b = catalog.add_table("B", 100);
    let c = catalog.add_table("C", 100);

    // 2. Record a query journal (normally captured by the controller).
    let mut journal = Journal::new();
    journal.record_many(Query::read("SELECT ... FROM A", [a], 1.0), 300);
    journal.record_many(Query::read("SELECT ... FROM B", [b], 1.0), 250);
    journal.record_many(Query::read("SELECT ... FROM C", [c], 1.0), 250);
    journal.record_many(Query::read("SELECT ... FROM A JOIN B", [a, b], 1.0), 200);

    // 3. Classify it: queries group by the fragments they reference.
    let cls = Classification::from_journal(&journal, &catalog, Granularity::Table)
        .expect("journal is non-empty");
    println!("{} query classes:", cls.len());
    for qc in &cls.classes {
        let names: Vec<&str> = qc
            .fragments
            .iter()
            .map(|f| catalog.fragment(*f).name.as_str())
            .collect();
        println!("  {}: {:?} weight {:.0}%", qc.id, names, qc.weight * 100.0);
    }

    // 4. Allocate on growing clusters and inspect the result.
    for n in [1usize, 2, 4] {
        let cluster = ClusterSpec::homogeneous(n);
        let alloc = greedy::allocate(&cls, &catalog, &cluster);
        alloc
            .validate(&cls, &cluster)
            .expect("greedy output is valid");
        println!(
            "\n{n} backend(s): speedup {:.2} (theoretical max {n}), \
             degree of replication {:.2} (full replication: {n})",
            alloc.speedup(&cluster),
            alloc.degree_of_replication(&cls, &catalog),
        );
        for (bi, set) in alloc.fragments.iter().enumerate() {
            let names: Vec<&str> = set
                .iter()
                .map(|f| catalog.fragment(*f).name.as_str())
                .collect();
            println!(
                "  B{} stores {:?}, carries {:.0}% of the load",
                bi + 1,
                names,
                alloc.assigned_load(BackendId(bi as u32)) * 100.0
            );
        }
    }
}
