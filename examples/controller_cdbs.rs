//! A running cluster database system (the paper's Figure 3 prototype):
//! boot fully replicated, serve a mixed workload while the controller
//! records the query history, then reallocate to a partial replication
//! and keep serving — with less storage and writes fanning out to fewer
//! backends.
//!
//! Run with: `cargo run --release --example controller_cdbs`

use qcpa::controller::{Cdbs, Request, WriteRequest};
use qcpa::core::classify::Granularity;
use qcpa::storage::engine::{AggFunc, ScanQuery};
use qcpa::storage::predicate::{CmpOp, Predicate};
use qcpa::storage::schema::{ColumnDef, Schema, TableDef};
use qcpa::storage::table::Table;
use qcpa::storage::types::{DataType, Value};

fn main() {
    // A small book shop: items are browsed constantly, orders are
    // written constantly.
    let mut schema = Schema::new();
    schema.add_table(TableDef::new(
        "item",
        vec![
            ColumnDef::new("i_id", DataType::I64, 8),
            ColumnDef::new("i_title", DataType::Str, 40),
            ColumnDef::new("i_price", DataType::F64, 8),
            ColumnDef::new("i_stock", DataType::I64, 8),
        ],
    ));
    schema.add_table(TableDef::new(
        "orders",
        vec![
            ColumnDef::new("o_id", DataType::I64, 8),
            ColumnDef::new("o_item", DataType::I64, 8),
            ColumnDef::new("o_qty", DataType::I64, 8),
            ColumnDef::new("o_total", DataType::F64, 8),
        ],
    ));
    let mut item = Table::new(schema.table("item").unwrap().clone());
    for i in 0..2_000i64 {
        item.append(vec![
            Value::I64(i),
            Value::Str(format!("book {i}")),
            Value::F64(4.0 + (i % 40) as f64),
            Value::I64(100),
        ]);
    }
    let orders = Table::new(schema.table("orders").unwrap().clone());

    let mut cdbs = Cdbs::new(schema, vec![item, orders], 3);
    println!(
        "booted 3 backends, fully replicated: {:?} bytes each",
        cdbs.stored_bytes()
    );

    // Serve a mixed workload: price lookups (read-heavy) and incoming
    // orders (writes).
    let browse = Request::Read(
        ScanQuery::all("item")
            .select(&["i_price"])
            .agg(AggFunc::Avg, "i_price"),
    );
    let catalogue = Request::Read(
        ScanQuery::all("item")
            .select(&["i_title"])
            .filter(Predicate::cmp("i_id", CmpOp::Lt, Value::I64(10))),
    );
    for i in 0..300i64 {
        cdbs.execute(&browse).expect("read works");
        if i % 3 == 0 {
            cdbs.execute(&catalogue).expect("read works");
        }
        cdbs.execute(&Request::Write(WriteRequest::insert(
            "orders",
            vec![
                Value::I64(i),
                Value::I64(i % 2_000),
                Value::I64(1 + i % 3),
                Value::F64(9.99),
            ],
        )))
        .expect("write works");
    }
    println!(
        "served {} requests; journal holds {} distinct / {} total",
        300 * 2 + 100,
        cdbs.journal().distinct(),
        cdbs.journal().total()
    );

    // Reallocate: classify the history by columns, partial replication.
    let report = cdbs
        .reallocate(3, Granularity::Fragment, None)
        .expect("history is non-empty");
    println!(
        "\nreallocated: {} classes, moved {:.1} MB ({} fragments loaded, {} kept in place)",
        report.classification.len(),
        report.moved_bytes as f64 / 1e6,
        report.loaded_fragments,
        report.kept_fragments
    );
    println!("stored bytes per backend now: {:?}", cdbs.stored_bytes());

    // Keep serving: reads still answer identically; order writes now
    // fan out to fewer backends.
    let out = cdbs.execute(&browse).expect("read after reallocation");
    println!(
        "browse answer after reallocation: {:?}",
        out.result.unwrap()
    );
    let out = cdbs
        .execute(&Request::Write(WriteRequest::insert(
            "orders",
            vec![
                Value::I64(9_999),
                Value::I64(1),
                Value::I64(1),
                Value::F64(1.0),
            ],
        )))
        .expect("write after reallocation");
    println!(
        "an order insert now touches backend(s) {:?} instead of all 3",
        out.backends
    );
}
