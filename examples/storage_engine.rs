//! The storage substrate for real: generate TPC-H data, compute a
//! column-based allocation, physically extract and bulk-load the
//! vertical fragments onto per-backend stores, and answer actual scan
//! queries routed per the allocation.
//!
//! Run with: `cargo run --release --example storage_engine`

use qcpa::core::classify::Granularity;
use qcpa::core::cluster::ClusterSpec;
use qcpa::core::greedy;
use qcpa::storage::engine::{AggFunc, BackendStore, QueryResult, ScanQuery};
use qcpa::storage::fragmentation::extract_vertical;
use qcpa::storage::predicate::{CmpOp, Predicate};
use qcpa::storage::types::Value;
use qcpa::workloads::common::classify_and_stream;
use qcpa::workloads::tpch::tpch;

fn main() {
    // Generate a small physical instance (row counts capped for the demo;
    // the catalog still carries SF-1 sizes for the allocation decision).
    let w = tpch(1.0);
    let tables = w.generate_tables(20_000);
    println!(
        "generated {} tables, {} physical rows",
        tables.len(),
        tables.iter().map(|t| t.len()).sum::<usize>()
    );

    // Column-based allocation on 3 backends.
    let journal = w.journal(100);
    let cw = classify_and_stream(&journal, &w.catalog, Granularity::Fragment, 0.2);
    let cluster = ClusterSpec::homogeneous(3);
    let alloc = greedy::allocate(&cw.classification, &w.catalog, &cluster);
    alloc
        .validate(&cw.classification, &cluster)
        .expect("allocation is valid");

    // Physically materialize: for each backend, extract the vertical
    // fragments of every column assigned to it and bulk load.
    let mut stores: Vec<BackendStore> = (0..3).map(|_| BackendStore::new()).collect();
    for (bi, store) in stores.iter_mut().enumerate() {
        let mut loaded = 0u64;
        for &fid in &alloc.fragments[bi] {
            let name = &w.catalog.fragment(fid).name;
            let Some((table_name, col)) = name.split_once('.') else {
                continue; // table-level fragment entries are not used here
            };
            let table = tables
                .iter()
                .find(|t| t.def.name == table_name)
                .expect("generated all tables");
            loaded += store.bulk_load(extract_vertical(table, &[col]));
        }
        println!(
            "backend {}: {} column fragments, {:.1} MB loaded",
            bi,
            store.fragment_names().count(),
            loaded as f64 / 1e6
        );
    }

    // Run a real query: TPC-H Q6-style revenue aggregate over the
    // l_extendedprice fragment, on a backend that stores it.
    let frag = "lineitem.l_extendedprice";
    let serving = (0..3)
        .find(|&b| {
            stores[b]
                .fragment_names()
                .any(|n| n.contains("l_extendedprice"))
        })
        .expect("some backend stores the revenue column");
    let frag_name = stores[serving]
        .fragment_names()
        .find(|n| n.contains("l_extendedprice"))
        .expect("fragment present")
        .to_string();
    let q = ScanQuery::all(&frag_name)
        .filter(Predicate::cmp(
            "l_extendedprice",
            CmpOp::Gt,
            Value::F64(500.0),
        ))
        .agg(AggFunc::Sum, "l_extendedprice");
    match stores[serving].execute(&q).expect("query runs") {
        QueryResult::Scalar(Some(sum)) => {
            println!("\nQ6-style aggregate on backend {serving} over {frag}: sum = {sum:.0}")
        }
        other => println!("unexpected result: {other:?}"),
    }

    // And a point update applied ROWA-style to every replica.
    let holders: Vec<usize> = (0..3)
        .filter(|&b| {
            stores[b]
                .fragment_names()
                .any(|n| n.contains("l_extendedprice"))
        })
        .collect();
    for &b in &holders {
        let frag_name = stores[b]
            .fragment_names()
            .find(|n| n.contains("l_extendedprice"))
            .expect("fragment present")
            .to_string();
        let changed = stores[b]
            .update(
                &frag_name,
                Some(&Predicate::cmp("l_orderkey", CmpOp::Eq, Value::I64(1))),
                "l_extendedprice",
                Value::F64(0.0),
            )
            .expect("update runs");
        println!("ROWA update on backend {b}: {changed} rows");
    }
}
