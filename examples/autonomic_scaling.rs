//! Autonomic scaling over a day of the diurnal web trace (Section 5):
//! the controller grows and shrinks the cluster with the load, then the
//! sliding-window segmentation computes one merged allocation that
//! rides the daily pattern without reallocating at all.
//!
//! Run with: `cargo run --release --example autonomic_scaling`

use qcpa::autoscale::controller::{run_day, AutoscaleConfig};
use qcpa::autoscale::segmentation::segmented_allocation;
use qcpa::core::cluster::ClusterSpec;
use qcpa::sim::engine::SimConfig;
use qcpa::workloads::trace::diurnal;

fn main() {
    let trace = diurnal(40.0);
    let cfg = AutoscaleConfig::default();

    println!("replaying 24 h of the e-learning trace (x40, ~250 q/s peak)...");
    let recs = run_day(&trace, &cfg, &SimConfig::default(), 1, None);
    let peak_nodes = recs.iter().map(|r| r.backends).max().unwrap_or(0);
    let node_hours: f64 = recs.iter().map(|r| r.backends as f64).sum::<f64>() / 6.0;
    let mean_ms = recs.iter().map(|r| r.mean_response).sum::<f64>() / recs.len() as f64 * 1e3;
    let reallocs = recs.iter().filter(|r| r.moved_bytes > 0).count();
    println!(
        "autonomic: {} reallocations, peak {} nodes, {:.0} node-hours \
         (static max-size: {:.0}), mean response {:.1} ms",
        reallocs,
        peak_nodes,
        node_hours,
        cfg.max_backends as f64 * 24.0,
        mean_ms
    );
    for r in recs.iter().step_by(18) {
        let bar = "#".repeat(r.backends);
        println!(
            "  {:>5.1}h rate {:>5.0} q/s nodes {bar:<8} response {:>6.1} ms",
            r.start / 3600.0,
            r.rate,
            r.mean_response * 1e3
        );
    }

    // Alternative to scaling: one merged allocation for all segments.
    let cluster = ClusterSpec::homogeneous(4);
    let (segments, merged) = segmented_allocation(&trace, &cluster, 0.35);
    println!(
        "\nsegmented alternative: {} workload segments merged into one placement \
         of {:.2} GB:",
        segments.len(),
        merged.total_bytes(&trace.catalog) as f64 / 1e9
    );
    for (i, s) in segments.iter().enumerate() {
        let cls = trace
            .classification_for_window(s.start, if s.end >= s.start { s.end } else { 86_400.0 });
        let alloc = merged.for_segment(i, &cls);
        println!(
            "  segment {:>2} [{:>5.1}h..{:>5.1}h): speedup {:.2} on the shared layout",
            i,
            s.start / 3600.0,
            s.end / 3600.0,
            alloc.speedup(&cluster)
        );
    }
}
