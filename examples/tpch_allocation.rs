//! TPC-H end to end: classify the decision-support workload at table
//! and column granularity, allocate on 8 backends, simulate the
//! throughput of every strategy, and compute the physical reallocation
//! plan for migrating from the table-based to the column-based layout.
//!
//! Run with: `cargo run --release --example tpch_allocation`

use qcpa::core::allocation::Allocation;
use qcpa::core::classify::Granularity;
use qcpa::core::cluster::ClusterSpec;
use qcpa::core::memetic::{self, MemeticConfig};
use qcpa::matching::physical::{transfer_plan, EtlCostModel};
use qcpa::sim::engine::{run_batch, SimConfig};
use qcpa::sim::service::LocalityModel;
use qcpa::workloads::common::classify_and_stream;
use qcpa::workloads::tpch::tpch;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let w = tpch(1.0);
    println!(
        "TPC-H SF1: {} tables, {} fragments, {:.2} GB",
        w.schema.tables.len(),
        w.catalog.len(),
        w.total_bytes() as f64 / 1e9
    );
    let journal = w.journal(100);
    let cluster = ClusterSpec::homogeneous(8);
    let sim = SimConfig {
        locality: Some(LocalityModel { floor: 0.7 }),
        ..Default::default()
    };

    let mut allocations = Vec::new();
    for (label, granularity) in [
        ("full replication", Granularity::FullReplication),
        ("table-based", Granularity::Table),
        ("column-based", Granularity::Fragment),
    ] {
        let cw = classify_and_stream(&journal, &w.catalog, granularity, 0.2);
        let alloc = if granularity == Granularity::FullReplication {
            Allocation::full_replication(&cw.classification, &cluster)
        } else {
            memetic::allocate(
                &cw.classification,
                &w.catalog,
                &cluster,
                &MemeticConfig::default(),
            )
        };
        alloc
            .validate(&cw.classification, &cluster)
            .expect("allocations are valid");
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let reqs = cw.stream.sample_batch(10_000, 0.05, &mut rng);
        let report = run_batch(
            &alloc,
            &cw.classification,
            &cluster,
            &w.catalog,
            &reqs,
            &sim,
        );
        println!(
            "{label:>18}: {} classes, throughput {:.2} q/s, \
             replication {:.2}x, balance deviation {:.3}",
            cw.classification.len(),
            report.throughput,
            alloc.degree_of_replication(&cw.classification, &w.catalog),
            report.balance_deviation()
        );
        allocations.push(alloc);
    }

    // Physical migration: table-based layout -> column-based layout.
    // (The fragment universes differ, so cost is dominated by the new
    // column fragments; the matching still reuses whatever overlaps.)
    let plan = transfer_plan(
        &allocations[1],
        &allocations[2],
        &w.catalog,
        &EtlCostModel::default(),
    );
    println!(
        "\nmigrating table-based -> column-based: {:.2} GB moved, ~{:.1} min",
        plan.moved_bytes as f64 / 1e9,
        plan.duration_secs / 60.0
    );
}
